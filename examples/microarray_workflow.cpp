// Microarray workflow (Sections 2.2.1 and 2.4): GEA's model is not tied
// to SAGE — microarray data "can be easily expressed as tags with
// expression values" and flows through the identical pipeline. This
// example measures the same synthetic cohort twice — once as SAGE
// libraries, once through a simulated microarray chip — runs the same
// cancer-vs-normal comparison on both, and shows the experimenter-bias
// difference the thesis calls out: genes missing from the chip's probe
// panel are invisible to the microarray analysis but found by SAGE.
//
// Run:  ./microarray_workflow

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <set>

#include "common/text_plot.h"
#include "core/enum_table.h"
#include "core/gap.h"
#include "core/gap_ops.h"
#include "core/operators.h"
#include "sage/cleaning.h"
#include "sage/generator.h"
#include "sage/microarray.h"

namespace {

void Check(const gea::Status& status) {
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
T CheckResult(gea::Result<T> result) {
  Check(result.status());
  return std::move(result).value();
}

// The shared comparison: cancer vs normal over one tissue's ENUM table.
gea::core::GapTable CancerVsNormal(const gea::sage::SageDataSet& data,
                                   const char* name) {
  using namespace gea;
  core::EnumTable table = core::EnumTable::FromDataSet(
      name, data.FilterByTissue(sage::TissueType::kBrain));
  core::EnumTable cancer = table.FilterLibraries(
      "cancer", [](const sage::LibraryMeta& lib) {
        return lib.state == sage::NeoplasticState::kCancer;
      });
  core::EnumTable normal = table.FilterLibraries(
      "normal", [](const sage::LibraryMeta& lib) {
        return lib.state == sage::NeoplasticState::kNormal;
      });
  core::SumyTable s1 =
      CheckResult(core::Aggregate(cancer, std::string(name) + "_cancer"));
  core::SumyTable s2 =
      CheckResult(core::Aggregate(normal, std::string(name) + "_normal"));
  return CheckResult(core::Diff(s1, s2, std::string(name) + "_gap"));
}

}  // namespace

int main() {
  using namespace gea;

  sage::GeneratorConfig config;
  config.seed = 42;
  config.panels = sage::SyntheticSageGenerator::SmallPanels();
  sage::SyntheticSage synth = sage::SyntheticSageGenerator(config).Generate();

  // ---- Arm 1: SAGE (clean + normalize, as in Section 4.2). ----
  sage::SageDataSet sage_data = synth.dataset;
  sage::CleanAndNormalize(sage_data);
  core::GapTable sage_gap = CancerVsNormal(sage_data, "sage");

  // ---- Arm 2: microarray (chip design + measurement). ----
  sage::MicroarrayConfig chip_config;
  sage::MicroarrayChip chip = sage::DesignChip(synth.truth, chip_config);
  sage::SageDataSet chip_data = CheckResult(
      sage::MeasureMicroarray(synth.dataset, chip, chip_config));
  core::GapTable chip_gap = CancerVsNormal(chip_data, "chip");

  std::printf("chip: %zu probes; SAGE universe after cleaning: %zu tags\n\n",
              chip.probes.size(), sage_data.UniverseSize());

  // ---- The same question, both platforms. ----
  std::set<sage::TagId> probes(chip.probes.begin(), chip.probes.end());
  const auto& down = synth.truth.cancer_down.at(sage::TissueType::kBrain);

  size_t sage_found = 0;
  size_t chip_found = 0;
  size_t off_chip = 0;
  size_t off_chip_found_by_sage = 0;
  for (sage::TagId tag : down) {
    std::optional<double> s = sage_gap.Gap(tag);
    std::optional<double> c = chip_gap.Gap(tag);
    bool sage_hit = s.has_value() && *s < 0;
    bool chip_hit = c.has_value() && *c < 0;
    if (sage_hit) ++sage_found;
    if (chip_hit) ++chip_found;
    if (probes.count(tag) == 0) {
      ++off_chip;
      if (sage_hit) ++off_chip_found_by_sage;
    }
  }
  std::printf("planted brain cancer-silenced genes: %zu\n", down.size());
  std::printf("  found by SAGE analysis      : %zu\n", sage_found);
  std::printf("  found by microarray analysis: %zu\n", chip_found);
  std::printf("  not on the chip at all      : %zu (SAGE still finds %zu "
              "of them)\n\n",
              off_chip, off_chip_found_by_sage);
  std::printf(
      "This is the Section 2.2.1 trade-off: SAGE \"gives all the mRNA in\n"
      "a tissue sample an equal chance\", while the microarray only sees\n"
      "what the experimenter chose to print on the chip.\n\n");

  // ---- A Fig. 4.2-style chart on microarray data. ----
  core::GapTable top = CheckResult(core::TopGap(
      chip_gap, 1, core::TopGapMode::kHighest, "chip_top"));
  if (top.NumTags() > 0) {
    sage::TagId tag = top.entry(0).tag;
    core::EnumTable table = core::EnumTable::FromDataSet(
        "brain_chip", chip_data.FilterByTissue(sage::TissueType::kBrain));
    std::optional<size_t> col = table.FindTagColumn(tag);
    std::vector<TextBar> bars;
    for (size_t row = 0; row < table.NumLibraries(); ++row) {
      const sage::LibraryMeta& lib = table.library(row);
      bars.push_back({lib.name, table.ValueAt(row, *col),
                      sage::NeoplasticStateName(lib.state)});
    }
    std::printf("top up-regulated probe on the chip, %s:\n%s",
                sage::TagLabel(tag).c_str(),
                RenderBarChart(bars, 40).c_str());
  }
  return 0;
}
