// Quickstart: the shortest useful GEA pipeline.
//
// Generates a synthetic SAGE data set, runs the Section 4.2 cleaning
// pipeline, mines fascicles in the brain tissue type, aggregates the
// fascicle and the normal control group into SUMY tables, diffs them into
// a GAP table, and prints the top gaps — the Fig. 4.9 workflow as twenty
// lines of API calls.
//
// Run:  ./quickstart

#include <cstdio>
#include <cstdlib>

#include "core/enum_table.h"
#include "core/gap.h"
#include "core/gap_ops.h"
#include "core/operators.h"
#include "sage/cleaning.h"
#include "sage/generator.h"

namespace {

// Aborts with a message when a Status is non-OK.
void Check(const gea::Status& status) {
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
T CheckResult(gea::Result<T> result) {
  Check(result.status());
  return std::move(result).value();
}

}  // namespace

int main() {
  using namespace gea;

  // 1. Data: a deterministic synthetic SAGE panel (brain + breast).
  sage::GeneratorConfig config;
  config.seed = 42;
  config.panels = sage::SyntheticSageGenerator::SmallPanels();
  sage::SyntheticSage synth = sage::SyntheticSageGenerator(config).Generate();
  std::printf("generated %zu libraries, %zu distinct tags\n",
              synth.dataset.NumLibraries(), synth.dataset.UniverseSize());

  // 2. Pre-processing (Section 4.2): drop sequencing-error tags, then
  // normalize every library to 300,000 total tags.
  sage::CleaningStats stats = sage::CleanAndNormalize(synth.dataset);
  std::printf("cleaning: %s\n", stats.ToString().c_str());

  // 3. The extensional world: the brain tissue data set as an ENUM table.
  core::EnumTable brain = core::EnumTable::FromDataSet(
      "brain", synth.dataset.FilterByTissue(sage::TissueType::kBrain));
  std::printf("brain ENUM: %zu libraries x %zu tags\n",
              brain.NumLibraries(), brain.NumTags());

  // 4. mine(): fascicles with tolerance metadata at 25%% of tag width,
  // at least 150 compact tags, at least 3 libraries.
  cluster::FascicleParams params;
  params.min_compact_tags = 150;
  params.tolerances = core::MakeToleranceMetadata(brain, 25.0);
  params.min_size = 3;
  std::vector<core::MinedFascicle> mined =
      CheckResult(core::Mine(brain, params, "brain25k"));
  std::printf("mined %zu fascicles\n", mined.size());

  // 5. Pick the first pure-cancer fascicle (Fig. 4.8 purity check).
  const core::MinedFascicle* fascicle = nullptr;
  for (const core::MinedFascicle& m : mined) {
    if (core::IsPure(m.members, core::PurityProperty::kCancer)) {
      fascicle = &m;
      break;
    }
  }
  if (fascicle == nullptr) {
    std::fprintf(stderr, "no pure cancer fascicle found\n");
    return 1;
  }
  std::printf("pure cancer fascicle: %zu libraries, %zu compact tags\n",
              fascicle->members.NumLibraries(),
              fascicle->sumy.NumTags());

  // 6. Control group: the normal brain libraries over the same compact
  // tags, aggregated to a SUMY table.
  core::EnumTable normal_enum =
      CheckResult(brain.RestrictTags("brain_compact", fascicle->members.tags()))
          .FilterLibraries("brain_normal", [](const sage::LibraryMeta& lib) {
            return lib.state == sage::NeoplasticState::kNormal;
          });
  core::SumyTable normal_sumy =
      CheckResult(core::Aggregate(normal_enum, "brainNormalTable"));

  // 7. diff() and top-gap (Sections 3.2.2, 4.4.3).
  core::GapTable gap = CheckResult(
      core::Diff(fascicle->sumy, normal_sumy, "brain_canvsnor_gap"));
  core::GapTable top = CheckResult(core::TopGap(
      gap, 10, core::TopGapMode::kLargestMagnitude, "brain_canvsnor_gap_10"));

  std::printf("\nTop gap values (cancer fascicle vs normal):\n");
  for (const std::string& line : core::RenderGapList(top, 10)) {
    std::printf("  %s\n", line.c_str());
  }
  std::printf(
      "\npositive gaps: expressed higher in the cancer fascicle;\n"
      "negative gaps: silenced in cancer relative to normal tissue.\n");
  return 0;
}
