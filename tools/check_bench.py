#!/usr/bin/env python3
"""Compare bench --json runs against a checked-in baseline.

All inputs are JSON-lines files as emitted by `bench_operators --json=PATH`
(or any other gea micro-benchmark binary): one object per line with at
least {"name", "threads", "mean_ms"}.

Usage:
    check_bench.py BASELINE CURRENT [CURRENT...] [--threshold=0.25]

Several CURRENT files (one per benchmark binary, e.g. bench_operators and
bench_store) are merged before comparing; a benchmark name appearing in
more than one current file is an error, since the merge would silently
pick one of the two timings.

Exits non-zero when any benchmark present in both baseline and current
regressed by more than the threshold (current mean_ms > (1 + threshold) *
baseline mean_ms). Benchmarks that appear on only one side are reported
but never fatal, so adding or removing benchmarks does not break the
comparison step.
"""

import argparse
import json
import sys


def load(path):
    """Returns {name: record} from a JSON-lines bench file."""
    out = {}
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as err:
                raise SystemExit(f"{path}:{lineno}: bad JSON line: {err}")
            name = record.get("name")
            if not name or "mean_ms" not in record:
                raise SystemExit(
                    f"{path}:{lineno}: record needs 'name' and 'mean_ms'")
            out[name] = record
    if not out:
        raise SystemExit(f"{path}: no benchmark records found")
    return out


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current", nargs="+")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="allowed fractional mean-time regression "
                             "(default 0.25 = 25%%)")
    args = parser.parse_args(argv)

    baseline = load(args.baseline)
    current = {}
    for path in args.current:
        for name, record in load(path).items():
            if name in current:
                raise SystemExit(
                    f"{path}: benchmark '{name}' already provided by an "
                    "earlier current file")
            current[name] = record

    regressions = []
    width = max(len(n) for n in sorted(set(baseline) | set(current)))
    print(f"{'benchmark':<{width}}  {'base ms':>10}  {'cur ms':>10}  delta")
    for name in sorted(set(baseline) | set(current)):
        base = baseline.get(name)
        cur = current.get(name)
        if base is None:
            print(f"{name:<{width}}  {'-':>10}  {cur['mean_ms']:>10.4f}  "
                  "(new, not compared)")
            continue
        if cur is None:
            print(f"{name:<{width}}  {base['mean_ms']:>10.4f}  {'-':>10}  "
                  "(missing from current run)")
            continue
        if base.get("threads") != cur.get("threads"):
            raise SystemExit(
                f"{name}: thread counts differ "
                f"(baseline {base.get('threads')}, current "
                f"{cur.get('threads')}); rerun with the pinned --threads")
        base_ms = float(base["mean_ms"])
        cur_ms = float(cur["mean_ms"])
        ratio = cur_ms / base_ms if base_ms > 0 else float("inf")
        mark = ""
        if ratio > 1.0 + args.threshold:
            regressions.append((name, base_ms, cur_ms, ratio))
            mark = "  REGRESSION"
        print(f"{name:<{width}}  {base_ms:>10.4f}  {cur_ms:>10.4f}  "
              f"{ratio:>5.2f}x{mark}")

    if regressions:
        print(f"\n{len(regressions)} benchmark(s) regressed more than "
              f"{args.threshold:.0%}:", file=sys.stderr)
        for name, base_ms, cur_ms, ratio in regressions:
            print(f"  {name}: {base_ms:.4f} ms -> {cur_ms:.4f} ms "
                  f"({ratio:.2f}x)", file=sys.stderr)
        return 1
    print(f"\nOK: no benchmark regressed more than {args.threshold:.0%}.")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
