#!/usr/bin/env python3
"""Validate a /statz?history=1 export's structural invariants.

The input is the telemetry history JSON emitted by the GEA monitoring
endpoint (and by the timeseries_test GEA_STATS_EXPORT hook): the
harvester's ring of registry samples. This checker enforces what a
dashboard merely tolerates:

  * the document is an object with integer "retention" and "harvests"
    fields and a "samples" list
  * the ring never holds more samples than its retention
  * sample ids increase strictly and timestamps never go backwards
  * every metric point carries name/value/delta/rate; rates are finite
    and never negative (rates are only computed for monotonic series)
  * within one sample, metric names are sorted and unique
  * a series' delta matches the value change from the previous sample
    it appeared in (when that sample is still in the ring)

Usage:
    check_history.py HISTORY_JSON [--min-samples N]

Exits non-zero with a message on the first violated invariant.
"""

import argparse
import json
import math
import sys


def fail(message):
    print(f"check_history: {message}", file=sys.stderr)
    sys.exit(1)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("history", help="/statz?history=1 JSON file")
    parser.add_argument(
        "--min-samples",
        type=int,
        default=1,
        help="require at least this many samples in the ring",
    )
    args = parser.parse_args()

    try:
        with open(args.history, "rb") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot load {args.history}: {e}")

    if not isinstance(doc, dict):
        fail("document is not an object")
    retention = doc.get("retention")
    harvests = doc.get("harvests")
    samples = doc.get("samples")
    if not isinstance(retention, int) or retention <= 0:
        fail(f"bad retention: {retention!r}")
    if not isinstance(harvests, int) or harvests < 0:
        fail(f"bad harvests: {harvests!r}")
    if not isinstance(samples, list):
        fail("samples is not a list")
    if len(samples) > retention:
        fail(f"{len(samples)} samples exceed retention {retention}")
    if len(samples) > harvests:
        fail(f"{len(samples)} samples but only {harvests} harvests")
    if len(samples) < args.min_samples:
        fail(
            f"--min-samples: {len(samples)} samples, "
            f"expected >= {args.min_samples}"
        )

    last_id = None
    last_ts = None
    previous_values = {}  # name -> value in the preceding sample
    points = 0
    for i, sample in enumerate(samples):
        if not isinstance(sample, dict):
            fail(f"sample {i} is not an object")
        sample_id = sample.get("sample")
        ts_ms = sample.get("ts_ms")
        metrics = sample.get("metrics")
        if not isinstance(sample_id, int) or sample_id <= 0:
            fail(f"sample {i} has bad id: {sample_id!r}")
        if not isinstance(ts_ms, int) or ts_ms < 0:
            fail(f"sample {i} has bad ts_ms: {ts_ms!r}")
        if not isinstance(metrics, list):
            fail(f"sample {i} has no metrics list")
        if last_id is not None and sample_id <= last_id:
            fail(f"sample {i} id {sample_id} <= preceding id {last_id}")
        if last_ts is not None and ts_ms < last_ts:
            fail(f"sample {i} ts_ms {ts_ms} < preceding ts_ms {last_ts}")
        last_id, last_ts = sample_id, ts_ms

        last_name = None
        values = {}
        for j, point in enumerate(metrics):
            where = f"sample {i} metric {j}"
            if not isinstance(point, dict):
                fail(f"{where} is not an object")
            name = point.get("name")
            value = point.get("value")
            delta = point.get("delta")
            rate = point.get("rate")
            if not isinstance(name, str) or not name:
                fail(f"{where} has bad name: {name!r}")
            if not isinstance(value, int):
                fail(f"{where} ({name}) has bad value: {value!r}")
            if not isinstance(delta, int):
                fail(f"{where} ({name}) has bad delta: {delta!r}")
            if not isinstance(rate, (int, float)) or not math.isfinite(rate):
                fail(f"{where} ({name}) has bad rate: {rate!r}")
            if rate < 0:
                fail(f"{where} ({name}) has negative rate: {rate!r}")
            if last_name is not None and name <= last_name:
                fail(f"{where} name {name!r} not sorted after {last_name!r}")
            last_name = name
            if name in previous_values:
                expected = value - previous_values[name]
                if delta != expected:
                    fail(
                        f"{where} ({name}) delta {delta} != value change "
                        f"{expected}"
                    )
            values[name] = value
            points += 1
        previous_values = values

    print(
        f"check_history: OK — {len(samples)} samples "
        f"(retention {retention}, {harvests} harvests), {points} points"
    )


if __name__ == "__main__":
    main()
