#!/usr/bin/env python3
"""Validate a /tracez?format=chrome export's structural invariants.

The input is Chrome trace-event JSON ({"traceEvents": [...]}) as emitted
by the GEA monitoring endpoint, loadable in Perfetto / chrome://tracing.
This checker enforces what a viewer merely tolerates:

  * the document is an object with a "traceEvents" list
  * every event carries ph, pid and tid
  * every non-metadata event carries a numeric ts >= 0; "X" slices also
    carry a numeric dur >= 0
  * events are sorted by ts in file order (metadata first)
  * every traced request (distinct args.trace_id on "stage" events)
    covers the core pipeline stages: decode, queue_wait, execute,
    encode, write
  * with --require-wal, at least one wal_fsync stage event exists
    somewhere in the export (the run included a WAL-logged mutation)

Usage:
    check_trace.py TRACE_JSON [--require-wal]

Exits non-zero with a message on the first violated invariant.
"""

import argparse
import json
import sys

CORE_STAGES = {"decode", "queue_wait", "execute", "encode", "write"}


def fail(message):
    print(f"check_trace: {message}", file=sys.stderr)
    sys.exit(1)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", help="Chrome trace-event JSON file")
    parser.add_argument(
        "--require-wal",
        action="store_true",
        help="require at least one wal_fsync stage event",
    )
    args = parser.parse_args()

    try:
        with open(args.trace, "rb") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot load {args.trace}: {e}")

    if not isinstance(doc, dict) or not isinstance(
        doc.get("traceEvents"), list
    ):
        fail("document is not an object with a traceEvents list")
    events = doc["traceEvents"]
    if not events:
        fail("traceEvents is empty")

    last_ts = None
    stages_by_trace = {}
    wal_fsyncs = 0
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            fail(f"event {i} is not an object")
        for key in ("ph", "pid", "tid"):
            if key not in event:
                fail(f"event {i} is missing {key!r}")
        ph = event["ph"]
        if ph == "M":
            if last_ts is not None:
                fail(f"metadata event {i} appears after timed events")
            continue
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            fail(f"event {i} ({ph!r}) has bad ts: {ts!r}")
        if last_ts is not None and ts < last_ts:
            fail(f"event {i} ts {ts} < preceding ts {last_ts}")
        last_ts = ts
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                fail(f"slice {i} has bad dur: {dur!r}")

        event_args = event.get("args", {})
        if event.get("cat") == "stage":
            trace_id = event_args.get("trace_id")
            stage = event_args.get("stage")
            if trace_id is None or stage is None:
                fail(f"stage event {i} lacks trace_id/stage args")
            stages_by_trace.setdefault(trace_id, set()).add(stage)
            if stage == "wal_fsync":
                wal_fsyncs += 1

    if not stages_by_trace:
        fail("no stage events found — the run was not sampled")
    for trace_id, stages in sorted(stages_by_trace.items()):
        missing = CORE_STAGES - stages
        if missing:
            fail(
                f"trace {trace_id} is missing core stages: "
                f"{', '.join(sorted(missing))}"
            )
    if args.require_wal and wal_fsyncs == 0:
        fail("--require-wal: no wal_fsync stage event in the export")

    print(
        f"check_trace: OK — {len(events)} events, "
        f"{len(stages_by_trace)} traced requests, {wal_fsyncs} WAL fsyncs"
    )


if __name__ == "__main__":
    main()
