file(REMOVE_RECURSE
  "CMakeFiles/bench_populate_index.dir/bench_populate_index.cc.o"
  "CMakeFiles/bench_populate_index.dir/bench_populate_index.cc.o.d"
  "bench_populate_index"
  "bench_populate_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_populate_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
