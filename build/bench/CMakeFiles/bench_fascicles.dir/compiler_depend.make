# Empty compiler generated dependencies file for bench_fascicles.
# This may be replaced when dependencies are built.
