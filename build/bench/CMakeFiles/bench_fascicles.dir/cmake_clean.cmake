file(REMOVE_RECURSE
  "CMakeFiles/bench_fascicles.dir/bench_fascicles.cc.o"
  "CMakeFiles/bench_fascicles.dir/bench_fascicles.cc.o.d"
  "bench_fascicles"
  "bench_fascicles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fascicles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
