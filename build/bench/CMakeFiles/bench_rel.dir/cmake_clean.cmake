file(REMOVE_RECURSE
  "CMakeFiles/bench_rel.dir/bench_rel.cc.o"
  "CMakeFiles/bench_rel.dir/bench_rel.cc.o.d"
  "bench_rel"
  "bench_rel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
