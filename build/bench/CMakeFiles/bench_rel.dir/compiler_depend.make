# Empty compiler generated dependencies file for bench_rel.
# This may be replaced when dependencies are built.
