# Empty dependencies file for multi_tissue_screen.
# This may be replaced when dependencies are built.
