file(REMOVE_RECURSE
  "CMakeFiles/multi_tissue_screen.dir/multi_tissue_screen.cpp.o"
  "CMakeFiles/multi_tissue_screen.dir/multi_tissue_screen.cpp.o.d"
  "multi_tissue_screen"
  "multi_tissue_screen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_tissue_screen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
