file(REMOVE_RECURSE
  "CMakeFiles/microarray_workflow.dir/microarray_workflow.cpp.o"
  "CMakeFiles/microarray_workflow.dir/microarray_workflow.cpp.o.d"
  "microarray_workflow"
  "microarray_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/microarray_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
