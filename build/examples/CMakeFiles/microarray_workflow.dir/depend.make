# Empty dependencies file for microarray_workflow.
# This may be replaced when dependencies are built.
