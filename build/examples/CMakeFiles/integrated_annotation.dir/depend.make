# Empty dependencies file for integrated_annotation.
# This may be replaced when dependencies are built.
