file(REMOVE_RECURSE
  "CMakeFiles/integrated_annotation.dir/integrated_annotation.cpp.o"
  "CMakeFiles/integrated_annotation.dir/integrated_annotation.cpp.o.d"
  "integrated_annotation"
  "integrated_annotation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integrated_annotation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
