file(REMOVE_RECURSE
  "CMakeFiles/case_study_brain.dir/case_study_brain.cpp.o"
  "CMakeFiles/case_study_brain.dir/case_study_brain.cpp.o.d"
  "case_study_brain"
  "case_study_brain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/case_study_brain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
