# Empty compiler generated dependencies file for case_study_brain.
# This may be replaced when dependencies are built.
