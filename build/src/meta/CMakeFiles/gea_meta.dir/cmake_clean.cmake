file(REMOVE_RECURSE
  "CMakeFiles/gea_meta.dir/annotate.cc.o"
  "CMakeFiles/gea_meta.dir/annotate.cc.o.d"
  "CMakeFiles/gea_meta.dir/annotation.cc.o"
  "CMakeFiles/gea_meta.dir/annotation.cc.o.d"
  "CMakeFiles/gea_meta.dir/eadb.cc.o"
  "CMakeFiles/gea_meta.dir/eadb.cc.o.d"
  "libgea_meta.a"
  "libgea_meta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gea_meta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
