file(REMOVE_RECURSE
  "libgea_meta.a"
)
