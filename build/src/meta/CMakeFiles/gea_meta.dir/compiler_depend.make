# Empty compiler generated dependencies file for gea_meta.
# This may be replaced when dependencies are built.
