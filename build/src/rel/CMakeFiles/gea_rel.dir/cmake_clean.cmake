file(REMOVE_RECURSE
  "CMakeFiles/gea_rel.dir/catalog.cc.o"
  "CMakeFiles/gea_rel.dir/catalog.cc.o.d"
  "CMakeFiles/gea_rel.dir/expr.cc.o"
  "CMakeFiles/gea_rel.dir/expr.cc.o.d"
  "CMakeFiles/gea_rel.dir/index.cc.o"
  "CMakeFiles/gea_rel.dir/index.cc.o.d"
  "CMakeFiles/gea_rel.dir/ops.cc.o"
  "CMakeFiles/gea_rel.dir/ops.cc.o.d"
  "CMakeFiles/gea_rel.dir/schema.cc.o"
  "CMakeFiles/gea_rel.dir/schema.cc.o.d"
  "CMakeFiles/gea_rel.dir/sql.cc.o"
  "CMakeFiles/gea_rel.dir/sql.cc.o.d"
  "CMakeFiles/gea_rel.dir/table.cc.o"
  "CMakeFiles/gea_rel.dir/table.cc.o.d"
  "CMakeFiles/gea_rel.dir/table_io.cc.o"
  "CMakeFiles/gea_rel.dir/table_io.cc.o.d"
  "CMakeFiles/gea_rel.dir/value.cc.o"
  "CMakeFiles/gea_rel.dir/value.cc.o.d"
  "libgea_rel.a"
  "libgea_rel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gea_rel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
