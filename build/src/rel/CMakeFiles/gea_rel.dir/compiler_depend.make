# Empty compiler generated dependencies file for gea_rel.
# This may be replaced when dependencies are built.
