
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rel/catalog.cc" "src/rel/CMakeFiles/gea_rel.dir/catalog.cc.o" "gcc" "src/rel/CMakeFiles/gea_rel.dir/catalog.cc.o.d"
  "/root/repo/src/rel/expr.cc" "src/rel/CMakeFiles/gea_rel.dir/expr.cc.o" "gcc" "src/rel/CMakeFiles/gea_rel.dir/expr.cc.o.d"
  "/root/repo/src/rel/index.cc" "src/rel/CMakeFiles/gea_rel.dir/index.cc.o" "gcc" "src/rel/CMakeFiles/gea_rel.dir/index.cc.o.d"
  "/root/repo/src/rel/ops.cc" "src/rel/CMakeFiles/gea_rel.dir/ops.cc.o" "gcc" "src/rel/CMakeFiles/gea_rel.dir/ops.cc.o.d"
  "/root/repo/src/rel/schema.cc" "src/rel/CMakeFiles/gea_rel.dir/schema.cc.o" "gcc" "src/rel/CMakeFiles/gea_rel.dir/schema.cc.o.d"
  "/root/repo/src/rel/sql.cc" "src/rel/CMakeFiles/gea_rel.dir/sql.cc.o" "gcc" "src/rel/CMakeFiles/gea_rel.dir/sql.cc.o.d"
  "/root/repo/src/rel/table.cc" "src/rel/CMakeFiles/gea_rel.dir/table.cc.o" "gcc" "src/rel/CMakeFiles/gea_rel.dir/table.cc.o.d"
  "/root/repo/src/rel/table_io.cc" "src/rel/CMakeFiles/gea_rel.dir/table_io.cc.o" "gcc" "src/rel/CMakeFiles/gea_rel.dir/table_io.cc.o.d"
  "/root/repo/src/rel/value.cc" "src/rel/CMakeFiles/gea_rel.dir/value.cc.o" "gcc" "src/rel/CMakeFiles/gea_rel.dir/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gea_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
