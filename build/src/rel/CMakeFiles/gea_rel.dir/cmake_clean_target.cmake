file(REMOVE_RECURSE
  "libgea_rel.a"
)
