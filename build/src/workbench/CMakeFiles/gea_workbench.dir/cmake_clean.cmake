file(REMOVE_RECURSE
  "CMakeFiles/gea_workbench.dir/session.cc.o"
  "CMakeFiles/gea_workbench.dir/session.cc.o.d"
  "CMakeFiles/gea_workbench.dir/users.cc.o"
  "CMakeFiles/gea_workbench.dir/users.cc.o.d"
  "libgea_workbench.a"
  "libgea_workbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gea_workbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
