file(REMOVE_RECURSE
  "libgea_workbench.a"
)
