# Empty dependencies file for gea_workbench.
# This may be replaced when dependencies are built.
