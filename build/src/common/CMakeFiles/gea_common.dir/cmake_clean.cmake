file(REMOVE_RECURSE
  "CMakeFiles/gea_common.dir/csv.cc.o"
  "CMakeFiles/gea_common.dir/csv.cc.o.d"
  "CMakeFiles/gea_common.dir/rng.cc.o"
  "CMakeFiles/gea_common.dir/rng.cc.o.d"
  "CMakeFiles/gea_common.dir/status.cc.o"
  "CMakeFiles/gea_common.dir/status.cc.o.d"
  "CMakeFiles/gea_common.dir/strings.cc.o"
  "CMakeFiles/gea_common.dir/strings.cc.o.d"
  "CMakeFiles/gea_common.dir/text_plot.cc.o"
  "CMakeFiles/gea_common.dir/text_plot.cc.o.d"
  "libgea_common.a"
  "libgea_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gea_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
