# Empty dependencies file for gea_common.
# This may be replaced when dependencies are built.
