file(REMOVE_RECURSE
  "libgea_common.a"
)
