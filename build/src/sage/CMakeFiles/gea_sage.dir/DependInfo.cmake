
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sage/cleaning.cc" "src/sage/CMakeFiles/gea_sage.dir/cleaning.cc.o" "gcc" "src/sage/CMakeFiles/gea_sage.dir/cleaning.cc.o.d"
  "/root/repo/src/sage/dataset.cc" "src/sage/CMakeFiles/gea_sage.dir/dataset.cc.o" "gcc" "src/sage/CMakeFiles/gea_sage.dir/dataset.cc.o.d"
  "/root/repo/src/sage/generator.cc" "src/sage/CMakeFiles/gea_sage.dir/generator.cc.o" "gcc" "src/sage/CMakeFiles/gea_sage.dir/generator.cc.o.d"
  "/root/repo/src/sage/io.cc" "src/sage/CMakeFiles/gea_sage.dir/io.cc.o" "gcc" "src/sage/CMakeFiles/gea_sage.dir/io.cc.o.d"
  "/root/repo/src/sage/library.cc" "src/sage/CMakeFiles/gea_sage.dir/library.cc.o" "gcc" "src/sage/CMakeFiles/gea_sage.dir/library.cc.o.d"
  "/root/repo/src/sage/matrix.cc" "src/sage/CMakeFiles/gea_sage.dir/matrix.cc.o" "gcc" "src/sage/CMakeFiles/gea_sage.dir/matrix.cc.o.d"
  "/root/repo/src/sage/microarray.cc" "src/sage/CMakeFiles/gea_sage.dir/microarray.cc.o" "gcc" "src/sage/CMakeFiles/gea_sage.dir/microarray.cc.o.d"
  "/root/repo/src/sage/stats.cc" "src/sage/CMakeFiles/gea_sage.dir/stats.cc.o" "gcc" "src/sage/CMakeFiles/gea_sage.dir/stats.cc.o.d"
  "/root/repo/src/sage/tag_codec.cc" "src/sage/CMakeFiles/gea_sage.dir/tag_codec.cc.o" "gcc" "src/sage/CMakeFiles/gea_sage.dir/tag_codec.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gea_common.dir/DependInfo.cmake"
  "/root/repo/build/src/rel/CMakeFiles/gea_rel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
