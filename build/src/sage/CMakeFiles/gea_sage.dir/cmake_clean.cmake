file(REMOVE_RECURSE
  "CMakeFiles/gea_sage.dir/cleaning.cc.o"
  "CMakeFiles/gea_sage.dir/cleaning.cc.o.d"
  "CMakeFiles/gea_sage.dir/dataset.cc.o"
  "CMakeFiles/gea_sage.dir/dataset.cc.o.d"
  "CMakeFiles/gea_sage.dir/generator.cc.o"
  "CMakeFiles/gea_sage.dir/generator.cc.o.d"
  "CMakeFiles/gea_sage.dir/io.cc.o"
  "CMakeFiles/gea_sage.dir/io.cc.o.d"
  "CMakeFiles/gea_sage.dir/library.cc.o"
  "CMakeFiles/gea_sage.dir/library.cc.o.d"
  "CMakeFiles/gea_sage.dir/matrix.cc.o"
  "CMakeFiles/gea_sage.dir/matrix.cc.o.d"
  "CMakeFiles/gea_sage.dir/microarray.cc.o"
  "CMakeFiles/gea_sage.dir/microarray.cc.o.d"
  "CMakeFiles/gea_sage.dir/stats.cc.o"
  "CMakeFiles/gea_sage.dir/stats.cc.o.d"
  "CMakeFiles/gea_sage.dir/tag_codec.cc.o"
  "CMakeFiles/gea_sage.dir/tag_codec.cc.o.d"
  "libgea_sage.a"
  "libgea_sage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gea_sage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
