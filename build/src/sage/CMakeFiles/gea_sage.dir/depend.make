# Empty dependencies file for gea_sage.
# This may be replaced when dependencies are built.
