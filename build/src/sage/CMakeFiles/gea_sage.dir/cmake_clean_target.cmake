file(REMOVE_RECURSE
  "libgea_sage.a"
)
