# Empty dependencies file for gea_interval.
# This may be replaced when dependencies are built.
