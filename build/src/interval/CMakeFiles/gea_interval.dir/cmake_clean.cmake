file(REMOVE_RECURSE
  "CMakeFiles/gea_interval.dir/interval.cc.o"
  "CMakeFiles/gea_interval.dir/interval.cc.o.d"
  "libgea_interval.a"
  "libgea_interval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gea_interval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
