file(REMOVE_RECURSE
  "libgea_interval.a"
)
