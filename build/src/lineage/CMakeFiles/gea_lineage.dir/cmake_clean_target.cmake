file(REMOVE_RECURSE
  "libgea_lineage.a"
)
