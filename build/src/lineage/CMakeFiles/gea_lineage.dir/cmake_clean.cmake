file(REMOVE_RECURSE
  "CMakeFiles/gea_lineage.dir/lineage.cc.o"
  "CMakeFiles/gea_lineage.dir/lineage.cc.o.d"
  "libgea_lineage.a"
  "libgea_lineage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gea_lineage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
