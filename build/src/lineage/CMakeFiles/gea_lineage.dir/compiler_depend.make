# Empty compiler generated dependencies file for gea_lineage.
# This may be replaced when dependencies are built.
