# Empty compiler generated dependencies file for gea_core.
# This may be replaced when dependencies are built.
