file(REMOVE_RECURSE
  "CMakeFiles/gea_core.dir/enum_table.cc.o"
  "CMakeFiles/gea_core.dir/enum_table.cc.o.d"
  "CMakeFiles/gea_core.dir/gap.cc.o"
  "CMakeFiles/gea_core.dir/gap.cc.o.d"
  "CMakeFiles/gea_core.dir/gap_compare.cc.o"
  "CMakeFiles/gea_core.dir/gap_compare.cc.o.d"
  "CMakeFiles/gea_core.dir/gap_ops.cc.o"
  "CMakeFiles/gea_core.dir/gap_ops.cc.o.d"
  "CMakeFiles/gea_core.dir/index_advisor.cc.o"
  "CMakeFiles/gea_core.dir/index_advisor.cc.o.d"
  "CMakeFiles/gea_core.dir/mine_alternatives.cc.o"
  "CMakeFiles/gea_core.dir/mine_alternatives.cc.o.d"
  "CMakeFiles/gea_core.dir/operators.cc.o"
  "CMakeFiles/gea_core.dir/operators.cc.o.d"
  "CMakeFiles/gea_core.dir/populate.cc.o"
  "CMakeFiles/gea_core.dir/populate.cc.o.d"
  "CMakeFiles/gea_core.dir/serialization.cc.o"
  "CMakeFiles/gea_core.dir/serialization.cc.o.d"
  "CMakeFiles/gea_core.dir/sumy.cc.o"
  "CMakeFiles/gea_core.dir/sumy.cc.o.d"
  "CMakeFiles/gea_core.dir/sumy_ops.cc.o"
  "CMakeFiles/gea_core.dir/sumy_ops.cc.o.d"
  "libgea_core.a"
  "libgea_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gea_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
