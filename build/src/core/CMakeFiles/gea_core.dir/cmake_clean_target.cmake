file(REMOVE_RECURSE
  "libgea_core.a"
)
