
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/enum_table.cc" "src/core/CMakeFiles/gea_core.dir/enum_table.cc.o" "gcc" "src/core/CMakeFiles/gea_core.dir/enum_table.cc.o.d"
  "/root/repo/src/core/gap.cc" "src/core/CMakeFiles/gea_core.dir/gap.cc.o" "gcc" "src/core/CMakeFiles/gea_core.dir/gap.cc.o.d"
  "/root/repo/src/core/gap_compare.cc" "src/core/CMakeFiles/gea_core.dir/gap_compare.cc.o" "gcc" "src/core/CMakeFiles/gea_core.dir/gap_compare.cc.o.d"
  "/root/repo/src/core/gap_ops.cc" "src/core/CMakeFiles/gea_core.dir/gap_ops.cc.o" "gcc" "src/core/CMakeFiles/gea_core.dir/gap_ops.cc.o.d"
  "/root/repo/src/core/index_advisor.cc" "src/core/CMakeFiles/gea_core.dir/index_advisor.cc.o" "gcc" "src/core/CMakeFiles/gea_core.dir/index_advisor.cc.o.d"
  "/root/repo/src/core/mine_alternatives.cc" "src/core/CMakeFiles/gea_core.dir/mine_alternatives.cc.o" "gcc" "src/core/CMakeFiles/gea_core.dir/mine_alternatives.cc.o.d"
  "/root/repo/src/core/operators.cc" "src/core/CMakeFiles/gea_core.dir/operators.cc.o" "gcc" "src/core/CMakeFiles/gea_core.dir/operators.cc.o.d"
  "/root/repo/src/core/populate.cc" "src/core/CMakeFiles/gea_core.dir/populate.cc.o" "gcc" "src/core/CMakeFiles/gea_core.dir/populate.cc.o.d"
  "/root/repo/src/core/serialization.cc" "src/core/CMakeFiles/gea_core.dir/serialization.cc.o" "gcc" "src/core/CMakeFiles/gea_core.dir/serialization.cc.o.d"
  "/root/repo/src/core/sumy.cc" "src/core/CMakeFiles/gea_core.dir/sumy.cc.o" "gcc" "src/core/CMakeFiles/gea_core.dir/sumy.cc.o.d"
  "/root/repo/src/core/sumy_ops.cc" "src/core/CMakeFiles/gea_core.dir/sumy_ops.cc.o" "gcc" "src/core/CMakeFiles/gea_core.dir/sumy_ops.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gea_common.dir/DependInfo.cmake"
  "/root/repo/build/src/rel/CMakeFiles/gea_rel.dir/DependInfo.cmake"
  "/root/repo/build/src/sage/CMakeFiles/gea_sage.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/gea_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/interval/CMakeFiles/gea_interval.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
