file(REMOVE_RECURSE
  "CMakeFiles/gea_cluster.dir/distance.cc.o"
  "CMakeFiles/gea_cluster.dir/distance.cc.o.d"
  "CMakeFiles/gea_cluster.dir/fascicles.cc.o"
  "CMakeFiles/gea_cluster.dir/fascicles.cc.o.d"
  "CMakeFiles/gea_cluster.dir/hierarchical.cc.o"
  "CMakeFiles/gea_cluster.dir/hierarchical.cc.o.d"
  "CMakeFiles/gea_cluster.dir/kmeans.cc.o"
  "CMakeFiles/gea_cluster.dir/kmeans.cc.o.d"
  "CMakeFiles/gea_cluster.dir/metrics.cc.o"
  "CMakeFiles/gea_cluster.dir/metrics.cc.o.d"
  "CMakeFiles/gea_cluster.dir/optics.cc.o"
  "CMakeFiles/gea_cluster.dir/optics.cc.o.d"
  "libgea_cluster.a"
  "libgea_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gea_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
