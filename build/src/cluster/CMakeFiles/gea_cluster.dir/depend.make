# Empty dependencies file for gea_cluster.
# This may be replaced when dependencies are built.
