
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/distance.cc" "src/cluster/CMakeFiles/gea_cluster.dir/distance.cc.o" "gcc" "src/cluster/CMakeFiles/gea_cluster.dir/distance.cc.o.d"
  "/root/repo/src/cluster/fascicles.cc" "src/cluster/CMakeFiles/gea_cluster.dir/fascicles.cc.o" "gcc" "src/cluster/CMakeFiles/gea_cluster.dir/fascicles.cc.o.d"
  "/root/repo/src/cluster/hierarchical.cc" "src/cluster/CMakeFiles/gea_cluster.dir/hierarchical.cc.o" "gcc" "src/cluster/CMakeFiles/gea_cluster.dir/hierarchical.cc.o.d"
  "/root/repo/src/cluster/kmeans.cc" "src/cluster/CMakeFiles/gea_cluster.dir/kmeans.cc.o" "gcc" "src/cluster/CMakeFiles/gea_cluster.dir/kmeans.cc.o.d"
  "/root/repo/src/cluster/metrics.cc" "src/cluster/CMakeFiles/gea_cluster.dir/metrics.cc.o" "gcc" "src/cluster/CMakeFiles/gea_cluster.dir/metrics.cc.o.d"
  "/root/repo/src/cluster/optics.cc" "src/cluster/CMakeFiles/gea_cluster.dir/optics.cc.o" "gcc" "src/cluster/CMakeFiles/gea_cluster.dir/optics.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gea_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
