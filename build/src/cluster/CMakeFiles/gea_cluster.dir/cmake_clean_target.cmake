file(REMOVE_RECURSE
  "libgea_cluster.a"
)
