file(REMOVE_RECURSE
  "CMakeFiles/populate_test.dir/populate_test.cc.o"
  "CMakeFiles/populate_test.dir/populate_test.cc.o.d"
  "populate_test"
  "populate_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/populate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
