# Empty compiler generated dependencies file for populate_test.
# This may be replaced when dependencies are built.
