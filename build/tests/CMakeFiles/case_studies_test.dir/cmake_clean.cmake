file(REMOVE_RECURSE
  "CMakeFiles/case_studies_test.dir/case_studies_test.cc.o"
  "CMakeFiles/case_studies_test.dir/case_studies_test.cc.o.d"
  "case_studies_test"
  "case_studies_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/case_studies_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
