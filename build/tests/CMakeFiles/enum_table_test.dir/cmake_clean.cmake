file(REMOVE_RECURSE
  "CMakeFiles/enum_table_test.dir/enum_table_test.cc.o"
  "CMakeFiles/enum_table_test.dir/enum_table_test.cc.o.d"
  "enum_table_test"
  "enum_table_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/enum_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
