# Empty compiler generated dependencies file for enum_table_test.
# This may be replaced when dependencies are built.
