file(REMOVE_RECURSE
  "CMakeFiles/tag_codec_test.dir/tag_codec_test.cc.o"
  "CMakeFiles/tag_codec_test.dir/tag_codec_test.cc.o.d"
  "tag_codec_test"
  "tag_codec_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tag_codec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
