# Empty compiler generated dependencies file for fascicles_test.
# This may be replaced when dependencies are built.
