file(REMOVE_RECURSE
  "CMakeFiles/fascicles_test.dir/fascicles_test.cc.o"
  "CMakeFiles/fascicles_test.dir/fascicles_test.cc.o.d"
  "fascicles_test"
  "fascicles_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fascicles_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
