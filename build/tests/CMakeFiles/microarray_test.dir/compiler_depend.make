# Empty compiler generated dependencies file for microarray_test.
# This may be replaced when dependencies are built.
