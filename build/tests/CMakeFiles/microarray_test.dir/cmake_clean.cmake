file(REMOVE_RECURSE
  "CMakeFiles/microarray_test.dir/microarray_test.cc.o"
  "CMakeFiles/microarray_test.dir/microarray_test.cc.o.d"
  "microarray_test"
  "microarray_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/microarray_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
