file(REMOVE_RECURSE
  "CMakeFiles/mine_alternatives_test.dir/mine_alternatives_test.cc.o"
  "CMakeFiles/mine_alternatives_test.dir/mine_alternatives_test.cc.o.d"
  "mine_alternatives_test"
  "mine_alternatives_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mine_alternatives_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
