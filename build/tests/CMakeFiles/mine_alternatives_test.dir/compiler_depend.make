# Empty compiler generated dependencies file for mine_alternatives_test.
# This may be replaced when dependencies are built.
