# Empty compiler generated dependencies file for workbench_test.
# This may be replaced when dependencies are built.
