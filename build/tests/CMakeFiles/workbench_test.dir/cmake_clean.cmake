file(REMOVE_RECURSE
  "CMakeFiles/workbench_test.dir/workbench_test.cc.o"
  "CMakeFiles/workbench_test.dir/workbench_test.cc.o.d"
  "workbench_test"
  "workbench_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workbench_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
