file(REMOVE_RECURSE
  "CMakeFiles/sumy_gap_test.dir/sumy_gap_test.cc.o"
  "CMakeFiles/sumy_gap_test.dir/sumy_gap_test.cc.o.d"
  "sumy_gap_test"
  "sumy_gap_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sumy_gap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
