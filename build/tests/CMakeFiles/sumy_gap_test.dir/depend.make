# Empty dependencies file for sumy_gap_test.
# This may be replaced when dependencies are built.
