
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/lineage_test.cc" "tests/CMakeFiles/lineage_test.dir/lineage_test.cc.o" "gcc" "tests/CMakeFiles/lineage_test.dir/lineage_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gea_common.dir/DependInfo.cmake"
  "/root/repo/build/src/rel/CMakeFiles/gea_rel.dir/DependInfo.cmake"
  "/root/repo/build/src/interval/CMakeFiles/gea_interval.dir/DependInfo.cmake"
  "/root/repo/build/src/sage/CMakeFiles/gea_sage.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/gea_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/gea_core.dir/DependInfo.cmake"
  "/root/repo/build/src/lineage/CMakeFiles/gea_lineage.dir/DependInfo.cmake"
  "/root/repo/build/src/meta/CMakeFiles/gea_meta.dir/DependInfo.cmake"
  "/root/repo/build/src/workbench/CMakeFiles/gea_workbench.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
