// Reproduces the clustering claims the thesis builds on (Sections 2.3.1-
// 2.3.3): hierarchical clustering, k-means and OPTICS group SAGE
// libraries by tissue type (and by neoplastic state within a tissue), and
// pre-processing ("cleaning") improves the clusters markedly — the
// observation of Ng, Sander and Sleumer [NSS01] that motivates Section
// 4.2.
//
// For each algorithm the harness reports cluster purity and the adjusted
// Rand index against the true tissue-type labels, on the raw data and on
// the cleaned+normalized data.

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "common/text_plot.h"

#include "cluster/fascicles.h"
#include "cluster/hierarchical.h"
#include "cluster/kmeans.h"
#include "cluster/metrics.h"
#include "cluster/optics.h"
#include "sage/cleaning.h"
#include "sage/generator.h"
#include "sage/matrix.h"

namespace {

using namespace gea;

template <typename T>
T CheckResult(Result<T> result) {
  if (!result.ok()) {
    std::fprintf(stderr, "error: %s\n", result.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(result).value();
}

struct LabeledPoints {
  std::vector<std::vector<double>> points;   // one per library
  std::vector<int> tissue_labels;            // tissue type ordinal
  std::vector<int> state_labels;             // tissue x neoplastic state
};

LabeledPoints ToPoints(const sage::SageDataSet& data) {
  sage::ExpressionMatrix matrix = sage::ExpressionMatrix::FromDataSet(data);
  LabeledPoints out;
  for (size_t col = 0; col < matrix.NumLibraries(); ++col) {
    out.points.push_back(matrix.LibraryColumn(col));
    const sage::LibraryMeta& lib = matrix.library(col);
    out.tissue_labels.push_back(static_cast<int>(lib.tissue));
    out.state_labels.push_back(
        static_cast<int>(lib.tissue) * 2 +
        (lib.state == sage::NeoplasticState::kCancer ? 1 : 0));
  }
  return out;
}

struct Scores {
  double purity = 0.0;
  double ari = 0.0;
};

Scores Score(const std::vector<int>& assignment,
             const std::vector<int>& truth) {
  Scores s;
  s.purity = CheckResult(cluster::Purity(assignment, truth));
  s.ari = CheckResult(cluster::AdjustedRandIndex(assignment, truth));
  return s;
}

void Report(const char* name, const Scores& raw, const Scores& clean) {
  std::printf("  %-24s %8.3f %8.3f   %8.3f %8.3f\n", name, raw.purity,
              raw.ari, clean.purity, clean.ari);
}

std::vector<int> RunKMeans(const LabeledPoints& data, int k,
                           uint64_t seed) {
  cluster::KMeansParams params;
  params.k = k;
  params.seed = seed;
  return CheckResult(cluster::KMeans(data.points, params)).assignments;
}

std::vector<int> RunHierarchical(const LabeledPoints& data, size_t k) {
  cluster::Dendrogram dendro = CheckResult(cluster::HierarchicalCluster(
      data.points, cluster::DistanceKind::kPearson,
      cluster::Linkage::kAverage));
  return CheckResult(dendro.Cut(k));
}

std::vector<int> RunOptics(const LabeledPoints& data) {
  cluster::OpticsParams params;
  params.epsilon = 1.0;  // Pearson distance scale: [0, 2]
  params.min_pts = 3;
  params.distance = cluster::DistanceKind::kPearson;
  cluster::OpticsResult result =
      CheckResult(cluster::Optics(data.points, params));
  // Extraction threshold below the between-tissue correlation floor
  // (libraries share the housekeeping profile, so even unrelated tissues
  // correlate at Pearson distance ~0.35-0.4).
  return result.ExtractClusters(0.3);
}

}  // namespace

int main() {
  sage::GeneratorConfig config;
  config.seed = 42;  // the full nine-tissue panel (108 libraries)
  sage::SyntheticSage synth = sage::SyntheticSageGenerator(config).Generate();

  LabeledPoints raw = ToPoints(synth.dataset);

  sage::SageDataSet cleaned_data = synth.dataset;
  sage::CleanAndNormalize(cleaned_data);
  LabeledPoints clean = ToPoints(cleaned_data);

  const int kTissues = sage::kNumTissueTypes;
  std::printf("== Clustering SAGE libraries by tissue type ==\n");
  std::printf("(%zu libraries; raw: %zu dims, cleaned: %zu dims)\n\n",
              raw.points.size(), raw.points[0].size(),
              clean.points[0].size());
  std::printf("  %-24s %17s   %17s\n", "", "--- raw ---", "-- cleaned --");
  std::printf("  %-24s %8s %8s   %8s %8s\n", "algorithm", "purity", "ARI",
              "purity", "ARI");

  Report("k-means (k=9)",
         Score(RunKMeans(raw, kTissues, 7), raw.tissue_labels),
         Score(RunKMeans(clean, kTissues, 7), clean.tissue_labels));
  Report("hierarchical avg/Pearson",
         Score(RunHierarchical(raw, static_cast<size_t>(kTissues)),
               raw.tissue_labels),
         Score(RunHierarchical(clean, static_cast<size_t>(kTissues)),
               clean.tissue_labels));
  Report("OPTICS (Pearson)", Score(RunOptics(raw), raw.tissue_labels),
         Score(RunOptics(clean), clean.tissue_labels));

  std::printf("\n== Clustering by tissue type x neoplastic state ==\n\n");
  std::printf("  %-24s %8s %8s   %8s %8s\n", "algorithm", "purity", "ARI",
              "purity", "ARI");
  Report("k-means (k=18)",
         Score(RunKMeans(raw, kTissues * 2, 7), raw.state_labels),
         Score(RunKMeans(clean, kTissues * 2, 7), clean.state_labels));
  Report("hierarchical avg/Pearson",
         Score(RunHierarchical(raw, static_cast<size_t>(kTissues) * 2),
               raw.state_labels),
         Score(RunHierarchical(clean, static_cast<size_t>(kTissues) * 2),
               clean.state_labels));

  std::printf(
      "\nExpected shape (Sections 2.3.2-2.3.3): clusters recover tissue\n"
      "types and neoplastic states, and the cleaned data clusters at\n"
      "least as well as the raw data ([NSS01]: \"the clusters found in\n"
      "the 'cleaned' data are significantly improved\").\n");

  // The [NSS01] reachability view: OPTICS orders the cleaned libraries so
  // tissue-type clusters appear as valleys separated by reachability
  // peaks.
  cluster::OpticsParams params;
  params.epsilon = 1.0;
  params.min_pts = 3;
  params.distance = cluster::DistanceKind::kPearson;
  cluster::OpticsResult optics =
      CheckResult(cluster::Optics(clean.points, params));
  std::printf("\nOPTICS reachability over the cleaned panel (first 36 in "
              "cluster order;\npeaks = cluster boundaries):\n");
  std::vector<TextBar> bars;
  for (size_t i = 0; i < optics.ordering.size() && bars.size() < 36; ++i) {
    size_t idx = optics.ordering[i];
    double r = optics.reachability[idx];
    bars.push_back(
        {sage::TissueTypeName(
             static_cast<sage::TissueType>(clean.tissue_labels[idx])),
         r == cluster::OpticsResult::kUnreachable ? 1.0 : r, ""});
  }
  std::printf("%s", RenderBarChart(bars, 44).c_str());
  return 0;
}
