// Micro-benchmarks for the distribution layer: replication catch-up
// throughput (frame shipping and snapshot transfer, in bytes/sec) and
// the router's scatter-gather tax — the same aggregate write and merged
// read measured directly against one worker and through a router over
// 1, 2 and 4 shards, with p50/p99 request latency counters. All traffic
// crosses real loopback TCP.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "dist/partition.h"
#include "dist/repl.h"
#include "dist/router.h"
#include "sage/cleaning.h"
#include "sage/generator.h"
#include "serve/client.h"
#include "serve/server.h"
#include "workbench/session.h"

namespace {

using namespace gea;

sage::SageDataSet BenchData() {
  sage::GeneratorConfig config;
  config.seed = 2024;
  config.panels = sage::SyntheticSageGenerator::SmallPanels();
  sage::SyntheticSage synth = sage::SyntheticSageGenerator(config).Generate();
  sage::CleanAndNormalize(synth.dataset);
  return std::move(synth.dataset);
}

workbench::AnalysisSession* NewAdminSession() {
  auto* session = new workbench::AnalysisSession("admin", "secret");
  (void)session->Login("admin", "secret",
                       workbench::AccessLevel::kAdministrator);
  return session;
}

double PercentileMs(std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const size_t index = std::min(
      sorted.size() - 1, static_cast<size_t>(q * (sorted.size() - 1)));
  return sorted[index];
}

// ---- Replication catch-up ----

// One primary for the whole binary: storage-backed (the hub only ships
// acknowledged, fsynced appends), with kBufferedOps aggregate frames
// sitting in the hub buffer for followers to drain.
constexpr int kBufferedOps = 512;

struct Primary {
  workbench::AnalysisSession* session;
  serve::QueryServer* server;
  dist::ReplicationHub* hub;
  uint64_t floor_lsn;
};

Primary& SharedPrimary() {
  static Primary* primary = [] {
    const std::string dir =
        std::filesystem::temp_directory_path().string() + "/gea_bench_dist";
    std::filesystem::remove_all(dir);
    auto* p = new Primary();
    p->session = NewAdminSession();
    (void)p->session->OpenStorage(dir);
    (void)p->session->LoadDataSet(BenchData());
    (void)p->session->CreateTissueDataSet(sage::TissueType::kBrain);
    p->server = new serve::QueryServer(p->session);
    p->hub = new dist::ReplicationHub(p->session, p->server);
    p->floor_lsn = p->hub->FloorLsn();
    (void)p->server->Start();
    for (int i = 0; i < kBufferedOps; ++i) {
      (void)p->session->Aggregate("brain", "CatchUpSumy", /*replace=*/true);
    }
    return p;
  }();
  return *primary;
}

// A cold follower draining the full buffered history: repeated
// repl_frames pulls from the floor until the batch says it is caught
// up. Bytes/sec is the shipping throughput a replica sees during
// catch-up; items are WAL frames.
void BM_ReplCatchUpFrames(benchmark::State& state) {
  Primary& primary = SharedPrimary();
  serve::QueryClient client;
  if (!client.Connect(primary.server->Port()).ok() ||
      !client.Login("admin", "secret", "admin").ok()) {
    state.SkipWithError("connect failed");
    return;
  }

  int64_t bytes = 0;
  int64_t frames = 0;
  for (auto _ : state) {
    uint64_t from = primary.floor_lsn;
    while (true) {
      Result<serve::Response> response = client.Call(
          "repl_frames", {{"from_lsn", std::to_string(from)},
                          {"wait_ms", "0"}});
      if (!response.ok() || !response->ok()) {
        state.SkipWithError("repl_frames failed");
        return;
      }
      bytes += static_cast<int64_t>(response->text.size());
      Result<dist::FrameBatch> batch = dist::DecodeFrameBatch(response->text);
      if (!batch.ok()) {
        state.SkipWithError("bad frame batch");
        return;
      }
      frames += static_cast<int64_t>(batch->frames.size());
      if (batch->frames.empty()) break;
      from = batch->frames.back().lsn;
      if (from >= batch->durable_lsn) break;
    }
  }
  state.SetBytesProcessed(bytes);
  state.SetItemsProcessed(frames);
}
BENCHMARK(BM_ReplCatchUpFrames)->UseRealTime();

// The other catch-up path: a follower too far behind the buffer pulls a
// full snapshot. Bytes/sec is snapshot-transfer throughput.
void BM_ReplSnapshot(benchmark::State& state) {
  Primary& primary = SharedPrimary();
  serve::QueryClient client;
  if (!client.Connect(primary.server->Port()).ok() ||
      !client.Login("admin", "secret", "admin").ok()) {
    state.SkipWithError("connect failed");
    return;
  }
  int64_t bytes = 0;
  for (auto _ : state) {
    Result<serve::Response> response = client.Call("repl_snapshot", {});
    if (!response.ok() || !response->ok()) {
      state.SkipWithError("repl_snapshot failed");
      return;
    }
    bytes += static_cast<int64_t>(response->text.size());
  }
  state.SetBytesProcessed(bytes);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ReplSnapshot)->UseRealTime();

// ---- Router fan-out ----

// One cluster per shard count, started lazily and kept for the binary:
// N workers each loaded with their PartitionDataSet slice (plus the
// brain ENUM the workload touches), fronted by a router.
struct Cluster {
  std::vector<workbench::AnalysisSession*> sessions;
  std::vector<serve::QueryServer*> servers;
  dist::RouterServer* router = nullptr;
};

Cluster& SharedCluster(size_t shards) {
  static Cluster clusters[5];
  Cluster& cluster = clusters[shards];
  if (cluster.router != nullptr) return cluster;
  const sage::SageDataSet full = BenchData();
  dist::RouterServer::Options options;
  options.worker_user = "admin";
  options.worker_password = "secret";
  for (size_t shard = 0; shard < shards; ++shard) {
    auto* session = NewAdminSession();
    (void)session->LoadDataSet(dist::PartitionDataSet(full, shard, shards));
    (void)session->CreateTissueDataSet(sage::TissueType::kBrain);
    auto* server = new serve::QueryServer(session);
    (void)server->Start();
    options.worker_ports.push_back(server->Port());
    cluster.sessions.push_back(session);
    cluster.servers.push_back(server);
  }
  cluster.router = new dist::RouterServer(options);
  (void)cluster.router->Start();
  return cluster;
}

// Shared measurement loop with the p50/p99 idiom from bench_serve.
template <typename Call>
void RunLatencyBench(benchmark::State& state, serve::QueryClient& client,
                     Call call) {
  std::vector<double> latencies_ms;
  for (auto _ : state) {
    const auto start = std::chrono::steady_clock::now();
    if (!call(client)) {
      state.SkipWithError("request failed");
      return;
    }
    const auto end = std::chrono::steady_clock::now();
    latencies_ms.push_back(
        std::chrono::duration<double, std::milli>(end - start).count());
  }
  std::sort(latencies_ms.begin(), latencies_ms.end());
  state.counters["p50_ms"] =
      benchmark::Counter(PercentileMs(latencies_ms, 0.50));
  state.counters["p99_ms"] =
      benchmark::Counter(PercentileMs(latencies_ms, 0.99));
  state.SetItemsProcessed(state.iterations());
}

bool AggregateOnce(serve::QueryClient& client) {
  Result<serve::Response> response =
      client.Call("aggregate", {{"enum", "brain"},
                                {"out", "FanoutSumy"},
                                {"replace", "1"}});
  return response.ok() && response->ok();
}

bool FetchOnce(serve::QueryClient& client) {
  Result<serve::Response> response =
      client.Call("get_table", {{"name", "FanoutSumy"}});
  return response.ok() && response->ok() && response->table.has_value();
}

// The no-router baseline: the same ops against a single worker,
// measured over the same loopback hop.
void BM_DirectAggregate(benchmark::State& state) {
  Cluster& cluster = SharedCluster(1);
  serve::QueryClient client;
  if (!client.Connect(cluster.servers[0]->Port()).ok() ||
      !client.Login("admin", "secret", "admin").ok()) {
    state.SkipWithError("connect failed");
    return;
  }
  if (!AggregateOnce(client)) {
    state.SkipWithError("seed aggregate failed");
    return;
  }
  RunLatencyBench(state, client, AggregateOnce);
}
BENCHMARK(BM_DirectAggregate)->UseRealTime();

void BM_DirectFetch(benchmark::State& state) {
  Cluster& cluster = SharedCluster(1);
  serve::QueryClient client;
  if (!client.Connect(cluster.servers[0]->Port()).ok() ||
      !client.Login("admin", "secret", "admin").ok()) {
    state.SkipWithError("connect failed");
    return;
  }
  if (!AggregateOnce(client)) {
    state.SkipWithError("seed aggregate failed");
    return;
  }
  RunLatencyBench(state, client, FetchOnce);
}
BENCHMARK(BM_DirectFetch)->UseRealTime();

// The routed write: one broadcast to every shard per iteration. The
// arg is the shard count, so the rows read fan-out tax directly.
void BM_RouterAggregate(benchmark::State& state) {
  Cluster& cluster = SharedCluster(static_cast<size_t>(state.range(0)));
  serve::QueryClient client;
  if (!client.Connect(cluster.router->Port()).ok() ||
      !client.Login("router", "router-secret", "admin").ok()) {
    state.SkipWithError("connect failed");
    return;
  }
  if (!AggregateOnce(client)) {
    state.SkipWithError("seed aggregate failed");
    return;
  }
  RunLatencyBench(state, client, AggregateOnce);
}
BENCHMARK(BM_RouterAggregate)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

// The routed read: scatter to every shard, k-way TagNo merge, one
// response table per iteration.
void BM_RouterFetchMerged(benchmark::State& state) {
  Cluster& cluster = SharedCluster(static_cast<size_t>(state.range(0)));
  serve::QueryClient client;
  if (!client.Connect(cluster.router->Port()).ok() ||
      !client.Login("router", "router-secret", "admin").ok()) {
    state.SkipWithError("connect failed");
    return;
  }
  if (!AggregateOnce(client)) {
    state.SkipWithError("seed aggregate failed");
    return;
  }
  RunLatencyBench(state, client, FetchOnce);
}
BENCHMARK(BM_RouterFetchMerged)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

}  // namespace
