// Micro-benchmarks for the query service: request throughput and
// latency through the full stack — framing, admission queue, worker
// pool, session execution — over real loopback TCP. Each benchmark
// thread is one client connection, so the /threads:1, /threads:4 and
// /threads:16 rows give req/sec and p50/p99 latency at those client
// counts. The small payload is a ping (header-sized frames both ways);
// the large one is an SQL scan returning a table payload.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <memory>
#include <vector>

#include "sage/cleaning.h"
#include "sage/generator.h"
#include "serve/client.h"
#include "serve/server.h"
#include "workbench/session.h"

namespace {

using namespace gea;

// One shared server for the whole binary: an admin session over the
// deterministic small panel, with enough workers to keep 16 clients
// busy. Started lazily on first use.
serve::QueryServer& Server() {
  static serve::QueryServer* server = [] {
    sage::GeneratorConfig config;
    config.seed = 2024;
    config.panels = sage::SyntheticSageGenerator::SmallPanels();
    sage::SyntheticSage synth =
        sage::SyntheticSageGenerator(config).Generate();
    sage::CleanAndNormalize(synth.dataset);

    auto* session = new workbench::AnalysisSession("admin", "secret");
    (void)session->Login("admin", "secret",
                         workbench::AccessLevel::kAdministrator);
    (void)session->LoadDataSet(std::move(synth.dataset));

    serve::ServerOptions options;
    options.num_workers = 16;
    options.queue_capacity = 256;
    auto* s = new serve::QueryServer(session, options);
    (void)s->Start();
    return s;
  }();
  return *server;
}

double PercentileMs(std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const size_t index = std::min(
      sorted.size() - 1, static_cast<size_t>(q * (sorted.size() - 1)));
  return sorted[index];
}

// Runs `call` once per iteration on a per-thread authenticated client,
// timing each request; reports req/sec (items_per_second) plus p50/p99
// latency averaged across client threads.
template <typename Call>
void RunServeBench(benchmark::State& state, Call call,
                   bool tracing = false) {
  serve::QueryClient client;
  if (!client.Connect(Server().Port()).ok()) {
    state.SkipWithError("connect failed");
    return;
  }
  client.SetTracing(tracing);
  if (!client.Login("admin", "secret", "admin").ok()) {
    state.SkipWithError("login failed");
    return;
  }

  std::vector<double> latencies_ms;
  for (auto _ : state) {
    const auto start = std::chrono::steady_clock::now();
    if (!call(client)) {
      state.SkipWithError("request failed");
      return;
    }
    const auto end = std::chrono::steady_clock::now();
    latencies_ms.push_back(
        std::chrono::duration<double, std::milli>(end - start).count());
  }

  std::sort(latencies_ms.begin(), latencies_ms.end());
  state.counters["p50_ms"] = benchmark::Counter(
      PercentileMs(latencies_ms, 0.50), benchmark::Counter::kAvgThreads);
  state.counters["p99_ms"] = benchmark::Counter(
      PercentileMs(latencies_ms, 0.99), benchmark::Counter::kAvgThreads);
  state.SetItemsProcessed(state.iterations());
}

void BM_ServePing(benchmark::State& state) {
  RunServeBench(state, [](serve::QueryClient& client) {
    return client.Ping().ok();
  });
}
BENCHMARK(BM_ServePing)->Threads(1)->Threads(4)->Threads(16)->UseRealTime();

// The tracing tax: every request carries a trace context, is recorded
// into the trace ring (spans, stage attribution) and echoes the stage
// breakdown on the wire. Compare against BM_ServePing — the unsampled
// path, whose per-stage cost is one branch and one clock read.
void BM_ServePingTraced(benchmark::State& state) {
  RunServeBench(
      state,
      [](serve::QueryClient& client) { return client.Ping().ok(); },
      /*tracing=*/true);
}
BENCHMARK(BM_ServePingTraced)
    ->Threads(1)->Threads(4)->Threads(16)->UseRealTime();

void BM_ServeSqlScan(benchmark::State& state) {
  RunServeBench(state, [](serve::QueryClient& client) {
    return client.Sql("SELECT * FROM Libraries").ok();
  });
}
BENCHMARK(BM_ServeSqlScan)->Threads(1)->Threads(4)->Threads(16)
    ->UseRealTime();

}  // namespace
