// Micro-benchmarks for the query service: request throughput and
// latency through the full stack — framing, admission queue, worker
// pool, session execution — over real loopback TCP. Each benchmark
// thread is one client connection, so the /threads:1, /threads:4 and
// /threads:16 rows give req/sec and p50/p99 latency at those client
// counts. The small payload is a ping (header-sized frames both ways);
// the large one is an SQL scan returning a table payload.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "sage/cleaning.h"
#include "sage/generator.h"
#include "serve/client.h"
#include "serve/server.h"
#include "store/engine.h"
#include "workbench/session.h"

namespace {

using namespace gea;

// One shared server for the whole binary: an admin session over the
// deterministic small panel, with enough workers to keep 16 clients
// busy. Started lazily on first use.
serve::QueryServer& Server() {
  static serve::QueryServer* server = [] {
    sage::GeneratorConfig config;
    config.seed = 2024;
    config.panels = sage::SyntheticSageGenerator::SmallPanels();
    sage::SyntheticSage synth =
        sage::SyntheticSageGenerator(config).Generate();
    sage::CleanAndNormalize(synth.dataset);

    auto* session = new workbench::AnalysisSession("admin", "secret");
    (void)session->Login("admin", "secret",
                         workbench::AccessLevel::kAdministrator);
    (void)session->LoadDataSet(std::move(synth.dataset));
    // The brain ENUM backs BM_ServeMixed's writers (aggregate replace=1).
    (void)session->CreateTissueDataSet(sage::TissueType::kBrain);

    serve::ServerOptions options;
    options.num_workers = 16;
    options.queue_capacity = 256;
    auto* s = new serve::QueryServer(session, options);
    (void)s->Start();
    return s;
  }();
  return *server;
}

double PercentileMs(std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const size_t index = std::min(
      sorted.size() - 1, static_cast<size_t>(q * (sorted.size() - 1)));
  return sorted[index];
}

// Runs `call` once per iteration on a per-thread authenticated client,
// timing each request; reports req/sec (items_per_second) plus p50/p99
// latency averaged across client threads.
template <typename Call>
void RunServeBench(benchmark::State& state, Call call,
                   bool tracing = false) {
  serve::QueryClient client;
  if (!client.Connect(Server().Port()).ok()) {
    state.SkipWithError("connect failed");
    return;
  }
  client.SetTracing(tracing);
  if (!client.Login("admin", "secret", "admin").ok()) {
    state.SkipWithError("login failed");
    return;
  }

  std::vector<double> latencies_ms;
  for (auto _ : state) {
    const auto start = std::chrono::steady_clock::now();
    if (!call(client)) {
      state.SkipWithError("request failed");
      return;
    }
    const auto end = std::chrono::steady_clock::now();
    latencies_ms.push_back(
        std::chrono::duration<double, std::milli>(end - start).count());
  }

  std::sort(latencies_ms.begin(), latencies_ms.end());
  state.counters["p50_ms"] = benchmark::Counter(
      PercentileMs(latencies_ms, 0.50), benchmark::Counter::kAvgThreads);
  state.counters["p99_ms"] = benchmark::Counter(
      PercentileMs(latencies_ms, 0.99), benchmark::Counter::kAvgThreads);
  state.SetItemsProcessed(state.iterations());
}

void BM_ServePing(benchmark::State& state) {
  RunServeBench(state, [](serve::QueryClient& client) {
    return client.Ping().ok();
  });
}
BENCHMARK(BM_ServePing)->Threads(1)->Threads(4)->Threads(16)->UseRealTime();

// The tracing tax: every request carries a trace context, is recorded
// into the trace ring (spans, stage attribution) and echoes the stage
// breakdown on the wire. Compare against BM_ServePing — the unsampled
// path, whose per-stage cost is one branch and one clock read.
void BM_ServePingTraced(benchmark::State& state) {
  RunServeBench(
      state,
      [](serve::QueryClient& client) { return client.Ping().ok(); },
      /*tracing=*/true);
}
BENCHMARK(BM_ServePingTraced)
    ->Threads(1)->Threads(4)->Threads(16)->UseRealTime();

void BM_ServeSqlScan(benchmark::State& state) {
  RunServeBench(state, [](serve::QueryClient& client) {
    return client.Sql("SELECT * FROM Libraries").ok();
  });
}
BENCHMARK(BM_ServeSqlScan)->Threads(1)->Threads(4)->Threads(16)
    ->UseRealTime();

/// Bucket-wise difference of one named histogram between two registry
/// snapshots — the lock-wait distribution for exactly this benchmark run.
obs::HistogramValue DeltaHistogram(const obs::MetricsSnapshot& before,
                                   const obs::MetricsSnapshot& after,
                                   const std::string& name) {
  obs::HistogramValue delta;
  delta.name = name;
  const auto find = [&name](const obs::MetricsSnapshot& snapshot)
      -> const obs::HistogramValue* {
    for (const obs::HistogramValue& h : snapshot.histograms) {
      if (h.name == name) return &h;
    }
    return nullptr;
  };
  const obs::HistogramValue* b = find(before);
  const obs::HistogramValue* a = find(after);
  if (a == nullptr) return delta;
  delta.count = a->count - (b != nullptr ? b->count : 0);
  delta.sum = a->sum - (b != nullptr ? b->sum : 0);
  for (size_t i = 0; i < obs::kHistogramBuckets; ++i) {
    delta.buckets[i] = a->buckets[i] - (b != nullptr ? b->buckets[i] : 0);
  }
  return delta;
}

// The contention profile: every 4th client thread is a writer
// (aggregate replace=1, which holds the session lock exclusively), the
// rest are readers (SQL scans under the shared lock). Reports the
// session-lock wait count and p50/p99 for the run from the
// SharedTimedMutex histograms, alongside the usual request latency
// percentiles. On the small bench panel both ops hold the lock for
// single-digit microseconds, so near-zero lock_waits is the expected
// healthy reading — the row exists to catch the day that stops being
// true. The delta is snapshotted when client thread 0 finishes, so a
// tail of waits from still-running threads can be missed.
//
// Registered last on purpose: the leaked ScopedMetricsEnable below
// turns metrics on for the remainder of the process, and the earlier
// benchmarks must keep measuring the metrics-off fast path.
void BM_ServeMixed(benchmark::State& state) {
  static obs::ScopedMetricsEnable* metrics =
      new obs::ScopedMetricsEnable(true);
  (void)metrics;
  static obs::MetricsSnapshot before;
  if (state.thread_index() == 0) {
    before = obs::MetricsRegistry::Global().Snapshot();
  }

  const bool writer = state.thread_index() % 4 == 0;
  RunServeBench(state, [writer](serve::QueryClient& client) {
    if (writer) {
      return client
          .Call("aggregate", {{"enum", "brain"},
                              {"out", "BenchMixedSumy"},
                              {"replace", "1"}})
          .ok();
    }
    return client.Sql("SELECT * FROM Libraries").ok();
  });

  if (state.thread_index() == 0) {
    const obs::MetricsSnapshot after =
        obs::MetricsRegistry::Global().Snapshot();
    obs::HistogramValue reads =
        DeltaHistogram(before, after, "gea.lock.session.read_wait_nanos");
    const obs::HistogramValue writes =
        DeltaHistogram(before, after, "gea.lock.session.write_wait_nanos");
    // Merge both directions into one wait distribution.
    reads.count += writes.count;
    reads.sum += writes.sum;
    for (size_t i = 0; i < obs::kHistogramBuckets; ++i) {
      reads.buckets[i] += writes.buckets[i];
    }
    state.counters["lock_waits"] =
        benchmark::Counter(static_cast<double>(reads.count));
    state.counters["lock_wait_p50_ms"] = benchmark::Counter(
        static_cast<double>(reads.ApproxQuantile(0.50)) / 1e6);
    state.counters["lock_wait_p99_ms"] = benchmark::Counter(
        static_cast<double>(reads.ApproxQuantile(0.99)) / 1e6);
  }
}
BENCHMARK(BM_ServeMixed)->Threads(4)->Threads(16)->UseRealTime();

// ---- Group-commit sweep ----
//
// Storage-backed servers where every client is a writer (aggregate
// replace=1, one WAL record per request), so items_per_second is WAL
// commits per second. Two servers isolate the two durability modes:
//
//   BM_ServeCommitNoBatch — deferred commits off: each request fsyncs
//     its own record while still holding the writer lock, which is the
//     classic one-fsync-per-commit ceiling (~10k writes/s on most
//     disks, worse the more writers contend).
//   BM_ServeCommitBatched — the serving default: the ticket is waited
//     on after the writer lock drops, so concurrent writers' records
//     land in one leader-written batch under a single shared fsync.
//
// The recs_per_fsync counter (delta of gea.txn.group_commit_records
// over gea.txn.group_commits) shows the coalescing directly: ~1.0 in
// the no-batch rows, rising with the client count in the batched rows.
serve::QueryServer& GroupCommitServer(bool batched) {
  static serve::QueryServer* servers[2] = {nullptr, nullptr};
  serve::QueryServer*& slot = servers[batched ? 1 : 0];
  if (slot == nullptr) {
    const std::string dir =
        (std::filesystem::temp_directory_path() /
         (batched ? "gea_bench_gc_batched" : "gea_bench_gc_nobatch"))
            .string();
    std::filesystem::remove_all(dir);

    sage::GeneratorConfig config;
    config.seed = 2024;
    config.panels = sage::SyntheticSageGenerator::SmallPanels();
    sage::SyntheticSage synth =
        sage::SyntheticSageGenerator(config).Generate();
    sage::CleanAndNormalize(synth.dataset);

    auto* session = new workbench::AnalysisSession("admin", "secret");
    (void)session->Login("admin", "secret",
                         workbench::AccessLevel::kAdministrator);
    (void)session->OpenStorage(dir);
    (void)session->LoadDataSet(std::move(synth.dataset));
    (void)session->CreateTissueDataSet(sage::TissueType::kBrain);

    serve::ServerOptions options;
    options.num_workers = 16;
    options.queue_capacity = 256;
    slot = new serve::QueryServer(session, options);
    (void)slot->Start();
    // Start() switched the session to deferred commits; the no-batch
    // server reverts before any traffic so every request syncs inline.
    if (!batched) session->SetDeferredCommits(false);
  }
  return *slot;
}

void RunCommitBench(benchmark::State& state, bool batched) {
  static obs::ScopedMetricsEnable* metrics =
      new obs::ScopedMetricsEnable(true);
  (void)metrics;
  serve::QueryServer& server = GroupCommitServer(batched);
  static obs::MetricsSnapshot before;
  if (state.thread_index() == 0) {
    before = obs::MetricsRegistry::Global().Snapshot();
  }

  serve::QueryClient client;
  if (!client.Connect(server.Port()).ok()) {
    state.SkipWithError("connect failed");
    return;
  }
  if (!client.Login("admin", "secret", "admin").ok()) {
    state.SkipWithError("login failed");
    return;
  }
  const std::string out =
      "BenchGcSumy" + std::to_string(state.thread_index());
  for (auto _ : state) {
    if (!client
             .Call("aggregate",
                   {{"enum", "brain"}, {"out", out}, {"replace", "1"}})
             .ok()) {
      state.SkipWithError("aggregate failed");
      return;
    }
  }
  state.SetItemsProcessed(state.iterations());

  if (state.thread_index() == 0) {
    const obs::MetricsSnapshot after =
        obs::MetricsRegistry::Global().Snapshot();
    const auto counter = [](const obs::MetricsSnapshot& snapshot,
                            const std::string& name) -> double {
      for (const auto& c : snapshot.counters) {
        if (c.name == name) return static_cast<double>(c.value);
      }
      return 0.0;
    };
    const double fsyncs =
        counter(after, "gea.txn.group_commits") -
        counter(before, "gea.txn.group_commits");
    const double records =
        counter(after, "gea.txn.group_commit_records") -
        counter(before, "gea.txn.group_commit_records");
    state.counters["recs_per_fsync"] =
        benchmark::Counter(fsyncs > 0 ? records / fsyncs : 0.0);
  }
}

void BM_ServeCommitNoBatch(benchmark::State& state) {
  RunCommitBench(state, /*batched=*/false);
}
BENCHMARK(BM_ServeCommitNoBatch)
    ->Threads(1)->Threads(4)->Threads(16)->UseRealTime();

void BM_ServeCommitBatched(benchmark::State& state) {
  RunCommitBench(state, /*batched=*/true);
}
BENCHMARK(BM_ServeCommitBatched)
    ->Threads(1)->Threads(4)->Threads(16)->UseRealTime();

}  // namespace
