// Regenerates the two tables of Section 3.3.2:
//
//   Table 3.1 — the smallest number of indexes m guaranteeing, with
//   probability >= 0.999, that at least w of the p = 25,000 tags of a
//   SUMY table (drawn from n = 60,000 total tags) carry an index. This is
//   analytic and reproduces the thesis's numbers exactly.
//
//   Table 3.2 — the measured percentage of populate() execution time
//   saved when w index hits are available, on the synthetic SAGE data.
//   Absolute percentages are hardware- and data-dependent; the shape
//   (zero saving at w = 0, a large jump at w = 1, saturation by w ~ 8)
//   is the reproduced result.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "common/stopwatch.h"
#include "core/enum_table.h"
#include "core/index_advisor.h"
#include "core/operators.h"
#include "core/populate.h"
#include "core/sumy.h"
#include "sage/generator.h"

namespace {

using namespace gea;

void Check(const Status& status) {
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
T CheckResult(Result<T> result) {
  Check(result.status());
  return std::move(result).value();
}

void PrintTable31() {
  std::printf("Table 3.1: Number of Indices Required to Guarantee w Index "
              "Hits\n");
  std::printf("(n = 60,000 total tags, p = 25,000 SUMY tags, P >= 0.999)\n\n");
  std::printf("  %-22s %-24s\n", "At Least w Indices Hit",
              "Number of Indices Required (m)");
  for (int64_t w = 1; w <= 10; ++w) {
    int64_t m = CheckResult(core::RequiredIndexCount(60000, 25000, w, 0.999));
    std::printf("  %-22lld %-24lld\n", static_cast<long long>(w),
                static_cast<long long>(m));
  }
  std::printf("\n");
}

// Builds the benchmark substrate: the full synthetic panel (raw, so the
// tag universe is large), an ENUM over 60,000 of its tags, and a SUMY
// carrying 25,000 range conditions taken from the brain cancer cluster.
struct Table32Substrate {
  core::EnumTable base;
  core::SumyTable sumy;
  std::vector<sage::TagId> indexable;  // SUMY tags, best entropy first
};

Table32Substrate BuildSubstrate() {
  sage::GeneratorConfig config;
  config.seed = 1234;
  sage::SyntheticSage synth = sage::SyntheticSageGenerator(config).Generate();

  std::vector<sage::TagId> universe = synth.dataset.TagUniverse();
  const size_t kTotalTags = 60000;
  if (universe.size() > kTotalTags) universe.resize(kTotalTags);
  core::EnumTable base =
      core::EnumTable::FromDataSet("SAGE", synth.dataset, universe);

  // The query: the brain cancer cluster's definition over p = 25,000 tags
  // (every surviving tag, padded with low-tag ranges when short).
  core::EnumTable brain_cancer = base.FilterLibraries(
      "brain_cancer", [](const sage::LibraryMeta& lib) {
        return lib.tissue == sage::TissueType::kBrain &&
               lib.state == sage::NeoplasticState::kCancer;
      });
  const size_t kConditions = 25000;
  std::vector<core::SumyEntry> entries;
  entries.reserve(kConditions);
  for (size_t col = 0; col < base.NumTags() && entries.size() < kConditions;
       col += base.NumTags() / kConditions + 1) {
    core::SumyEntry e;
    e.tag = base.tag(col);
    double lo = brain_cancer.ValueAt(0, col);
    double hi = lo;
    for (size_t row = 0; row < brain_cancer.NumLibraries(); ++row) {
      double v = brain_cancer.ValueAt(row, col);
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    e.min = lo;
    e.max = hi;
    e.mean = (lo + hi) / 2;
    e.stddev = 0.0;
    entries.push_back(e);
  }
  core::SumyTable sumy =
      CheckResult(core::SumyTable::Create("brain_cancer_query",
                                          std::move(entries)));

  // Candidate index tags: the SUMY's tags ranked by entropy over the
  // base table — exactly the Section 3.3.2 heuristic ("pick the tags
  // with the highest entropy, that is, highest variation"), restricted
  // to the query's tags so every built index is a hit.
  std::vector<std::pair<double, sage::TagId>> scored;
  for (const core::SumyEntry& e : sumy.entries()) {
    size_t col = *base.FindTagColumn(e.tag);
    scored.emplace_back(core::TagEntropy(base, col), e.tag);
  }
  std::sort(scored.begin(), scored.end(), [](const auto& a, const auto& b) {
    return a.first > b.first;
  });
  std::vector<sage::TagId> indexable;
  for (const auto& [entropy, tag] : scored) indexable.push_back(tag);

  return {std::move(base), std::move(sumy), std::move(indexable)};
}

double MeasurePopulateSeconds(const core::PopulateEngine& engine,
                              const core::SumyTable& sumy, int repetitions) {
  // kFullRow emulates the host DBMS's row-store cost model (fetching a
  // tuple costs the whole tuple), which is the regime Table 3.2 measures.
  const auto kMode = core::PopulateEngine::ScanMode::kFullRow;
  core::EnumTable warmup =
      CheckResult(engine.Populate(sumy, "warmup", nullptr, kMode));
  (void)warmup;
  Stopwatch watch;
  size_t sink = 0;
  for (int rep = 0; rep < repetitions; ++rep) {
    core::EnumTable out =
        CheckResult(engine.Populate(sumy, "out", nullptr, kMode));
    sink += out.NumLibraries();
  }
  double elapsed = watch.ElapsedSeconds();
  if (sink == static_cast<size_t>(-1)) std::printf("?");  // defeat DCE
  return elapsed / repetitions;
}

void PrintTable32() {
  std::printf("Table 3.2: Measured Time Saving of populate() per Index "
              "Hit Count\n");
  std::printf("(synthetic SAGE panel: %d libraries, 60,000 tags, 25,000 "
              "range conditions)\n\n",
              108);
  Table32Substrate substrate = BuildSubstrate();
  std::printf("  base ENUM: %zu libraries x %zu tags; query: %zu "
              "conditions\n\n",
              substrate.base.NumLibraries(), substrate.base.NumTags(),
              substrate.sumy.NumTags());

  const int kReps = 20;
  core::PopulateEngine sequential(substrate.base);
  double baseline = MeasurePopulateSeconds(sequential, substrate.sumy, kReps);

  std::printf("  %-14s %-16s %-12s\n", "w Indices Hit", "time/op (ms)",
              "Time Saved (%)");
  std::printf("  %-14d %-16.3f %-12d\n", 0, baseline * 1e3, 0);
  for (int w : {1, 2, 3, 4, 5, 6, 7, 8, 9, 10}) {
    core::PopulateEngine engine(substrate.base);
    std::vector<sage::TagId> index_tags(
        substrate.indexable.begin(),
        substrate.indexable.begin() +
            std::min<size_t>(static_cast<size_t>(w),
                             substrate.indexable.size()));
    Check(engine.BuildIndexes(index_tags));
    core::PopulateEngine::Stats stats;
    core::EnumTable probe =
        CheckResult(engine.Populate(substrate.sumy, "probe", &stats));
    double timed = MeasurePopulateSeconds(engine, substrate.sumy, kReps);
    double saving = 100.0 * (1.0 - timed / baseline);
    std::printf("  %-14zu %-16.3f %-12.0f\n", stats.index_hits, timed * 1e3,
                saving);
  }
  std::printf(
      "\nShape check vs the thesis (0%% -> ~45%% -> saturating ~90%%):\n"
      "absolute numbers differ with hardware and data, the monotone jump\n"
      "at w = 1 and the saturation at large w are the reproduced result.\n");
}

// ---- Ablation: how much of the saving comes from *which* tags the
// Section 3.3.2 heuristic indexes? ----

void PrintIndexPolicyAblation() {
  std::printf("\nAblation: index-selection policy at m = 4 indexes\n");
  std::printf("(same query as Table 3.2; policies pick which 4 of the "
              "query's tags get indexes)\n\n");
  Table32Substrate substrate = BuildSubstrate();
  const int kReps = 20;
  core::PopulateEngine sequential(substrate.base);
  double baseline = MeasurePopulateSeconds(sequential, substrate.sumy, kReps);

  struct Policy {
    const char* name;
    std::vector<sage::TagId> tags;
  };
  // Entropy-ranked (the thesis's heuristic) is substrate.indexable.
  std::vector<sage::TagId> entropy(substrate.indexable.begin(),
                                   substrate.indexable.begin() + 4);
  // True selectivity: fewest base libraries inside the queried range.
  std::vector<std::pair<size_t, sage::TagId>> by_selectivity;
  for (const core::SumyEntry& e : substrate.sumy.entries()) {
    size_t col = *substrate.base.FindTagColumn(e.tag);
    size_t in_range = 0;
    for (size_t row = 0; row < substrate.base.NumLibraries(); ++row) {
      double v = substrate.base.ValueAt(row, col);
      if (v >= e.min && v <= e.max) ++in_range;
    }
    by_selectivity.emplace_back(in_range, e.tag);
  }
  std::sort(by_selectivity.begin(), by_selectivity.end());
  std::vector<sage::TagId> selective;
  std::vector<sage::TagId> worst;
  for (int i = 0; i < 4; ++i) {
    selective.push_back(by_selectivity[static_cast<size_t>(i)].second);
    worst.push_back(
        by_selectivity[by_selectivity.size() - 1 - static_cast<size_t>(i)]
            .second);
  }
  // "Random": evenly spaced through the query's tags.
  std::vector<sage::TagId> random;
  for (int i = 0; i < 4; ++i) {
    random.push_back(
        substrate.sumy
            .entry(substrate.sumy.NumTags() / 5 * static_cast<size_t>(i + 1))
            .tag);
  }

  std::printf("  %-28s %-16s %-12s\n", "policy", "time/op (ms)",
              "Time Saved (%)");
  std::printf("  %-28s %-16.3f %-12d\n", "no indexes", baseline * 1e3, 0);
  for (const Policy& policy :
       {Policy{"top entropy (thesis 3.3.2)", entropy},
        Policy{"most selective (oracle)", selective},
        Policy{"evenly spaced (random-ish)", random},
        Policy{"least selective (worst)", worst}}) {
    core::PopulateEngine engine(substrate.base);
    Check(engine.BuildIndexes(policy.tags));
    double timed = MeasurePopulateSeconds(engine, substrate.sumy, kReps);
    std::printf("  %-28s %-16.3f %-12.0f\n", policy.name, timed * 1e3,
                100.0 * (1.0 - timed / baseline));
  }
  std::printf(
      "\nThe entropy heuristic lands near the selectivity oracle — the\n"
      "design rationale of Section 3.3.2 ('pick the tags with the highest\n"
      "entropy, that is, highest variation').\n");
}

}  // namespace

int main() {
  PrintTable31();
  PrintTable32();
  PrintIndexPolicyAblation();
  return 0;
}
