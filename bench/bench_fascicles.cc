// Micro-benchmarks for the Fascicles miner, checking the complexity claim
// of Section 3.3.1: "in the case of fascicles, the complexity is linear
// with respect to the number of libraries and the number of compact
// tags". The sweeps below scale libraries and tags independently; with
// --benchmark_enable_random_interleaving the reported times should grow
// roughly linearly along each sweep.

#include <benchmark/benchmark.h>

#include <vector>

#include "cluster/fascicles.h"
#include "common/rng.h"
#include "common/thread_pool.h"

namespace {

using namespace gea;

// A matrix with planted block structure: `rows` libraries over `cols`
// tags, where rows agree tightly within two planted groups.
std::vector<double> PlantedMatrix(size_t rows, size_t cols, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> data(rows * cols);
  std::vector<double> group_a(cols);
  std::vector<double> group_b(cols);
  for (size_t c = 0; c < cols; ++c) {
    group_a[c] = rng.UniformDouble(0.0, 100.0);
    group_b[c] = rng.UniformDouble(0.0, 100.0);
  }
  for (size_t r = 0; r < rows; ++r) {
    const std::vector<double>& base = (r % 2 == 0) ? group_a : group_b;
    for (size_t c = 0; c < cols; ++c) {
      data[r * cols + c] = base[c] + rng.Normal(0.0, 1.5);
    }
  }
  return data;
}

void BM_GreedyMine_Libraries(benchmark::State& state) {
  const size_t rows = static_cast<size_t>(state.range(0));
  const size_t cols = 512;
  std::vector<double> data = PlantedMatrix(rows, cols, 99);
  cluster::FascicleMiner miner(data.data(), rows, cols);
  cluster::FascicleParams params;
  params.min_compact_tags = cols / 2;
  params.tolerances.assign(cols, 8.0);
  params.min_size = 3;
  params.batch_size = 6;
  for (auto _ : state) {
    auto result = miner.Mine(params);
    benchmark::DoNotOptimize(result);
  }
  state.SetComplexityN(static_cast<int64_t>(rows));
}
BENCHMARK(BM_GreedyMine_Libraries)->RangeMultiplier(2)->Range(8, 64)
    ->Complexity(benchmark::oN);

void BM_GreedyMine_Tags(benchmark::State& state) {
  const size_t rows = 16;
  const size_t cols = static_cast<size_t>(state.range(0));
  std::vector<double> data = PlantedMatrix(rows, cols, 99);
  cluster::FascicleMiner miner(data.data(), rows, cols);
  cluster::FascicleParams params;
  params.min_compact_tags = cols / 2;
  params.tolerances.assign(cols, 8.0);
  params.min_size = 3;
  params.batch_size = 6;
  for (auto _ : state) {
    auto result = miner.Mine(params);
    benchmark::DoNotOptimize(result);
  }
  state.SetComplexityN(static_cast<int64_t>(cols));
}
BENCHMARK(BM_GreedyMine_Tags)->RangeMultiplier(2)->Range(128, 2048)
    ->Complexity(benchmark::oN);

void BM_ExactMine(benchmark::State& state) {
  const size_t rows = static_cast<size_t>(state.range(0));
  const size_t cols = 64;
  std::vector<double> data = PlantedMatrix(rows, cols, 7);
  cluster::FascicleMiner miner(data.data(), rows, cols);
  cluster::FascicleParams params;
  params.min_compact_tags = cols * 3 / 4;  // strict: keeps the lattice small
  params.tolerances.assign(cols, 6.0);
  params.min_size = 3;
  params.algorithm = cluster::FascicleParams::Algorithm::kExact;
  for (auto _ : state) {
    auto result = miner.Mine(params);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_ExactMine)->DenseRange(8, 16, 4);

// Thread sweep over the candidate-evaluation loop: speedup is the time
// ratio between the threads:1 row and the higher-thread rows.
void BM_GreedyMine_Threads(benchmark::State& state) {
  ThreadCountOverride threads(static_cast<size_t>(state.range(0)));
  const size_t rows = 48;
  const size_t cols = 1024;
  std::vector<double> data = PlantedMatrix(rows, cols, 99);
  cluster::FascicleMiner miner(data.data(), rows, cols);
  cluster::FascicleParams params;
  params.min_compact_tags = cols / 2;
  params.tolerances.assign(cols, 8.0);
  params.min_size = 3;
  params.batch_size = 6;
  for (auto _ : state) {
    auto result = miner.Mine(params);
    benchmark::DoNotOptimize(result);
  }
  state.counters["threads"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_GreedyMine_Threads)->ArgName("threads")
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_ExactMine_Threads(benchmark::State& state) {
  ThreadCountOverride threads(static_cast<size_t>(state.range(0)));
  const size_t rows = 16;
  const size_t cols = 64;
  std::vector<double> data = PlantedMatrix(rows, cols, 7);
  cluster::FascicleMiner miner(data.data(), rows, cols);
  cluster::FascicleParams params;
  params.min_compact_tags = cols * 3 / 4;
  params.tolerances.assign(cols, 6.0);
  params.min_size = 3;
  params.algorithm = cluster::FascicleParams::Algorithm::kExact;
  for (auto _ : state) {
    auto result = miner.Mine(params);
    benchmark::DoNotOptimize(result);
  }
  state.counters["threads"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_ExactMine_Threads)->ArgName("threads")
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_CompactCount(benchmark::State& state) {
  const size_t rows = 32;
  const size_t cols = static_cast<size_t>(state.range(0));
  std::vector<double> data = PlantedMatrix(rows, cols, 3);
  cluster::FascicleMiner miner(data.data(), rows, cols);
  std::vector<double> tol(cols, 8.0);
  std::vector<size_t> members = {0, 2, 4, 6, 8, 10};
  for (auto _ : state) {
    benchmark::DoNotOptimize(miner.CountCompactColumns(members, tol));
  }
  state.SetComplexityN(static_cast<int64_t>(cols));
}
BENCHMARK(BM_CompactCount)->RangeMultiplier(4)->Range(256, 16384)
    ->Complexity(benchmark::oN);

void BM_ToleranceMetadata(benchmark::State& state) {
  const size_t rows = 32;
  const size_t cols = static_cast<size_t>(state.range(0));
  std::vector<double> data = PlantedMatrix(rows, cols, 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cluster::TolerancesFromWidthPercent(data.data(), rows, cols, 10.0));
  }
}
BENCHMARK(BM_ToleranceMetadata)->RangeMultiplier(4)->Range(256, 16384);

}  // namespace
