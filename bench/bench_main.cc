// Shared main for the micro-benchmarks. Adds one flag on top of the
// google-benchmark set:
//
//   --threads=N   pin the parallel operator engine to N threads for every
//                 benchmark (N=1 forces the serial path). Without it the
//                 engine uses GEA_THREADS / the hardware default, and the
//                 *_Threads sweeps still override per-benchmark to report
//                 serial-vs-parallel speedup.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <optional>

#include "common/thread_pool.h"

int main(int argc, char** argv) {
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--threads=", 10) == 0) {
      std::optional<size_t> threads = gea::ParseThreadCount(arg + 10);
      if (!threads.has_value()) {
        std::fprintf(stderr, "invalid --threads value: %s\n", arg + 10);
        return 1;
      }
      gea::SetThreadOverride(threads);
      continue;  // consumed: hide it from the benchmark flag parser
    }
    argv[out++] = argv[i];
  }
  argc = out;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
