// Shared main for the micro-benchmarks. Adds two flags on top of the
// google-benchmark set:
//
//   --threads=N     pin the parallel operator engine to N threads for every
//                   benchmark (N=1 forces the serial path). Without it the
//                   engine uses GEA_THREADS / the hardware default, and the
//                   *_Threads sweeps still override per-benchmark to report
//                   serial-vs-parallel speedup.
//   --json=<path>   additionally write one JSON object per benchmark to
//                   <path>: name, threads, iterations, mean/min wall ms and
//                   the registry counters the benchmark moved. Implies
//                   metrics collection (as if GEA_METRICS=1) so the counter
//                   deltas are populated.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "obs/export.h"
#include "obs/metrics.h"

namespace {

// The console reporter plus a JSON-lines side channel: after each
// benchmark's runs are printed, emit one object with timing aggregates and
// the registry counter deltas attributable to that benchmark.
class JsonLinesReporter : public benchmark::ConsoleReporter {
 public:
  explicit JsonLinesReporter(std::FILE* out) : out_(out) {}

  void ReportRuns(const std::vector<Run>& reports) override {
    ConsoleReporter::ReportRuns(reports);

    gea::obs::MetricsSnapshot now =
        gea::obs::MetricsRegistry::Global().Snapshot();
    std::vector<gea::obs::CounterDelta> deltas =
        gea::obs::DiffCounters(prev_, now);
    prev_ = std::move(now);

    // Aggregate the plain iteration runs (repetitions show up as several
    // Run entries plus mean/median aggregates; we fold them ourselves so
    // the output shape does not depend on --benchmark_repetitions).
    std::string name;
    int64_t iterations = 0;
    size_t runs = 0;
    double total_ms = 0.0;
    double min_ms = 0.0;
    for (const Run& run : reports) {
      if (run.run_type != Run::RT_Iteration) continue;
      if (name.empty()) name = run.benchmark_name();
      const double per_iter_ms =
          run.iterations == 0
              ? 0.0
              : run.real_accumulated_time /
                    static_cast<double>(run.iterations) * 1e3;
      if (runs == 0 || per_iter_ms < min_ms) min_ms = per_iter_ms;
      total_ms += per_iter_ms;
      iterations += run.iterations;
      ++runs;
    }
    if (runs == 0) return;  // aggregate-only report: already folded above

    std::string line = "{\"name\":\"" + gea::obs::JsonEscape(name) + "\"";
    line += ",\"threads\":" + std::to_string(gea::ConfiguredThreads());
    line += ",\"iterations\":" + std::to_string(iterations);
    line += ",\"repetitions\":" + std::to_string(runs);
    char buf[64];
    std::snprintf(buf, sizeof(buf), ",\"mean_ms\":%.6f",
                  total_ms / static_cast<double>(runs));
    line += buf;
    std::snprintf(buf, sizeof(buf), ",\"min_ms\":%.6f", min_ms);
    line += buf;
    line += ",\"counters\":{";
    bool first = true;
    for (const gea::obs::CounterDelta& d : deltas) {
      if (!first) line += ',';
      first = false;
      line += '"' + gea::obs::JsonEscape(d.name) +
              "\":" + std::to_string(d.delta);
    }
    line += "}}\n";
    std::fputs(line.c_str(), out_);
    std::fflush(out_);
  }

 private:
  std::FILE* out_;
  gea::obs::MetricsSnapshot prev_ =
      gea::obs::MetricsRegistry::Global().Snapshot();
};

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--threads=", 10) == 0) {
      std::optional<size_t> threads = gea::ParseThreadCount(arg + 10);
      if (!threads.has_value()) {
        std::fprintf(stderr, "invalid --threads value: %s\n", arg + 10);
        return 1;
      }
      gea::SetThreadOverride(threads);
      continue;  // consumed: hide it from the benchmark flag parser
    }
    if (std::strncmp(arg, "--json=", 7) == 0) {
      json_path = arg + 7;
      if (json_path.empty()) {
        std::fprintf(stderr, "empty --json path\n");
        return 1;
      }
      continue;
    }
    argv[out++] = argv[i];
  }
  argc = out;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;

  if (json_path.empty()) {
    benchmark::RunSpecifiedBenchmarks();
  } else {
    std::FILE* json_out = std::fopen(json_path.c_str(), "w");
    if (json_out == nullptr) {
      std::fprintf(stderr, "cannot open %s for writing\n", json_path.c_str());
      return 1;
    }
    // Counter deltas are only meaningful with metrics on.
    gea::obs::ScopedMetricsEnable metrics(true);
    JsonLinesReporter reporter(json_out);
    benchmark::RunSpecifiedBenchmarks(&reporter);
    std::fclose(json_out);
  }
  benchmark::Shutdown();
  return 0;
}
