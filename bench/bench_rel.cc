// Micro-benchmarks for the relational substrate (the host-DBMS stand-in):
// selection, hash join, sort, group-aggregate and the sorted range index.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "rel/expr.h"
#include "rel/index.h"
#include "rel/ops.h"
#include "rel/table.h"

namespace {

using namespace gea;
using namespace gea::rel;

Table MakeTable(size_t rows, uint64_t seed) {
  Rng rng(seed);
  Schema schema({{"id", ValueType::kInt},
                 {"bucket", ValueType::kInt},
                 {"value", ValueType::kDouble},
                 {"name", ValueType::kString}});
  Table table("bench", schema);
  for (size_t r = 0; r < rows; ++r) {
    table.AppendRowUnchecked(
        {Value::Int(static_cast<int64_t>(r)),
         Value::Int(rng.UniformInt(0, 99)),
         Value::Double(rng.UniformDouble(0.0, 1000.0)),
         Value::String("row_" + std::to_string(r % 1000))});
  }
  return table;
}

void BM_Select(benchmark::State& state) {
  Table table = MakeTable(static_cast<size_t>(state.range(0)), 1);
  for (auto _ : state) {
    PredicatePtr pred =
        Between("value", Value::Double(100.0), Value::Double(300.0));
    benchmark::DoNotOptimize(Select(table, pred, "out"));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Select)->RangeMultiplier(4)->Range(1000, 64000)
    ->Complexity(benchmark::oN);

// Row-at-a-time counterpart of BM_Select: the same predicate evaluated
// through EvalBound on materialized Rows — the pre-columnar scan path,
// kept benchmarked so the columnar-vs-row gap stays visible.
void BM_SelectRow(benchmark::State& state) {
  Table table = MakeTable(static_cast<size_t>(state.range(0)), 1);
  for (auto _ : state) {
    PredicatePtr pred =
        Between("value", Value::Double(100.0), Value::Double(300.0));
    if (!pred->Bind(table.schema()).ok()) state.SkipWithError("bind");
    Table out("out", table.schema());
    for (size_t r = 0; r < table.NumRows(); ++r) {
      Row row = table.GetRow(r);
      if (pred->EvalBound(row)) out.AppendRowUnchecked(std::move(row));
    }
    benchmark::DoNotOptimize(out);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_SelectRow)->RangeMultiplier(4)->Range(1000, 64000)
    ->Complexity(benchmark::oN);

void BM_HashJoin(benchmark::State& state) {
  Table left = MakeTable(static_cast<size_t>(state.range(0)), 1);
  Table right = MakeTable(static_cast<size_t>(state.range(0)) / 4, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(HashJoin(left, right, "bucket", "bucket", "j"));
  }
}
BENCHMARK(BM_HashJoin)->Arg(1000)->Arg(4000);

void BM_Sort(benchmark::State& state) {
  Table table = MakeTable(static_cast<size_t>(state.range(0)), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        Sort(table, {{"bucket", true}, {"value", false}}, "s"));
  }
}
BENCHMARK(BM_Sort)->RangeMultiplier(4)->Range(1000, 64000);

void BM_GroupAggregate(benchmark::State& state) {
  Table table = MakeTable(static_cast<size_t>(state.range(0)), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(GroupAggregate(
        table, {"bucket"},
        {{AggFn::kCount, "", "n"},
         {AggFn::kAvg, "value", "avg_v"},
         {AggFn::kStdDev, "value", "sd_v"}},
        "g"));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_GroupAggregate)->RangeMultiplier(4)->Range(1000, 64000)
    ->Complexity(benchmark::oN);

void BM_IndexBuild(benchmark::State& state) {
  Table table = MakeTable(static_cast<size_t>(state.range(0)), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SortedIndex::Build(table, "value"));
  }
}
BENCHMARK(BM_IndexBuild)->Arg(1000)->Arg(16000)->Arg(64000);

void BM_IndexRangeLookup(benchmark::State& state) {
  Table table = MakeTable(static_cast<size_t>(state.range(0)), 1);
  SortedIndex index = std::move(SortedIndex::Build(table, "value")).value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        index.RangeLookup(Value::Double(400.0), Value::Double(410.0)));
  }
}
BENCHMARK(BM_IndexRangeLookup)->Arg(1000)->Arg(16000)->Arg(64000);

void BM_SetIntersect(benchmark::State& state) {
  Table a = MakeTable(static_cast<size_t>(state.range(0)), 1);
  Table b = MakeTable(static_cast<size_t>(state.range(0)), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Intersect(a, b, "i"));
  }
}
BENCHMARK(BM_SetIntersect)->Arg(1000)->Arg(8000);

}  // namespace
