// Regenerates the case-study figures of Chapter 4 as text series:
//
//   Table 2.2  — the SAGE fragment and its 5-D fascicle.
//   Fig. 4.2   — a positive-gap gene: cancer-in-fascicle high vs normal.
//   Fig. 4.3   — a negative-gap gene: silenced in the cancer fascicle.
//   Fig. 4.10  — the per-library distribution of one top tag.
//   Fig. 4.11  — a gene separating cancer inside vs outside the fascicle.
//   Fig. 4.13  — tags always lower in cancer in both tissue types.
//   Fig. 4.14  — tags deregulated only in brain cancer.
//
// Paper numbers are from the real NCBI SAGE data; this harness reproduces
// the *shape* of each figure on the synthetic data set (group means and
// orderings, not absolute values).

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "cluster/fascicles.h"
#include "core/gap_compare.h"
#include "core/gap_ops.h"
#include "sage/cleaning.h"
#include "sage/generator.h"
#include "workbench/session.h"

namespace {

using namespace gea;
using workbench::AccessLevel;
using workbench::AnalysisSession;

void Check(const Status& status) {
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
T CheckResult(Result<T> result) {
  Check(result.status());
  return std::move(result).value();
}

// ---- Table 2.2 ----

void PrintTable22() {
  std::printf("== Table 2.2: the SAGE fragment and its 5-D fascicle ==\n\n");
  const char* names[10] = {
      "SAGE_BB542_whitematter", "SAGE_Duke_1273", "SAGE_Duke_757",
      "SAGE_Duke_cerebellum",   "SAGE_Duke_GBM_H1110", "SAGE_Duke_H1020",
      "SAGE_95_259",            "SAGE_95_260",    "SAGE_Br_N", "SAGE_DCIS"};
  const double data[10 * 5] = {
      1843, 3,  10,  15, 11,  1418, 7, 0,  30, 12,  1251, 18, 0,   33, 20,
      1800, 0,  58,  40, 20,  1050, 25, 1, 60, 15,  1910, 1,  17,  74, 30,
      503,  8,  0,   0,  456, 364,  7, 7,  7,  222, 65,   5,  79,  9,  300,
      847,  4,  124, 0,  500};
  std::printf("  %-24s %6s %6s %6s %6s %6s\n", "Library/Tag", "AA...A",
              "AA..AC", "AA..AT", "A.CTCC", "A.GAAA");
  for (int r = 0; r < 10; ++r) {
    std::printf("  %-24s %6.0f %6.0f %6.0f %6.0f %6.0f\n", names[r],
                data[r * 5], data[r * 5 + 1], data[r * 5 + 2],
                data[r * 5 + 3], data[r * 5 + 4]);
  }
  // Tolerances as in Section 2.5.1 (48 instead of the printed 47, which
  // contradicts the printed values by one count).
  cluster::FascicleParams params;
  params.min_compact_tags = 5;
  params.tolerances = {120, 3, 48, 60, 20};
  params.min_size = 3;
  params.algorithm = cluster::FascicleParams::Algorithm::kExact;
  cluster::FascicleMiner miner(data, 10, 5);
  std::vector<cluster::Fascicle> found = CheckResult(miner.Mine(params));
  std::printf("\n  tolerances t = {120, 3, 48, 60, 20}, k = 5, min size 3\n");
  for (const cluster::Fascicle& f : found) {
    std::printf("  -> fascicle {");
    for (size_t i = 0; i < f.members.size(); ++i) {
      std::printf("%s%s", i ? ", " : "", names[f.members[i]]);
    }
    std::printf("} with %zu compact tags (the thesis's example)\n",
                f.compact_columns.size());
  }
  std::printf("\n");
}

// ---- The Chapter 4 pipeline on synthetic data ----

struct Pipeline {
  AnalysisSession session{"admin", "secret"};
  sage::SyntheticSage synth;
  std::map<sage::TissueType, AnalysisSession::ControlGroups> groups;
  std::map<sage::TissueType, std::string> fascicle;

  Pipeline() {
    sage::GeneratorConfig config;
    config.seed = 42;
    config.panels = sage::SyntheticSageGenerator::SmallPanels();
    synth = sage::SyntheticSageGenerator(config).Generate();
    sage::CleanAndNormalize(synth.dataset);
    Check(session.Login("admin", "secret", AccessLevel::kAdministrator));
    Check(session.LoadDataSet(synth.dataset));
    for (sage::TissueType tissue :
         {sage::TissueType::kBrain, sage::TissueType::kBreast}) {
      const std::string name = sage::TissueTypeName(tissue);
      Check(session.CreateTissueDataSet(tissue));
      Check(session.GenerateMetadata(name, 25.0, name + ".meta"));
      std::vector<std::string> fascicles =
          CheckResult(session.CalculateFascicles(name, name + ".meta", 150,
                                                 6, 3, name + "25k"));
      for (const std::string& fas : fascicles) {
        std::vector<core::PurityProperty> purity =
            CheckResult(session.CheckPurity(fas));
        if (std::find(purity.begin(), purity.end(),
                      core::PurityProperty::kCancer) != purity.end()) {
          fascicle[tissue] = fas;
          break;
        }
      }
      groups[tissue] =
          CheckResult(session.FormControlGroups(name, fascicle[tissue]));
      Check(session.CreateGap(groups[tissue].fascicle_sumy,
                              groups[tissue].opposite_sumy,
                              name + "_canvsnor_gap"));
      Check(session.CreateGap(groups[tissue].fascicle_sumy,
                              groups[tissue].not_in_fas_sumy,
                              name + "_canvscnif_gap"));
    }
  }

  // Prints a Fig. 4.2/4.3/4.10/4.11-style series: the tag's level in
  // every brain library with its group, plus the group means.
  void PrintSeries(const char* figure, sage::TagId tag,
                   const char* caption) {
    const core::EnumTable* brain = CheckResult(session.GetEnum("brain"));
    const core::EnumTable* fas =
        CheckResult(session.GetEnum(fascicle[sage::TissueType::kBrain]));
    std::optional<size_t> col = brain->FindTagColumn(tag);
    std::printf("== %s: %s ==\n   (%s)\n", figure,
                sage::TagLabel(tag).c_str(), caption);
    if (!col.has_value()) {
      std::printf("   tag not present\n\n");
      return;
    }
    double sums[3] = {0, 0, 0};
    int counts[3] = {0, 0, 0};
    for (size_t row = 0; row < brain->NumLibraries(); ++row) {
      const sage::LibraryMeta& lib = brain->library(row);
      int group = fas->FindLibraryRow(lib.id).has_value() ? 0
                  : lib.state == sage::NeoplasticState::kCancer ? 1
                                                                : 2;
      const char* group_name[] = {"cancer-in-fascicle",
                                  "cancer-not-in-fascicle", "normal"};
      double v = brain->ValueAt(row, *col);
      sums[group] += v;
      counts[group] += 1;
      std::printf("   %-26s %-24s %10.1f\n", lib.name.c_str(),
                  group_name[group], v);
    }
    std::printf("   means: in-fascicle %.1f | not-in-fascicle %.1f | "
                "normal %.1f\n\n",
                sums[0] / counts[0], sums[1] / counts[1],
                sums[2] / counts[2]);
  }
};

}  // namespace

int main() {
  PrintTable22();

  Pipeline pipeline;

  // Figures 4.2 / 4.3 / 4.10: top positive and negative gaps of the
  // cancer-vs-normal comparison.
  const core::GapTable* gap =
      CheckResult(pipeline.session.GetGap("brain_canvsnor_gap"));
  core::GapTable top_pos = CheckResult(
      core::TopGap(*gap, 1, core::TopGapMode::kHighest, "pos"));
  core::GapTable top_neg = CheckResult(
      core::TopGap(*gap, 1, core::TopGapMode::kLowest, "neg"));
  if (top_pos.NumTags() > 0) {
    pipeline.PrintSeries(
        "Fig. 4.2 shape (positive gap)", top_pos.entry(0).tag,
        "expressed much higher in the cancer fascicle than in normal "
        "tissue, like RIBOSOMAL PROTEIN L12 in the thesis");
  }
  if (top_neg.NumTags() > 0) {
    pipeline.PrintSeries(
        "Fig. 4.3 shape (negative gap)", top_neg.entry(0).tag,
        "silenced in the cancer fascicle relative to normal tissue, like "
        "ALPHA TUBULIN in the thesis");
  }

  // Fig. 4.11: the top inside-vs-outside separator.
  const core::GapTable* gap2 =
      CheckResult(pipeline.session.GetGap("brain_canvscnif_gap"));
  core::GapTable top2 = CheckResult(core::TopGap(
      *gap2, 1, core::TopGapMode::kLargestMagnitude, "inout"));
  if (top2.NumTags() > 0) {
    pipeline.PrintSeries(
        "Fig. 4.11 shape (inside vs outside)", top2.entry(0).tag,
        "separates the fascicle sub-type from the other cancerous "
        "libraries, like the ADP protein in the thesis");
  }

  // Section 4.3.2's comparative claim.
  double mean_norm = 0.0;
  size_t n_norm = 0;
  for (const core::GapEntry& e : gap->entries()) {
    if (e.gaps[0].has_value()) {
      mean_norm += std::abs(*e.gaps[0]);
      ++n_norm;
    }
  }
  double mean_inout = 0.0;
  size_t n_inout = 0;
  for (const core::GapEntry& e : gap2->entries()) {
    if (e.gaps[0].has_value()) {
      mean_inout += std::abs(*e.gaps[0]);
      ++n_inout;
    }
  }
  std::printf("== Section 4.3.2 claim ==\n");
  std::printf("   mean |gap| cancer-vs-normal      : %8.1f (%zu non-null "
              "tags)\n",
              mean_norm / static_cast<double>(n_norm), n_norm);
  std::printf("   mean |gap| inside-vs-outside     : %8.1f (%zu non-null "
              "tags)\n",
              mean_inout / static_cast<double>(n_inout), n_inout);
  std::printf("   -> cancer groups resemble each other more than normal "
              "tissue: %s\n\n",
              mean_norm / static_cast<double>(n_norm) >
                      mean_inout / static_cast<double>(n_inout)
                  ? "REPRODUCED"
                  : "NOT reproduced");

  // Fig. 4.13: intersection + query 2 across brain and breast.
  Check(pipeline.session.CompareGapTables(
      "brain_canvsnor_gap", "breast_canvsnor_gap",
      core::GapCompareKind::kIntersect, "brainBreastIntersect1"));
  Check(pipeline.session.RunGapQuery("brainBreastIntersect1",
                                     core::GapCompareQuery::kLowerInAInBoth,
                                     "alwaysLower"));
  const core::GapTable* lower =
      CheckResult(pipeline.session.GetGap("alwaysLower"));
  std::printf("== Fig. 4.13 shape: always lower in cancer (both tissues) "
              "==\n");
  for (const std::string& line : core::RenderGapList(*lower, 8)) {
    std::printf("   %s\n", line.c_str());
  }
  size_t recovered = 0;
  for (const core::GapEntry& e : lower->entries()) {
    if (std::binary_search(pipeline.synth.truth.shared_cancer_down.begin(),
                           pipeline.synth.truth.shared_cancer_down.end(),
                           e.tag)) {
      ++recovered;
    }
  }
  std::printf("   total: %zu tags; %zu of the %zu planted pan-tissue "
              "silenced genes recovered\n\n",
              lower->NumTags(), recovered,
              pipeline.synth.truth.shared_cancer_down.size());

  // Fig. 4.14: difference + query 2.
  Check(pipeline.session.CompareGapTables(
      "brain_canvsnor_gap", "breast_canvsnor_gap",
      core::GapCompareKind::kDifference, "brainBreastDiff1"));
  Check(pipeline.session.RunGapQuery("brainBreastDiff1",
                                     core::GapCompareQuery::kLowerInAInBoth,
                                     "brainOnlyLower"));
  const core::GapTable* unique =
      CheckResult(pipeline.session.GetGap("brainOnlyLower"));
  std::printf("== Fig. 4.14 shape: lower in brain cancer only ==\n");
  for (const std::string& line : core::RenderGapList(*unique, 8)) {
    std::printf("   %s\n", line.c_str());
  }
  std::printf("   total: %zu tags unique to the brain comparison\n",
              unique->NumTags());
  return 0;
}
