// Regenerates the Section 4.2 / Fig. 4.1 pre-processing statistics on the
// full synthetic panel:
//
//   * the raw -> cleaned tag-universe reduction (the thesis reports
//     350,000 -> 60,000 on the real data),
//   * the per-library removal fractions,
//   * the effect of the minimum-tolerance knob,
//   * normalization to the standard 300,000-tag depth,
//   * survival of the planted biology.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/stopwatch.h"
#include "sage/cleaning.h"
#include "sage/generator.h"

int main() {
  using namespace gea;

  sage::GeneratorConfig config;
  config.seed = 42;  // the full nine-tissue panel
  sage::SyntheticSage synth = sage::SyntheticSageGenerator(config).Generate();

  std::printf("== Section 4.2: pre-processing and data cleaning ==\n\n");
  std::printf("raw panel: %zu libraries, %zu distinct tags\n",
              synth.dataset.NumLibraries(), synth.dataset.UniverseSize());

  double min_total = 1e18;
  double max_total = 0.0;
  for (const sage::SageLibrary& lib : synth.dataset.libraries()) {
    min_total = std::min(min_total, lib.TotalTagCount());
    max_total = std::max(max_total, lib.TotalTagCount());
  }
  std::printf("per-library depth: %.0f - %.0f total tags (thesis: 1,000 - "
              "32,000)\n\n",
              min_total, max_total);

  // The tolerance sweep: the thesis uses 1 (remove tags whose level is 0
  // or 1 everywhere).
  std::printf("%-12s %-14s %-14s %-12s %-22s\n", "tolerance", "tags before",
              "tags after", "reduction", "per-library removal");
  for (double tolerance : {1.0, 2.0, 3.0}) {
    sage::SageDataSet data = synth.dataset;  // fresh copy per tolerance
    sage::CleaningStats stats = sage::RemoveErrorTags(data, tolerance);
    std::printf("%-12.0f %-14zu %-14zu %-11.1fx %4.1f%% - %4.1f%% (avg "
                "%4.1f%%)\n",
                tolerance, stats.tags_before, stats.tags_after,
                static_cast<double>(stats.tags_before) /
                    static_cast<double>(stats.tags_after),
                100.0 * stats.MinRemovedFraction(),
                100.0 * stats.MaxRemovedFraction(),
                100.0 * stats.AvgRemovedFraction());
  }
  std::printf("\n(the thesis reports a 350,000 -> 60,000 reduction at "
              "tolerance 1;\nthe synthetic error singletons rarely repeat "
              "across libraries, so\nthe reduction here is even sharper — "
              "same mechanism, same shape)\n\n");

  // Timing of the full pipeline.
  sage::SageDataSet data = synth.dataset;
  Stopwatch watch;
  sage::CleaningStats stats = sage::CleanAndNormalize(data);
  double elapsed = watch.ElapsedSeconds();
  std::printf("CleanAndNormalize on the full panel: %.3f s (%s)\n\n",
              elapsed, stats.ToString().c_str());

  // Normalization check.
  double lo = 1e18;
  double hi = 0.0;
  for (const sage::SageLibrary& lib : data.libraries()) {
    lo = std::min(lo, lib.TotalTagCount());
    hi = std::max(hi, lib.TotalTagCount());
  }
  std::printf("after normalization every library totals %.0f - %.0f tags "
              "(target %.0f)\n\n",
              lo, hi, sage::kStandardDepth);

  // Survival of planted biology.
  std::vector<sage::TagId> universe = data.TagUniverse();
  auto survival = [&universe](const std::vector<sage::TagId>& tags) {
    size_t kept = 0;
    for (sage::TagId tag : tags) {
      if (std::binary_search(universe.begin(), universe.end(), tag)) ++kept;
    }
    return std::pair<size_t, size_t>(kept, tags.size());
  };
  auto [hk, hk_total] = survival(synth.truth.housekeeping);
  auto [up, up_total] = survival(synth.truth.shared_cancer_up);
  auto [down, down_total] = survival(synth.truth.shared_cancer_down);
  std::printf("planted biology surviving the cleaning:\n");
  std::printf("  housekeeping tags      %zu / %zu\n", hk, hk_total);
  std::printf("  shared cancer-up tags  %zu / %zu\n", up, up_total);
  std::printf("  shared cancer-down     %zu / %zu\n", down, down_total);
  std::printf("\n(\"for clustering analysis to achieve its potential, "
              "proper filtering\nof the data is necessary\" — Section "
              "2.3.3)\n");
  return 0;
}
