// Micro-benchmarks for the durable storage engine: snapshot save/load,
// WAL append (buffered and fsync-per-record) and WAL replay, plus the
// binary-snapshot vs CSV comparison that motivates the format.

#include <benchmark/benchmark.h>

#include <filesystem>
#include <string>

#include "common/rng.h"
#include "rel/table.h"
#include "rel/table_io.h"
#include "store/file_env.h"
#include "store/format.h"
#include "store/snapshot.h"
#include "store/wal.h"

namespace {

using namespace gea;

std::string BenchDir() {
  static const std::string* dir = [] {
    auto* path = new std::string(
        (std::filesystem::temp_directory_path() / "gea_bench_store").string());
    std::filesystem::remove_all(*path);
    std::filesystem::create_directories(*path);
    return path;
  }();
  return *dir;
}

// A catalog-shaped table: the expression-matrix mix of ids, doubles and
// the occasional NULL that dominates real snapshots.
rel::Table MakeTable(size_t rows, uint64_t seed) {
  Rng rng(seed);
  rel::Schema schema({{"TagNo", rel::ValueType::kInt},
                      {"Mean", rel::ValueType::kDouble},
                      {"StdDev", rel::ValueType::kDouble},
                      {"Gap", rel::ValueType::kDouble},
                      {"Name", rel::ValueType::kString}});
  rel::Table table("bench", schema);
  for (size_t r = 0; r < rows; ++r) {
    rel::Value gap = rng.UniformDouble(0.0, 1.0) < 0.1
                         ? rel::Value::Null()
                         : rel::Value::Double(rng.UniformDouble(-8.0, 8.0));
    table.AppendRowUnchecked({rel::Value::Int(static_cast<int64_t>(r)),
                              rel::Value::Double(rng.UniformDouble(0.0, 500.0)),
                              rel::Value::Double(rng.UniformDouble(0.0, 50.0)),
                              std::move(gap),
                              rel::Value::String("tag_" + std::to_string(r))});
  }
  return table;
}

store::SnapshotImage MakeImage(size_t rows) {
  store::SnapshotImage image;
  image.sections.push_back(
      store::SnapshotSection::Table("relation", MakeTable(rows, 7)));
  return image;
}

store::WalRecord MakeRecord(size_t i) {
  return store::WalRecord::LogicalOp(
      "populate", {{"sumy", "brain_sumy_" + std::to_string(i)},
                   {"base", "brain"},
                   {"out", "out_" + std::to_string(i)},
                   {"replace", "0"}});
}

void BM_SnapshotWrite(benchmark::State& state) {
  store::SnapshotImage image = MakeImage(static_cast<size_t>(state.range(0)));
  store::FileEnv* env = store::FileEnv::Default();
  const std::string path = BenchDir() + "/bm_write.gea";
  for (auto _ : state) {
    Status s = store::WriteSnapshotFile(env, path, image);
    if (!s.ok()) state.SkipWithError(s.ToString().c_str());
    benchmark::DoNotOptimize(s);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_SnapshotWrite)->Arg(1000)->Arg(16000);

void BM_SnapshotRead(benchmark::State& state) {
  store::FileEnv* env = store::FileEnv::Default();
  const std::string path = BenchDir() + "/bm_read.gea";
  Status written = store::WriteSnapshotFile(
      env, path, MakeImage(static_cast<size_t>(state.range(0))));
  if (!written.ok()) state.SkipWithError(written.ToString().c_str());
  for (auto _ : state) {
    Result<store::SnapshotImage> image = store::ReadSnapshotFile(env, path);
    if (!image.ok()) state.SkipWithError(image.status().ToString().c_str());
    benchmark::DoNotOptimize(image);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_SnapshotRead)->Arg(1000)->Arg(16000);

// The comparison the snapshot format exists for: the same table persisted
// as a typed-CSV dump (what SaveDatabase writes) vs one binary section.
void BM_TableSaveCsv(benchmark::State& state) {
  rel::Table table = MakeTable(static_cast<size_t>(state.range(0)), 7);
  const std::string path = BenchDir() + "/bm_table.csv";
  for (auto _ : state) {
    Status s = rel::SaveTable(table, path);
    if (!s.ok()) state.SkipWithError(s.ToString().c_str());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_TableSaveCsv)->Arg(16000);

void BM_TableLoadCsv(benchmark::State& state) {
  const std::string path = BenchDir() + "/bm_table_load.csv";
  Status saved =
      rel::SaveTable(MakeTable(static_cast<size_t>(state.range(0)), 7), path);
  if (!saved.ok()) state.SkipWithError(saved.ToString().c_str());
  for (auto _ : state) {
    Result<rel::Table> table = rel::LoadTable("bench", path);
    if (!table.ok()) state.SkipWithError(table.status().ToString().c_str());
    benchmark::DoNotOptimize(table);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_TableLoadCsv)->Arg(16000);

void BM_WalAppend(benchmark::State& state) {
  store::FileEnv* env = store::FileEnv::Default();
  const std::string path = BenchDir() + "/bm_append.log";
  Result<std::unique_ptr<store::WalWriter>> writer = store::WalWriter::Open(
      env, path, /*truncate=*/true, /*sync_every_record=*/false);
  if (!writer.ok()) state.SkipWithError(writer.status().ToString().c_str());
  size_t i = 0;
  for (auto _ : state) {
    Status s = (*writer)->Append(MakeRecord(i++));
    if (!s.ok()) state.SkipWithError(s.ToString().c_str());
  }
  (void)(*writer)->Close();
  (void)env->RemoveFile(path);
}
BENCHMARK(BM_WalAppend);

// The durability price: one fsync per acknowledged record.
void BM_WalAppendSync(benchmark::State& state) {
  store::FileEnv* env = store::FileEnv::Default();
  const std::string path = BenchDir() + "/bm_append_sync.log";
  Result<std::unique_ptr<store::WalWriter>> writer = store::WalWriter::Open(
      env, path, /*truncate=*/true, /*sync_every_record=*/true);
  if (!writer.ok()) state.SkipWithError(writer.status().ToString().c_str());
  size_t i = 0;
  for (auto _ : state) {
    Status s = (*writer)->Append(MakeRecord(i++));
    if (!s.ok()) state.SkipWithError(s.ToString().c_str());
  }
  (void)(*writer)->Close();
  (void)env->RemoveFile(path);
}
BENCHMARK(BM_WalAppendSync);

void BM_WalReplay(benchmark::State& state) {
  store::FileEnv* env = store::FileEnv::Default();
  const std::string path = BenchDir() + "/bm_replay.log";
  {
    Result<std::unique_ptr<store::WalWriter>> writer = store::WalWriter::Open(
        env, path, /*truncate=*/true, /*sync_every_record=*/false);
    if (!writer.ok()) state.SkipWithError(writer.status().ToString().c_str());
    for (int64_t i = 0; i < state.range(0); ++i) {
      Status s = (*writer)->Append(MakeRecord(static_cast<size_t>(i)));
      if (!s.ok()) state.SkipWithError(s.ToString().c_str());
    }
    (void)(*writer)->Close();
  }
  for (auto _ : state) {
    Result<store::WalReadResult> read = store::ReadWalFile(env, path);
    if (!read.ok()) state.SkipWithError(read.status().ToString().c_str());
    benchmark::DoNotOptimize(read);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_WalReplay)->Arg(1000)->Arg(16000);

}  // namespace
