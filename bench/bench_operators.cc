// Micro-benchmarks for the GEA algebraic operators, covering the
// remaining complexity statements of Section 3.3.1:
//   * aggregate() is one pass over the libraries (linear in cells),
//   * GAP creation is linear in the number of tags,
//   * populate() with vs without indexes,
//   * the set operations and top-gap extraction.

// The *_Threads sweeps below re-run the hot operators at 1, 2, 4 and 8
// threads (overriding GEA_THREADS / --threads for their own run); the
// serial-vs-parallel speedup is the time ratio between the /1 row and the
// higher-thread rows.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <optional>
#include <vector>

#include "common/thread_pool.h"
#include "core/enum_table.h"
#include "core/gap.h"
#include "core/gap_ops.h"
#include "core/index_advisor.h"
#include "core/operators.h"
#include "core/populate.h"
#include "sage/generator.h"

namespace {

using namespace gea;

// Shared substrate: a deterministic two-tissue panel, raw (large tag
// universe). Built once.
const sage::SyntheticSage& Synth() {
  static const sage::SyntheticSage* synth = [] {
    sage::GeneratorConfig config;
    config.seed = 2024;
    config.panels = sage::SyntheticSageGenerator::SmallPanels();
    return new sage::SyntheticSage(
        sage::SyntheticSageGenerator(config).Generate());
  }();
  return *synth;
}

core::EnumTable EnumWithTags(size_t num_tags) {
  std::vector<sage::TagId> universe = Synth().dataset.TagUniverse();
  if (universe.size() > num_tags) universe.resize(num_tags);
  return core::EnumTable::FromDataSet("bench", Synth().dataset, universe);
}

void BM_Aggregate(benchmark::State& state) {
  core::EnumTable table = EnumWithTags(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::Aggregate(table, "sumy"));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Aggregate)->RangeMultiplier(4)->Range(1000, 16000)
    ->Complexity(benchmark::oN);

void BM_Diff(benchmark::State& state) {
  core::EnumTable table = EnumWithTags(static_cast<size_t>(state.range(0)));
  core::EnumTable cancer = table.FilterLibraries(
      "cancer", [](const sage::LibraryMeta& lib) {
        return lib.state == sage::NeoplasticState::kCancer;
      });
  core::EnumTable normal = table.FilterLibraries(
      "normal", [](const sage::LibraryMeta& lib) {
        return lib.state == sage::NeoplasticState::kNormal;
      });
  core::SumyTable sumy1 = std::move(core::Aggregate(cancer, "s1")).value();
  core::SumyTable sumy2 = std::move(core::Aggregate(normal, "s2")).value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::Diff(sumy1, sumy2, "gap"));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Diff)->RangeMultiplier(4)->Range(1000, 16000)
    ->Complexity(benchmark::oN);

// Row-at-a-time counterparts of BM_Aggregate / BM_Diff: the pre-columnar
// implementations, re-stated against the logical API. Kept in the suite
// (and in BENCH_baseline.json) so the columnar-vs-row gap stays measured
// instead of remembered.
void BM_AggregateRow(benchmark::State& state) {
  core::EnumTable table = EnumWithTags(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    std::vector<core::SumyEntry> entries;
    entries.reserve(table.NumTags());
    const double n = static_cast<double>(table.NumLibraries());
    for (size_t c = 0; c < table.NumTags(); ++c) {
      double lo = table.ValueAt(0, c), hi = lo, sum = 0.0, sumsq = 0.0;
      for (size_t row = 0; row < table.NumLibraries(); ++row) {
        const double v = table.ValueAt(row, c);
        lo = std::min(lo, v);
        hi = std::max(hi, v);
        sum += v;
        sumsq += v * v;
      }
      const double mean = sum / n;
      const double var = std::max(0.0, sumsq / n - mean * mean);
      entries.push_back(core::SumyEntry(table.tags()[c], lo, hi, mean,
                                        std::sqrt(var)));
    }
    benchmark::DoNotOptimize(
        core::SumyTable::Create("sumy", std::move(entries)));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_AggregateRow)->RangeMultiplier(4)->Range(1000, 16000)
    ->Complexity(benchmark::oN);

void BM_DiffRow(benchmark::State& state) {
  core::EnumTable table = EnumWithTags(static_cast<size_t>(state.range(0)));
  core::EnumTable cancer = table.FilterLibraries(
      "cancer", [](const sage::LibraryMeta& lib) {
        return lib.state == sage::NeoplasticState::kCancer;
      });
  core::EnumTable normal = table.FilterLibraries(
      "normal", [](const sage::LibraryMeta& lib) {
        return lib.state == sage::NeoplasticState::kNormal;
      });
  core::SumyTable sumy1 = std::move(core::Aggregate(cancer, "s1")).value();
  core::SumyTable sumy2 = std::move(core::Aggregate(normal, "s2")).value();
  for (auto _ : state) {
    std::vector<core::GapEntry> rows;
    for (const core::SumyEntry& ea : sumy1.entries()) {
      std::optional<core::SumyEntry> eb = sumy2.Find(ea.tag);
      if (!eb.has_value()) continue;
      const bool first_is_higher = ea.mean >= eb->mean;
      const core::SumyEntry& hi = first_is_higher ? ea : *eb;
      const core::SumyEntry& lo = first_is_higher ? *eb : ea;
      const double magnitude =
          (hi.mean - hi.stddev) - (lo.mean + lo.stddev);
      core::GapEntry row;
      row.tag = ea.tag;
      if (magnitude <= 0.0) {
        row.gaps.push_back(std::nullopt);
      } else {
        row.gaps.push_back(first_is_higher ? magnitude : -magnitude);
      }
      rows.push_back(std::move(row));
    }
    benchmark::DoNotOptimize(
        core::GapTable::Create("gap", {"Gap"}, std::move(rows)));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_DiffRow)->RangeMultiplier(4)->Range(1000, 16000)
    ->Complexity(benchmark::oN);

void BM_PopulateSequential(benchmark::State& state) {
  core::EnumTable table = EnumWithTags(static_cast<size_t>(state.range(0)));
  core::EnumTable cancer = table.FilterLibraries(
      "cancer", [](const sage::LibraryMeta& lib) {
        return lib.state == sage::NeoplasticState::kCancer;
      });
  core::SumyTable sumy = std::move(core::Aggregate(cancer, "s")).value();
  core::PopulateEngine engine(table);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.Populate(sumy, "out"));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_PopulateSequential)->RangeMultiplier(4)->Range(1000, 16000)
    ->Complexity(benchmark::oN);

void BM_PopulateIndexed(benchmark::State& state) {
  core::EnumTable table = EnumWithTags(static_cast<size_t>(state.range(0)));
  core::EnumTable cancer = table.FilterLibraries(
      "cancer", [](const sage::LibraryMeta& lib) {
        return lib.state == sage::NeoplasticState::kCancer;
      });
  core::SumyTable sumy = std::move(core::Aggregate(cancer, "s")).value();
  core::PopulateEngine engine(table);
  // Indexes on the top-32 entropy tags (the Section 3.3.2 heuristic).
  std::vector<sage::TagId> index_tags = core::TopEntropyTags(table, 32);
  if (!engine.BuildIndexes(index_tags).ok()) state.SkipWithError("index");
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.Populate(sumy, "out"));
  }
}
BENCHMARK(BM_PopulateIndexed)->RangeMultiplier(4)->Range(1000, 16000);

void BM_AggregateThreads(benchmark::State& state) {
  gea::ThreadCountOverride threads(static_cast<size_t>(state.range(0)));
  core::EnumTable table = EnumWithTags(16000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::Aggregate(table, "sumy"));
  }
  state.counters["threads"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_AggregateThreads)->ArgName("threads")
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_PopulateThreads(benchmark::State& state) {
  gea::ThreadCountOverride threads(static_cast<size_t>(state.range(0)));
  core::EnumTable table = EnumWithTags(16000);
  core::EnumTable cancer = table.FilterLibraries(
      "cancer", [](const sage::LibraryMeta& lib) {
        return lib.state == sage::NeoplasticState::kCancer;
      });
  core::SumyTable sumy = std::move(core::Aggregate(cancer, "s")).value();
  core::PopulateEngine engine(table);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.Populate(sumy, "out"));
  }
  state.counters["threads"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_PopulateThreads)->ArgName("threads")
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_DiffThreads(benchmark::State& state) {
  gea::ThreadCountOverride threads(static_cast<size_t>(state.range(0)));
  core::EnumTable table = EnumWithTags(16000);
  core::EnumTable cancer = table.FilterLibraries(
      "cancer", [](const sage::LibraryMeta& lib) {
        return lib.state == sage::NeoplasticState::kCancer;
      });
  core::EnumTable normal = table.FilterLibraries(
      "normal", [](const sage::LibraryMeta& lib) {
        return lib.state == sage::NeoplasticState::kNormal;
      });
  core::SumyTable sumy1 = std::move(core::Aggregate(cancer, "s1")).value();
  core::SumyTable sumy2 = std::move(core::Aggregate(normal, "s2")).value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::Diff(sumy1, sumy2, "gap"));
  }
  state.counters["threads"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_DiffThreads)->ArgName("threads")->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_TopGap(benchmark::State& state) {
  core::EnumTable table = EnumWithTags(8000);
  core::EnumTable cancer = table.FilterLibraries(
      "cancer", [](const sage::LibraryMeta& lib) {
        return lib.state == sage::NeoplasticState::kCancer;
      });
  core::EnumTable normal = table.FilterLibraries(
      "normal", [](const sage::LibraryMeta& lib) {
        return lib.state == sage::NeoplasticState::kNormal;
      });
  core::SumyTable s1 = std::move(core::Aggregate(cancer, "s1")).value();
  core::SumyTable s2 = std::move(core::Aggregate(normal, "s2")).value();
  core::GapTable gap = std::move(core::Diff(s1, s2, "gap")).value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::TopGap(
        gap, static_cast<size_t>(state.range(0)),
        core::TopGapMode::kLargestMagnitude, "top"));
  }
}
BENCHMARK(BM_TopGap)->Arg(10)->Arg(100)->Arg(1000);

void BM_GapSetOps(benchmark::State& state) {
  core::EnumTable table = EnumWithTags(8000);
  core::EnumTable brain = table.FilterLibraries(
      "brain", [](const sage::LibraryMeta& lib) {
        return lib.tissue == sage::TissueType::kBrain;
      });
  core::EnumTable breast = table.FilterLibraries(
      "breast", [](const sage::LibraryMeta& lib) {
        return lib.tissue == sage::TissueType::kBreast;
      });
  core::SumyTable s1 = std::move(core::Aggregate(brain, "s1")).value();
  core::SumyTable s2 = std::move(core::Aggregate(breast, "s2")).value();
  core::GapTable g1 = std::move(core::Diff(s1, s2, "g1")).value();
  core::GapTable g2 = std::move(core::Diff(s2, s1, "g2")).value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::GapIntersect(g1, g2, "i"));
    benchmark::DoNotOptimize(core::GapMinus(g1, g2, "m"));
    benchmark::DoNotOptimize(core::GapUnion(g1, g2, "u"));
  }
}
BENCHMARK(BM_GapSetOps);

void BM_EntropyIndexSelection(benchmark::State& state) {
  core::EnumTable table = EnumWithTags(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::TopEntropyTags(table, 32));
  }
}
BENCHMARK(BM_EntropyIndexSelection)->Arg(4000)->Arg(16000);

void BM_RequiredIndexCount(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::RequiredIndexCount(60000, 25000, state.range(0), 0.999));
  }
}
BENCHMARK(BM_RequiredIndexCount)->Arg(1)->Arg(10);

}  // namespace
