// Tests for the Fascicles algorithm (Section 2.5), including the thesis's
// own Table 2.2 worked example.

#include <gtest/gtest.h>

#include "cluster/fascicles.h"
#include "common/rng.h"
#include "common/thread_pool.h"

namespace gea::cluster {
namespace {

// The Table 2.2 fragment: 10 libraries x 5 tags.
// Note: the thesis states tolerance 47 for the third tag, but its own
// printed values (10, 58, 17) span 48; we use 48, which makes the
// 5-D fascicle of the example hold exactly as described.
constexpr size_t kRows = 10;
constexpr size_t kCols = 5;
constexpr double kTable22[kRows * kCols] = {
    1843, 3,  10,  15, 11,   // SAGE_BB542_whitematter
    1418, 7,  0,   30, 12,   // SAGE_Duke_1273
    1251, 18, 0,   33, 20,   // SAGE_Duke_757
    1800, 0,  58,  40, 20,   // SAGE_Duke_cerebellum
    1050, 25, 1,   60, 15,   // SAGE_Duke_GBM_H1110
    1910, 1,  17,  74, 30,   // SAGE_Duke_H1020
    503,  8,  0,   0,  456,  // SAGE_95_259
    364,  7,  7,   7,  222,  // SAGE_95_260
    65,   5,  79,  9,  300,  // SAGE_Br_N
    847,  4,  124, 0,  500,  // SAGE_DCIS
};
const std::vector<double> kTable22Tolerances = {120, 3, 48, 60, 20};

FascicleParams Table22Params(FascicleParams::Algorithm algorithm) {
  FascicleParams params;
  params.min_compact_tags = 5;
  params.tolerances = kTable22Tolerances;
  params.min_size = 3;
  params.batch_size = 6;
  params.algorithm = algorithm;
  return params;
}

class Table22Test
    : public testing::TestWithParam<FascicleParams::Algorithm> {};

TEST_P(Table22Test, FindsTheFiveDimensionalFascicle) {
  FascicleMiner miner(kTable22, kRows, kCols);
  Result<std::vector<Fascicle>> found =
      miner.Mine(Table22Params(GetParam()));
  ASSERT_TRUE(found.ok()) << found.status().ToString();
  ASSERT_EQ(found->size(), 1u);
  const Fascicle& f = found->front();
  // SAGE_BB542_whitematter, SAGE_Duke_cerebellum, SAGE_Duke_H1020.
  EXPECT_EQ(f.members, (std::vector<size_t>{0, 3, 5}));
  EXPECT_EQ(f.compact_columns, (std::vector<size_t>{0, 1, 2, 3, 4}));
  EXPECT_TRUE(miner.Verify(f, kTable22Tolerances));
}

INSTANTIATE_TEST_SUITE_P(BothAlgorithms, Table22Test,
                         testing::Values(FascicleParams::Algorithm::kExact,
                                         FascicleParams::Algorithm::kGreedy));

TEST(FascicleMinerTest, CompactRangesRecorded) {
  FascicleMiner miner(kTable22, kRows, kCols);
  Result<std::vector<Fascicle>> found = miner.Mine(
      Table22Params(FascicleParams::Algorithm::kExact));
  ASSERT_TRUE(found.ok());
  const Fascicle& f = found->front();
  ASSERT_EQ(f.compact_ranges.size(), 5u);
  EXPECT_DOUBLE_EQ(f.compact_ranges[0].first, 1800);
  EXPECT_DOUBLE_EQ(f.compact_ranges[0].second, 1910);
  EXPECT_DOUBLE_EQ(f.compact_ranges[1].first, 0);
  EXPECT_DOUBLE_EQ(f.compact_ranges[1].second, 3);
}

TEST(FascicleMinerTest, CountCompactColumns) {
  FascicleMiner miner(kTable22, kRows, kCols);
  EXPECT_EQ(miner.CountCompactColumns({0, 3, 5}, kTable22Tolerances), 5u);
  // Adding SAGE_Duke_1273 breaks tag 0 (and others).
  EXPECT_LT(miner.CountCompactColumns({0, 1, 3, 5}, kTable22Tolerances), 5u);
  // A singleton is compact in every column.
  EXPECT_EQ(miner.CountCompactColumns({4}, kTable22Tolerances), 5u);
}

TEST(FascicleMinerTest, ThesisToleranceOf47FindsNoFiveDFascicle) {
  // With the literally printed tolerance (47), tag 3 of the example trio
  // spans 48 and no 3-library 5-D fascicle exists.
  std::vector<double> tol = kTable22Tolerances;
  tol[2] = 47;
  FascicleParams params = Table22Params(FascicleParams::Algorithm::kExact);
  params.tolerances = tol;
  FascicleMiner miner(kTable22, kRows, kCols);
  Result<std::vector<Fascicle>> found = miner.Mine(params);
  ASSERT_TRUE(found.ok());
  EXPECT_TRUE(found->empty());
}

TEST(FascicleMinerTest, LowerKFindsLargerFascicles) {
  FascicleParams params = Table22Params(FascicleParams::Algorithm::kExact);
  params.min_compact_tags = 2;
  FascicleMiner miner(kTable22, kRows, kCols);
  Result<std::vector<Fascicle>> found = miner.Mine(params);
  ASSERT_TRUE(found.ok());
  ASSERT_FALSE(found->empty());
  for (const Fascicle& f : *found) {
    EXPECT_GE(f.compact_columns.size(), 2u);
    EXPECT_GE(f.members.size(), 3u);
    EXPECT_TRUE(miner.Verify(f, params.tolerances));
  }
}

TEST(FascicleMinerTest, MinSizeFiltersSmallFascicles) {
  FascicleParams params = Table22Params(FascicleParams::Algorithm::kExact);
  params.min_size = 4;  // the example trio no longer qualifies
  FascicleMiner miner(kTable22, kRows, kCols);
  Result<std::vector<Fascicle>> found = miner.Mine(params);
  ASSERT_TRUE(found.ok());
  EXPECT_TRUE(found->empty());
}

// ---- Parameter validation ----

TEST(FascicleMinerTest, RejectsBadParams) {
  FascicleMiner miner(kTable22, kRows, kCols);
  FascicleParams params = Table22Params(FascicleParams::Algorithm::kExact);

  params.tolerances = {1, 2};  // wrong arity
  EXPECT_TRUE(miner.Mine(params).status().IsInvalidArgument());

  params = Table22Params(FascicleParams::Algorithm::kExact);
  params.min_compact_tags = 6;  // more than columns
  EXPECT_TRUE(miner.Mine(params).status().IsInvalidArgument());

  params = Table22Params(FascicleParams::Algorithm::kExact);
  params.min_size = 0;
  EXPECT_TRUE(miner.Mine(params).status().IsInvalidArgument());

  params = Table22Params(FascicleParams::Algorithm::kGreedy);
  params.batch_size = 0;
  EXPECT_TRUE(miner.Mine(params).status().IsInvalidArgument());

  params = Table22Params(FascicleParams::Algorithm::kExact);
  params.tolerances[0] = -1.0;
  EXPECT_TRUE(miner.Mine(params).status().IsInvalidArgument());
}

TEST(FascicleMinerTest, ExactSearchGuardTrips) {
  // Huge tolerances make every subset compact; the lattice explodes and
  // the guard must trip rather than hang.
  std::vector<double> data(20 * 3, 1.0);
  FascicleMiner miner(data.data(), 20, 3);
  FascicleParams params;
  params.min_compact_tags = 3;
  params.tolerances = {1e9, 1e9, 1e9};
  params.min_size = 2;
  params.algorithm = FascicleParams::Algorithm::kExact;
  params.max_candidates = 100;
  EXPECT_EQ(miner.Mine(params).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(FascicleMinerTest, AllIdenticalRowsFormOneFascicle) {
  std::vector<double> data(6 * 4, 3.0);
  FascicleMiner miner(data.data(), 6, 4);
  FascicleParams params;
  params.min_compact_tags = 4;
  params.tolerances = {0, 0, 0, 0};
  params.min_size = 3;
  params.algorithm = FascicleParams::Algorithm::kExact;
  Result<std::vector<Fascicle>> found = miner.Mine(params);
  ASSERT_TRUE(found.ok());
  ASSERT_EQ(found->size(), 1u);
  EXPECT_EQ(found->front().members.size(), 6u);
}

// ---- Verify() as an oracle ----

TEST(FascicleVerifyTest, DetectsWrongCompactList) {
  FascicleMiner miner(kTable22, kRows, kCols);
  Fascicle f;
  f.members = {0, 3, 5};
  f.compact_columns = {0, 1, 2, 3};  // missing column 4
  f.compact_ranges = {{1800, 1910}, {0, 3}, {10, 58}, {15, 74}};
  EXPECT_FALSE(miner.Verify(f, kTable22Tolerances));
}

TEST(FascicleVerifyTest, DetectsWrongRanges) {
  FascicleMiner miner(kTable22, kRows, kCols);
  Fascicle f;
  f.members = {0, 3, 5};
  f.compact_columns = {0, 1, 2, 3, 4};
  f.compact_ranges = {{1800, 1910}, {0, 3}, {10, 58}, {15, 74}, {11, 31}};
  EXPECT_FALSE(miner.Verify(f, kTable22Tolerances));
}

// ---- Property sweep: on random matrices, both algorithms return only
// valid fascicles, and every exact fascicle is maximal ----

class RandomMatrixTest : public testing::TestWithParam<uint64_t> {};

TEST_P(RandomMatrixTest, MinedFasciclesAreValidAndExactOnesMaximal) {
  gea::Rng rng(GetParam());
  const size_t rows = 8;
  const size_t cols = 6;
  std::vector<double> data(rows * cols);
  for (double& v : data) v = rng.UniformDouble(0.0, 10.0);

  FascicleMiner miner(data.data(), rows, cols);
  FascicleParams params;
  params.min_compact_tags = 3;
  params.tolerances.assign(cols, 3.0);
  params.min_size = 2;

  params.algorithm = FascicleParams::Algorithm::kExact;
  Result<std::vector<Fascicle>> exact = miner.Mine(params);
  ASSERT_TRUE(exact.ok()) << exact.status().ToString();
  for (const Fascicle& f : *exact) {
    EXPECT_TRUE(miner.Verify(f, params.tolerances)) << f.ToString();
    EXPECT_GE(f.compact_columns.size(), params.min_compact_tags);
    EXPECT_GE(f.members.size(), params.min_size);
    // Maximality: no single row can be added.
    for (size_t r = 0; r < rows; ++r) {
      if (std::binary_search(f.members.begin(), f.members.end(), r)) {
        continue;
      }
      std::vector<size_t> extended = f.members;
      extended.push_back(r);
      std::sort(extended.begin(), extended.end());
      EXPECT_LT(miner.CountCompactColumns(extended, params.tolerances),
                params.min_compact_tags)
          << f.ToString() << " + row " << r;
    }
  }

  params.algorithm = FascicleParams::Algorithm::kGreedy;
  Result<std::vector<Fascicle>> greedy = miner.Mine(params);
  ASSERT_TRUE(greedy.ok());
  for (const Fascicle& f : *greedy) {
    EXPECT_TRUE(miner.Verify(f, params.tolerances)) << f.ToString();
    EXPECT_GE(f.compact_columns.size(), params.min_compact_tags);
    EXPECT_GE(f.members.size(), params.min_size);
  }
  // The greedy miner may miss fascicles but must never exceed the exact
  // miner's best membership size.
  size_t best_exact = 0;
  for (const Fascicle& f : *exact) {
    best_exact = std::max(best_exact, f.members.size());
  }
  for (const Fascicle& f : *greedy) {
    EXPECT_LE(f.members.size(), best_exact);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomMatrixTest,
                         testing::Range<uint64_t>(1, 13));

// ---- Property sweep under serial and parallel execution: both
// algorithms must return only fascicles meeting the min_size /
// k-compact-tag invariants, and the parallel engine must reproduce the
// forced-serial result exactly ----

struct ExecutionCase {
  FascicleParams::Algorithm algorithm;
  size_t threads;
};

class ParallelPropertyTest : public testing::TestWithParam<ExecutionCase> {};

TEST_P(ParallelPropertyTest, InvariantsHoldAndMatchSerial) {
  const ExecutionCase& c = GetParam();
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    gea::Rng rng(seed);
    const size_t rows = 10;
    const size_t cols = 8;
    std::vector<double> data(rows * cols);
    for (double& v : data) v = rng.UniformDouble(0.0, 10.0);

    FascicleMiner miner(data.data(), rows, cols);
    FascicleParams params;
    params.min_compact_tags = 3;
    params.tolerances.assign(cols, 3.0);
    params.min_size = 2;
    params.algorithm = c.algorithm;

    std::vector<Fascicle> serial;
    {
      ThreadCountOverride guard(1);
      Result<std::vector<Fascicle>> mined = miner.Mine(params);
      ASSERT_TRUE(mined.ok()) << mined.status().ToString();
      serial = *std::move(mined);
    }
    std::vector<Fascicle> parallel;
    {
      ThreadCountOverride guard(c.threads);
      Result<std::vector<Fascicle>> mined = miner.Mine(params);
      ASSERT_TRUE(mined.ok()) << mined.status().ToString();
      parallel = *std::move(mined);
    }

    for (const Fascicle& f : parallel) {
      // The Section 2.5.1 definition: >= min_size members, >= k compact
      // tags, and the recorded ranges really are the compact ones.
      EXPECT_GE(f.members.size(), params.min_size) << f.ToString();
      EXPECT_GE(f.compact_columns.size(), params.min_compact_tags)
          << f.ToString();
      EXPECT_TRUE(miner.Verify(f, params.tolerances)) << f.ToString();
      EXPECT_GE(miner.CountCompactColumns(f.members, params.tolerances),
                params.min_compact_tags);
    }

    ASSERT_EQ(serial.size(), parallel.size()) << "seed " << seed;
    for (size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(serial[i].members, parallel[i].members) << "seed " << seed;
      EXPECT_EQ(serial[i].compact_columns, parallel[i].compact_columns);
      EXPECT_EQ(serial[i].compact_ranges, parallel[i].compact_ranges);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AlgorithmsAndThreads, ParallelPropertyTest,
    testing::Values(
        ExecutionCase{FascicleParams::Algorithm::kExact, 2},
        ExecutionCase{FascicleParams::Algorithm::kExact, 8},
        ExecutionCase{FascicleParams::Algorithm::kGreedy, 2},
        ExecutionCase{FascicleParams::Algorithm::kGreedy, 8}),
    [](const testing::TestParamInfo<ExecutionCase>& info) {
      std::string name =
          info.param.algorithm == FascicleParams::Algorithm::kExact
              ? "Exact"
              : "Greedy";
      return name + std::to_string(info.param.threads) + "Threads";
    });

// ---- Tolerance metadata (Fig. 4.5) ----

TEST(ToleranceMetadataTest, PercentOfColumnWidth) {
  std::vector<double> data = {
      0, 10,   //
      4, 30,   //
      2, 20,   //
  };
  std::vector<double> tol = TolerancesFromWidthPercent(data.data(), 3, 2,
                                                       10.0);
  ASSERT_EQ(tol.size(), 2u);
  EXPECT_DOUBLE_EQ(tol[0], 0.4);  // width 4, 10%
  EXPECT_DOUBLE_EQ(tol[1], 2.0);  // width 20, 10%
}

TEST(ToleranceMetadataTest, ConstantColumnGetsZero) {
  std::vector<double> data = {5, 5, 5};
  std::vector<double> tol = TolerancesFromWidthPercent(data.data(), 3, 1,
                                                       50.0);
  EXPECT_DOUBLE_EQ(tol[0], 0.0);
}

TEST(ToleranceMetadataTest, EmptyMatrix) {
  std::vector<double> tol = TolerancesFromWidthPercent(nullptr, 0, 3, 10.0);
  EXPECT_EQ(tol, (std::vector<double>{0, 0, 0}));
}

}  // namespace
}  // namespace gea::cluster
