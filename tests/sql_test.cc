// Tests for the SQL-style query layer over the catalog.

#include <gtest/gtest.h>

#include "rel/catalog.h"
#include "rel/sql.h"

namespace gea::rel {
namespace {

Catalog MakeCatalog() {
  Catalog catalog;
  Schema schema({{"Lib_ID", ValueType::kInt},
                 {"Lib_Name", ValueType::kString},
                 {"Type", ValueType::kString},
                 {"Tag", ValueType::kDouble}});
  Table t("Libraries", schema);
  t.AppendRowUnchecked({Value::Int(1), Value::String("SAGE_Duke_H1020"),
                        Value::String("brain"), Value::Double(52371)});
  t.AppendRowUnchecked({Value::Int(2), Value::String("SAGE_Br_N"),
                        Value::String("breast"), Value::Double(37558)});
  t.AppendRowUnchecked({Value::Int(3), Value::String("SAGE_95_259"),
                        Value::String("brain"), Value::Double(14978)});
  t.AppendRowUnchecked({Value::Int(4), Value::String("SAGE_DCIS"),
                        Value::String("breast"), Value::Null()});
  (void)catalog.CreateTable(std::move(t));
  return catalog;
}

TEST(SqlTest, SelectStar) {
  Catalog catalog = MakeCatalog();
  Result<Table> out = ExecuteQuery(catalog, "SELECT * FROM Libraries");
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out->NumRows(), 4u);
  EXPECT_EQ(out->schema().NumColumns(), 4u);
  EXPECT_EQ(out->name(), "query");
}

TEST(SqlTest, ProjectionAndOrder) {
  Catalog catalog = MakeCatalog();
  Result<Table> out = ExecuteQuery(
      catalog,
      "SELECT Lib_Name, Tag FROM Libraries ORDER BY Tag DESC LIMIT 2");
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_EQ(out->NumRows(), 2u);
  EXPECT_EQ(out->schema().NumColumns(), 2u);
  EXPECT_EQ(out->At(0, 0).AsString(), "SAGE_Duke_H1020");
  EXPECT_EQ(out->At(1, 0).AsString(), "SAGE_Br_N");
}

TEST(SqlTest, WhereEquality) {
  Catalog catalog = MakeCatalog();
  // The Section 4.3.1 step-1 selection, as SQL.
  Result<Table> out = ExecuteQuery(
      catalog, "SELECT Lib_Name FROM Libraries WHERE Type = 'brain'");
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out->NumRows(), 2u);
}

TEST(SqlTest, WhereConjunction) {
  Catalog catalog = MakeCatalog();
  Result<Table> out = ExecuteQuery(
      catalog,
      "SELECT Lib_ID FROM Libraries WHERE Type = 'brain' AND Tag > 20000");
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->NumRows(), 1u);
  EXPECT_EQ(out->At(0, 0).AsInt(), 1);
}

TEST(SqlTest, Between) {
  Catalog catalog = MakeCatalog();
  Result<Table> out = ExecuteQuery(
      catalog,
      "SELECT Lib_ID FROM Libraries WHERE Tag BETWEEN 14000 AND 40000 "
      "ORDER BY Lib_ID");
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->NumRows(), 2u);
  EXPECT_EQ(out->At(0, 0).AsInt(), 2);
  EXPECT_EQ(out->At(1, 0).AsInt(), 3);
}

TEST(SqlTest, WhereDisjunction) {
  Catalog catalog = MakeCatalog();
  Result<Table> out = ExecuteQuery(
      catalog,
      "SELECT Lib_ID FROM Libraries WHERE Lib_ID = 1 OR Lib_ID = 4 "
      "ORDER BY Lib_ID");
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_EQ(out->NumRows(), 2u);
  EXPECT_EQ(out->At(0, 0).AsInt(), 1);
  EXPECT_EQ(out->At(1, 0).AsInt(), 4);
}

TEST(SqlTest, AndBindsTighterThanOr) {
  Catalog catalog = MakeCatalog();
  // Parsed as (Type='breast' AND Tag>30000) OR Lib_ID=3 — rows 2 and 3.
  // If OR bound tighter it would be Type='breast' AND (Tag>30000 OR
  // Lib_ID=3), matching only row 2.
  Result<Table> out = ExecuteQuery(
      catalog,
      "SELECT Lib_ID FROM Libraries WHERE Type = 'breast' AND Tag > 30000 "
      "OR Lib_ID = 3 ORDER BY Lib_ID");
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_EQ(out->NumRows(), 2u);
  EXPECT_EQ(out->At(0, 0).AsInt(), 2);
  EXPECT_EQ(out->At(1, 0).AsInt(), 3);
}

TEST(SqlTest, ParenthesesOverridePrecedence) {
  Catalog catalog = MakeCatalog();
  Result<Table> out = ExecuteQuery(
      catalog,
      "SELECT Lib_ID FROM Libraries WHERE Type = 'breast' AND "
      "(Tag > 30000 OR Lib_ID = 4) ORDER BY Lib_ID");
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_EQ(out->NumRows(), 2u);
  EXPECT_EQ(out->At(0, 0).AsInt(), 2);
  EXPECT_EQ(out->At(1, 0).AsInt(), 4);
}

TEST(SqlTest, InList) {
  Catalog catalog = MakeCatalog();
  Result<Table> out = ExecuteQuery(
      catalog,
      "SELECT Lib_ID FROM Libraries WHERE Lib_Name IN "
      "('SAGE_Br_N', 'SAGE_DCIS', 'nope') ORDER BY Lib_ID");
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_EQ(out->NumRows(), 2u);
  EXPECT_EQ(out->At(0, 0).AsInt(), 2);
  EXPECT_EQ(out->At(1, 0).AsInt(), 4);

  // Single-element lists and numeric lists work too.
  out = ExecuteQuery(catalog,
                     "SELECT Lib_ID FROM Libraries WHERE Lib_ID IN (3)");
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->NumRows(), 1u);
}

TEST(SqlTest, BetweenComposesWithOr) {
  Catalog catalog = MakeCatalog();
  // BETWEEN's interior AND must not swallow the OR that follows it.
  Result<Table> out = ExecuteQuery(
      catalog,
      "SELECT Lib_ID FROM Libraries WHERE Tag BETWEEN 14000 AND 20000 "
      "OR Lib_ID = 1 ORDER BY Lib_ID");
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_EQ(out->NumRows(), 2u);
  EXPECT_EQ(out->At(0, 0).AsInt(), 1);
  EXPECT_EQ(out->At(1, 0).AsInt(), 3);
}

TEST(SqlTest, BooleanGrammarErrors) {
  Catalog catalog = MakeCatalog();
  // Unbalanced parenthesis.
  EXPECT_TRUE(ExecuteQuery(catalog,
                           "SELECT * FROM Libraries WHERE (Lib_ID = 1")
                  .status()
                  .IsInvalidArgument());
  // Empty IN list.
  EXPECT_TRUE(ExecuteQuery(catalog,
                           "SELECT * FROM Libraries WHERE Lib_ID IN ()")
                  .status()
                  .IsInvalidArgument());
  // Dangling OR.
  EXPECT_TRUE(ExecuteQuery(catalog,
                           "SELECT * FROM Libraries WHERE Lib_ID = 1 OR")
                  .status()
                  .IsInvalidArgument());
}

TEST(SqlTest, IsNullAndIsNotNull) {
  Catalog catalog = MakeCatalog();
  Result<Table> null_rows = ExecuteQuery(
      catalog, "SELECT Lib_Name FROM Libraries WHERE Tag IS NULL");
  ASSERT_TRUE(null_rows.ok());
  ASSERT_EQ(null_rows->NumRows(), 1u);
  EXPECT_EQ(null_rows->At(0, 0).AsString(), "SAGE_DCIS");
  Result<Table> not_null = ExecuteQuery(
      catalog, "SELECT Lib_Name FROM Libraries WHERE Tag IS NOT NULL");
  EXPECT_EQ(not_null->NumRows(), 3u);
}

TEST(SqlTest, NotEqualsBothSpellings) {
  Catalog catalog = MakeCatalog();
  EXPECT_EQ(ExecuteQuery(catalog,
                         "SELECT * FROM Libraries WHERE Type != 'brain'")
                ->NumRows(),
            2u);
  EXPECT_EQ(ExecuteQuery(catalog,
                         "SELECT * FROM Libraries WHERE Type <> 'brain'")
                ->NumRows(),
            2u);
}

TEST(SqlTest, KeywordsAreCaseInsensitive) {
  Catalog catalog = MakeCatalog();
  Result<Table> out = ExecuteQuery(
      catalog,
      "select Lib_Name from Libraries where Type = 'brain' order by "
      "Lib_Name asc limit 5");
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out->NumRows(), 2u);
  EXPECT_EQ(out->At(0, 0).AsString(), "SAGE_95_259");
}

TEST(SqlTest, StringEscapes) {
  Catalog catalog;
  Table t("Notes", Schema({{"note", ValueType::kString}}));
  t.AppendRowUnchecked({Value::String("it's compact")});
  (void)catalog.CreateTable(std::move(t));
  Result<Table> out = ExecuteQuery(
      catalog, "SELECT * FROM Notes WHERE note = 'it''s compact'");
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out->NumRows(), 1u);
}

TEST(SqlTest, QuotedIdentifiers) {
  Catalog catalog;
  Table t("Odd", Schema({{"weird name", ValueType::kInt}}));
  t.AppendRowUnchecked({Value::Int(9)});
  (void)catalog.CreateTable(std::move(t));
  Result<Table> out = ExecuteQuery(
      catalog, "SELECT \"weird name\" FROM Odd WHERE \"weird name\" = 9");
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out->NumRows(), 1u);
}

TEST(SqlTest, NumericLiteralTyping) {
  Catalog catalog = MakeCatalog();
  // Double literal against a double column; int literal against int.
  EXPECT_EQ(ExecuteQuery(catalog,
                         "SELECT * FROM Libraries WHERE Tag >= 14978.0")
                ->NumRows(),
            3u);
  EXPECT_EQ(
      ExecuteQuery(catalog, "SELECT * FROM Libraries WHERE Lib_ID <= 2")
          ->NumRows(),
      2u);
}

TEST(SqlTest, Errors) {
  Catalog catalog = MakeCatalog();
  // Unknown table / column.
  EXPECT_TRUE(ExecuteQuery(catalog, "SELECT * FROM Nope").status()
                  .IsNotFound());
  EXPECT_TRUE(ExecuteQuery(catalog,
                           "SELECT bogus FROM Libraries")
                  .status()
                  .IsNotFound());
  // Syntax errors.
  EXPECT_TRUE(ExecuteQuery(catalog, "FROM Libraries").status()
                  .IsInvalidArgument());
  EXPECT_TRUE(ExecuteQuery(catalog, "SELECT * FROM Libraries WHERE")
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(ExecuteQuery(catalog,
                           "SELECT * FROM Libraries WHERE Type = 'oops")
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(ExecuteQuery(catalog, "SELECT * FROM Libraries LIMIT x")
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(ExecuteQuery(catalog, "SELECT * FROM Libraries trailing")
                  .status()
                  .IsInvalidArgument());
}

TEST(SqlTest, GroupByWithAggregates) {
  Catalog catalog = MakeCatalog();
  Result<Table> out = ExecuteQuery(
      catalog,
      "SELECT Type, COUNT(*) AS n, AVG(Tag) AS avg_tag FROM Libraries "
      "GROUP BY Type ORDER BY Type");
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_EQ(out->NumRows(), 2u);
  EXPECT_EQ(out->Get(0, "Type")->AsString(), "brain");
  EXPECT_EQ(out->Get(0, "n")->AsInt(), 2);
  EXPECT_DOUBLE_EQ(out->Get(0, "avg_tag")->AsDouble(),
                   (52371.0 + 14978.0) / 2);
  EXPECT_EQ(out->Get(1, "Type")->AsString(), "breast");
  // NULL Tag rows are skipped by AVG but counted by COUNT(*).
  EXPECT_EQ(out->Get(1, "n")->AsInt(), 2);
  EXPECT_DOUBLE_EQ(out->Get(1, "avg_tag")->AsDouble(), 37558.0);
}

TEST(SqlTest, GlobalAggregateWithoutGroupBy) {
  Catalog catalog = MakeCatalog();
  Result<Table> out = ExecuteQuery(
      catalog,
      "SELECT COUNT(*) AS n, MIN(Tag) AS lo, MAX(Tag) AS hi FROM "
      "Libraries");
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_EQ(out->NumRows(), 1u);
  EXPECT_EQ(out->Get(0, "n")->AsInt(), 4);
  EXPECT_DOUBLE_EQ(out->Get(0, "lo")->AsDouble(), 14978.0);
  EXPECT_DOUBLE_EQ(out->Get(0, "hi")->AsDouble(), 52371.0);
}

TEST(SqlTest, AggregateComposesWithWhere) {
  Catalog catalog = MakeCatalog();
  Result<Table> out = ExecuteQuery(
      catalog,
      "SELECT SUM(Tag) AS total FROM Libraries WHERE Type = 'brain'");
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_DOUBLE_EQ(out->Get(0, "total")->AsDouble(), 52371.0 + 14978.0);
}

TEST(SqlTest, DefaultAggregateNames) {
  Catalog catalog = MakeCatalog();
  Result<Table> out =
      ExecuteQuery(catalog, "SELECT COUNT(*), AVG(Tag) FROM Libraries");
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_TRUE(out->schema().FindColumn("count").has_value());
  EXPECT_TRUE(out->schema().FindColumn("avg_Tag").has_value());
}

TEST(SqlTest, AggregateValidation) {
  Catalog catalog = MakeCatalog();
  // Plain column outside GROUP BY.
  EXPECT_TRUE(ExecuteQuery(catalog,
                           "SELECT Lib_Name, COUNT(*) FROM Libraries")
                  .status()
                  .IsInvalidArgument());
  // * with GROUP BY.
  EXPECT_TRUE(
      ExecuteQuery(catalog, "SELECT * FROM Libraries GROUP BY Type")
          .status()
          .IsInvalidArgument());
  // Aggregate over a string column.
  EXPECT_TRUE(ExecuteQuery(catalog, "SELECT SUM(Lib_Name) FROM Libraries")
                  .status()
                  .IsInvalidArgument());
  // AS on a plain column is not supported.
  EXPECT_TRUE(ExecuteQuery(catalog,
                           "SELECT Lib_Name AS x FROM Libraries")
                  .status()
                  .IsInvalidArgument());
  // Unclosed aggregate.
  EXPECT_TRUE(ExecuteQuery(catalog, "SELECT COUNT( FROM Libraries")
                  .status()
                  .IsInvalidArgument());
}

TEST(SqlTest, ColumnNamedLikeAggregateStillWorks) {
  // A column named "count" without parentheses is an ordinary column.
  Catalog catalog;
  Table t("T", Schema({{"count", ValueType::kInt}}));
  t.AppendRowUnchecked({Value::Int(5)});
  (void)catalog.CreateTable(std::move(t));
  Result<Table> out = ExecuteQuery(catalog, "SELECT count FROM T");
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out->At(0, 0).AsInt(), 5);
}

TEST(SqlTest, LimitZeroAndOverrun) {
  Catalog catalog = MakeCatalog();
  EXPECT_EQ(ExecuteQuery(catalog, "SELECT * FROM Libraries LIMIT 0")
                ->NumRows(),
            0u);
  EXPECT_EQ(ExecuteQuery(catalog, "SELECT * FROM Libraries LIMIT 99")
                ->NumRows(),
            4u);
}

}  // namespace
}  // namespace gea::rel
