// Tests for the Section 4.2 pre-processing pipeline: error removal and
// normalization.

#include <gtest/gtest.h>

#include "sage/cleaning.h"
#include "sage/generator.h"

namespace gea::sage {
namespace {

SageLibrary Lib(int id, std::vector<std::pair<TagId, double>> counts) {
  SageLibrary lib(id, "L" + std::to_string(id), TissueType::kBrain,
                  NeoplasticState::kNormal, TissueSource::kBulkTissue);
  for (const auto& [tag, count] : counts) lib.SetCount(tag, count);
  return lib;
}

TEST(CleaningTest, RemovesTagsAtOrBelowToleranceEverywhere) {
  SageDataSet data;
  data.AddLibrary(Lib(1, {{10, 1.0}, {20, 5.0}, {30, 1.0}}));
  data.AddLibrary(Lib(2, {{10, 1.0}, {20, 3.0}}));
  CleaningStats stats = RemoveErrorTags(data, 1.0);
  // Tag 10: frequency 1 in both -> removed. Tag 30: 1 in lib1, absent in
  // lib2 -> removed. Tag 20: higher -> kept.
  EXPECT_EQ(stats.tags_before, 3u);
  EXPECT_EQ(stats.tags_after, 1u);
  EXPECT_EQ(stats.tags_removed, 2u);
  EXPECT_DOUBLE_EQ(data.library(0).Count(10), 0.0);
  EXPECT_DOUBLE_EQ(data.library(0).Count(20), 5.0);
}

TEST(CleaningTest, KeepsFrequencyOneTagsThatAreHigherElsewhere) {
  // Section 4.2: "tags having a frequency of 1 in some libraries, and
  // higher frequencies in other libraries are not removed".
  SageDataSet data;
  data.AddLibrary(Lib(1, {{10, 1.0}}));
  data.AddLibrary(Lib(2, {{10, 7.0}}));
  RemoveErrorTags(data, 1.0);
  EXPECT_DOUBLE_EQ(data.library(0).Count(10), 1.0);
  EXPECT_DOUBLE_EQ(data.library(1).Count(10), 7.0);
}

TEST(CleaningTest, ToleranceIsConfigurable) {
  SageDataSet data;
  data.AddLibrary(Lib(1, {{10, 2.0}, {20, 5.0}}));
  data.AddLibrary(Lib(2, {{10, 2.0}, {20, 4.0}}));
  CleaningStats stats = RemoveErrorTags(data, 2.0);
  EXPECT_EQ(stats.tags_removed, 1u);
  EXPECT_DOUBLE_EQ(data.library(0).Count(10), 0.0);
}

TEST(CleaningTest, PerLibraryRemovalFractions) {
  SageDataSet data;
  data.AddLibrary(Lib(1, {{10, 1.0}, {20, 5.0}}));   // loses 1 of 2
  data.AddLibrary(Lib(2, {{20, 3.0}}));              // loses 0 of 1
  CleaningStats stats = RemoveErrorTags(data, 1.0);
  ASSERT_EQ(stats.per_library_removed_fraction.size(), 2u);
  EXPECT_DOUBLE_EQ(stats.per_library_removed_fraction[0], 0.5);
  EXPECT_DOUBLE_EQ(stats.per_library_removed_fraction[1], 0.0);
  EXPECT_DOUBLE_EQ(stats.MinRemovedFraction(), 0.0);
  EXPECT_DOUBLE_EQ(stats.MaxRemovedFraction(), 0.5);
  EXPECT_DOUBLE_EQ(stats.AvgRemovedFraction(), 0.25);
  EXPECT_FALSE(stats.ToString().empty());
}

TEST(CleaningTest, NormalizeScalesEveryLibraryToTarget) {
  SageDataSet data;
  data.AddLibrary(Lib(1, {{10, 4.0}, {20, 6.0}}));
  data.AddLibrary(Lib(2, {{10, 1.0}}));
  NormalizeToDepth(data, 100.0);
  EXPECT_NEAR(data.library(0).TotalTagCount(), 100.0, 1e-9);
  EXPECT_NEAR(data.library(1).TotalTagCount(), 100.0, 1e-9);
  // Proportions preserved.
  EXPECT_NEAR(data.library(0).Count(10), 40.0, 1e-9);
  EXPECT_NEAR(data.library(0).Count(20), 60.0, 1e-9);
}

TEST(CleaningTest, NormalizeSkipsEmptyLibraries) {
  SageDataSet data;
  data.AddLibrary(Lib(1, {}));
  NormalizeToDepth(data, 100.0);
  EXPECT_DOUBLE_EQ(data.library(0).TotalTagCount(), 0.0);
}

TEST(CleaningTest, StandardDepthIs300k) {
  EXPECT_DOUBLE_EQ(kStandardDepth, 300000.0);
}

// ---- On synthetic data: the thesis's headline cleaning statistics ----

class SyntheticCleaningTest : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    GeneratorConfig config;
    config.seed = 42;
    config.panels = SyntheticSageGenerator::SmallPanels();
    data_ = new SyntheticSage(SyntheticSageGenerator(config).Generate());
  }
  static void TearDownTestSuite() {
    delete data_;
    data_ = nullptr;
  }
  static SyntheticSage* data_;
};

SyntheticSage* SyntheticCleaningTest::data_ = nullptr;

TEST_F(SyntheticCleaningTest, CleaningShrinksTheUniverseDramatically) {
  SageDataSet data = data_->dataset;  // copy
  size_t before = data.UniverseSize();
  CleaningStats stats = RemoveErrorTags(data, 1.0);
  EXPECT_EQ(stats.tags_before, before);
  // The thesis reports 350k -> 60k (a ~6x reduction). The synthetic error
  // singletons rarely collide across libraries, so the reduction here is
  // at least that dramatic.
  EXPECT_LT(stats.tags_after, before / 5);
  EXPECT_EQ(data.UniverseSize(), stats.tags_after);
}

TEST_F(SyntheticCleaningTest, PlantedBiologySurvivesCleaning) {
  SageDataSet data = data_->dataset;
  RemoveErrorTags(data, 1.0);
  std::vector<TagId> universe = data.TagUniverse();
  auto survives = [&universe](TagId tag) {
    return std::binary_search(universe.begin(), universe.end(), tag);
  };
  size_t kept = 0;
  const auto& signature = data_->truth.signature.at(TissueType::kBrain);
  for (TagId tag : signature) {
    if (survives(tag)) ++kept;
  }
  EXPECT_EQ(kept, signature.size());
}

TEST_F(SyntheticCleaningTest, PerLibraryRemovalInPlausibleBand) {
  SageDataSet data = data_->dataset;
  CleaningStats stats = RemoveErrorTags(data, 1.0);
  // The thesis reports 5%-15% of each library's *total* tags removed; in
  // unique-tag terms the error singletons dominate, so the removed
  // fraction of unique tags is large while the removed fraction of the
  // total count stays near the 10% error rate.
  EXPECT_GT(stats.AvgRemovedFraction(), 0.3);
  EXPECT_LT(stats.AvgRemovedFraction(), 0.95);
}

TEST_F(SyntheticCleaningTest, CleanAndNormalizeEndToEnd) {
  SageDataSet data = data_->dataset;
  CleanAndNormalize(data, 1.0, kStandardDepth);
  for (const SageLibrary& lib : data.libraries()) {
    EXPECT_NEAR(lib.TotalTagCount(), kStandardDepth, 1e-6) << lib.name();
  }
}

}  // namespace
}  // namespace gea::sage
