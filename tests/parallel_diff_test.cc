// Differential serial-vs-parallel harness: runs the four parallelized hot
// operators — aggregate(), populate(), diff() (plus the gap-compare
// selection it feeds), and mine() — on a generated data set at 1, 2 and 8
// threads and asserts the outputs are byte-identical to the forced-serial
// reference. The determinism contract (DESIGN.md, "Parallel execution
// model") promises bit-equal doubles, not just values within a tolerance,
// so every comparison below goes through the bit pattern.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <optional>
#include <vector>

#include "common/thread_pool.h"
#include "core/enum_table.h"
#include "core/gap.h"
#include "core/gap_compare.h"
#include "core/gap_ops.h"
#include "core/index_advisor.h"
#include "core/operators.h"
#include "core/populate.h"
#include "sage/generator.h"

namespace gea::core {
namespace {

// This battery exists to exercise the cross-thread execution paths, so
// keep pool helpers real even on single-core hosts (where ParallelFor
// would otherwise run its chunks inline).
ForceParallelHelpersScope g_force_helpers;

uint64_t Bits(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

::testing::AssertionResult BitEqual(double a, double b) {
  if (Bits(a) == Bits(b)) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure()
         << a << " and " << b << " differ in bit pattern";
}

::testing::AssertionResult SumyBitEqual(const SumyTable& a,
                                        const SumyTable& b) {
  if (a.NumTags() != b.NumTags()) {
    return ::testing::AssertionFailure()
           << a.name() << " has " << a.NumTags() << " tags, " << b.name()
           << " has " << b.NumTags();
  }
  for (size_t i = 0; i < a.NumTags(); ++i) {
    const SumyEntry& ea = a.entry(i);
    const SumyEntry& eb = b.entry(i);
    if (ea.tag != eb.tag || Bits(ea.min) != Bits(eb.min) ||
        Bits(ea.max) != Bits(eb.max) || Bits(ea.mean) != Bits(eb.mean) ||
        Bits(ea.stddev) != Bits(eb.stddev)) {
      return ::testing::AssertionFailure()
             << "SUMY row " << i << " differs (tag " << ea.tag << ")";
    }
  }
  return ::testing::AssertionSuccess();
}

::testing::AssertionResult GapBitEqual(const GapTable& a, const GapTable& b) {
  if (a.NumTags() != b.NumTags() || a.NumColumns() != b.NumColumns()) {
    return ::testing::AssertionFailure()
           << "GAP shape differs: " << a.NumTags() << "x" << a.NumColumns()
           << " vs " << b.NumTags() << "x" << b.NumColumns();
  }
  for (size_t i = 0; i < a.NumTags(); ++i) {
    const GapEntry& ea = a.entry(i);
    const GapEntry& eb = b.entry(i);
    if (ea.tag != eb.tag || ea.gaps.size() != eb.gaps.size()) {
      return ::testing::AssertionFailure() << "GAP row " << i << " differs";
    }
    for (size_t g = 0; g < ea.gaps.size(); ++g) {
      if (ea.gaps[g].has_value() != eb.gaps[g].has_value()) {
        return ::testing::AssertionFailure()
               << "GAP row " << i << " nullness differs";
      }
      if (ea.gaps[g].has_value() && Bits(*ea.gaps[g]) != Bits(*eb.gaps[g])) {
        return ::testing::AssertionFailure()
               << "GAP row " << i << " value differs";
      }
    }
  }
  return ::testing::AssertionSuccess();
}

::testing::AssertionResult EnumBitEqual(const EnumTable& a,
                                        const EnumTable& b) {
  if (a.NumLibraries() != b.NumLibraries() || a.NumTags() != b.NumTags()) {
    return ::testing::AssertionFailure()
           << "ENUM shape differs: " << a.NumLibraries() << "x" << a.NumTags()
           << " vs " << b.NumLibraries() << "x" << b.NumTags();
  }
  for (size_t r = 0; r < a.NumLibraries(); ++r) {
    if (a.library(r).id != b.library(r).id) {
      return ::testing::AssertionFailure()
             << "ENUM row " << r << " library differs: " << a.library(r).id
             << " vs " << b.library(r).id;
    }
  }
  if (a.tags() != b.tags()) {
    return ::testing::AssertionFailure() << "ENUM tag columns differ";
  }
  const std::vector<double>& va = a.values();
  const std::vector<double>& vb = b.values();
  if (std::memcmp(va.data(), vb.data(), va.size() * sizeof(double)) != 0) {
    return ::testing::AssertionFailure() << "ENUM value buffers differ";
  }
  return ::testing::AssertionSuccess();
}

// Everything one pipeline run produces, captured for comparison.
// (EnumTable has no default constructor, hence the optional.)
struct PipelineOutputs {
  SumyTable cancer_sumy;
  SumyTable normal_sumy;
  GapTable gap;
  GapTable compared;
  GapTable query_hits;
  std::optional<EnumTable> populated;
  PopulateEngine::Stats populate_stats;
  std::vector<MinedFascicle> mined;
};

const sage::SyntheticSage& Synth() {
  static const sage::SyntheticSage* synth = [] {
    sage::GeneratorConfig config;
    config.seed = 7;
    config.panels = sage::SyntheticSageGenerator::SmallPanels();
    return new sage::SyntheticSage(
        sage::SyntheticSageGenerator(config).Generate());
  }();
  return *synth;
}

EnumTable BaseEnum(size_t num_tags) {
  std::vector<sage::TagId> universe = Synth().dataset.TagUniverse();
  if (universe.size() > num_tags) universe.resize(num_tags);
  return EnumTable::FromDataSet("base", Synth().dataset, universe);
}

PipelineOutputs RunPipeline(size_t threads) {
  ThreadCountOverride guard(threads);
  PipelineOutputs out;

  EnumTable base = BaseEnum(3000);
  EnumTable cancer = base.FilterLibraries(
      "cancer", [](const sage::LibraryMeta& lib) {
        return lib.state == sage::NeoplasticState::kCancer;
      });
  EnumTable normal = base.FilterLibraries(
      "normal", [](const sage::LibraryMeta& lib) {
        return lib.state == sage::NeoplasticState::kNormal;
      });

  // aggregate()
  out.cancer_sumy = std::move(Aggregate(cancer, "cancer_sumy")).value();
  out.normal_sumy = std::move(Aggregate(normal, "normal_sumy")).value();

  // diff() and the gap-compare path (intersect + canned query 1).
  out.gap = std::move(Diff(out.cancer_sumy, out.normal_sumy, "gap")).value();
  GapTable gap_ba =
      std::move(Diff(out.normal_sumy, out.cancer_sumy, "gap_ba")).value();
  out.compared = std::move(CompareGaps(out.gap, gap_ba,
                                       GapCompareKind::kIntersect, "cmp"))
                     .value();
  out.query_hits =
      std::move(ApplyGapQuery(out.compared,
                              GapCompareQuery::kHigherInAInBoth, "hits"))
          .value();

  // populate() with the thesis's entropy indexes.
  PopulateEngine engine(base);
  EXPECT_TRUE(engine.BuildIndexes(TopEntropyTags(base, 16)).ok());
  out.populated = std::move(engine.Populate(out.cancer_sumy, "populated",
                                            &out.populate_stats))
                      .value();

  // mine() on a narrower slice (fascicle search cost grows fast in tags).
  std::vector<sage::TagId> mine_tags = base.tags();
  mine_tags.resize(std::min<size_t>(mine_tags.size(), 400));
  EnumTable mine_input =
      std::move(base.RestrictTags("mine_input", mine_tags)).value();
  cluster::FascicleParams params;
  params.tolerances = MakeToleranceMetadata(mine_input, 30.0);
  params.min_compact_tags = mine_input.NumTags() / 2;
  params.min_size = 3;
  params.batch_size = 6;
  out.mined =
      std::move(Mine(mine_input, params, "fas")).value();
  return out;
}

class ParallelDifferentialTest : public testing::TestWithParam<size_t> {};

TEST_P(ParallelDifferentialTest, MatchesSerialReferenceByteForByte) {
  // Serial reference: forced-serial mode, never touches the pool.
  PipelineOutputs reference = RunPipeline(1);
  PipelineOutputs parallel = RunPipeline(GetParam());

  EXPECT_TRUE(SumyBitEqual(reference.cancer_sumy, parallel.cancer_sumy));
  EXPECT_TRUE(SumyBitEqual(reference.normal_sumy, parallel.normal_sumy));
  EXPECT_TRUE(GapBitEqual(reference.gap, parallel.gap));
  EXPECT_TRUE(GapBitEqual(reference.compared, parallel.compared));
  EXPECT_TRUE(GapBitEqual(reference.query_hits, parallel.query_hits));
  EXPECT_TRUE(EnumBitEqual(*reference.populated, *parallel.populated));

  // The executor must not change what the planner reports.
  EXPECT_EQ(reference.populate_stats.conditions,
            parallel.populate_stats.conditions);
  EXPECT_EQ(reference.populate_stats.index_hits,
            parallel.populate_stats.index_hits);
  EXPECT_EQ(reference.populate_stats.candidates_after_index,
            parallel.populate_stats.candidates_after_index);
  EXPECT_EQ(reference.populate_stats.values_checked,
            parallel.populate_stats.values_checked);

  // mine(): same fascicles in the same order, and byte-identical SUMY +
  // member ENUM materializations.
  ASSERT_EQ(reference.mined.size(), parallel.mined.size());
  for (size_t i = 0; i < reference.mined.size(); ++i) {
    const MinedFascicle& r = reference.mined[i];
    const MinedFascicle& p = parallel.mined[i];
    EXPECT_EQ(r.fascicle.members, p.fascicle.members) << "fascicle " << i;
    EXPECT_EQ(r.fascicle.compact_columns, p.fascicle.compact_columns);
    ASSERT_EQ(r.fascicle.compact_ranges.size(),
              p.fascicle.compact_ranges.size());
    for (size_t c = 0; c < r.fascicle.compact_ranges.size(); ++c) {
      EXPECT_TRUE(BitEqual(r.fascicle.compact_ranges[c].first,
                           p.fascicle.compact_ranges[c].first));
      EXPECT_TRUE(BitEqual(r.fascicle.compact_ranges[c].second,
                           p.fascicle.compact_ranges[c].second));
    }
    EXPECT_TRUE(SumyBitEqual(r.sumy, p.sumy));
    EXPECT_TRUE(EnumBitEqual(r.members, p.members));
  }

  // Sanity: the pipeline actually exercised its stages.
  EXPECT_GT(reference.gap.NumTags(), 0u);
  EXPECT_GT(reference.populated->NumLibraries(), 0u);
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, ParallelDifferentialTest,
                         testing::Values(1, 2, 8));

// The exact miner takes a different code path (frontier extension with the
// overflow guard); diff it separately on a small planted matrix.
TEST(ParallelDifferentialTest, ExactMinerMatchesSerial) {
  EnumTable base = BaseEnum(64);
  std::vector<sage::TagId> tags = base.tags();
  EnumTable input = std::move(base.RestrictTags("exact_in", tags)).value();

  cluster::FascicleParams params;
  params.tolerances = MakeToleranceMetadata(input, 35.0);
  params.min_compact_tags = input.NumTags() * 3 / 4;
  params.min_size = 2;
  params.algorithm = cluster::FascicleParams::Algorithm::kExact;
  params.max_candidates = 200000;

  cluster::FascicleMiner miner(input.values().data(), input.NumLibraries(),
                               input.NumTags());
  std::vector<std::vector<cluster::Fascicle>> runs;
  for (size_t threads : {1, 2, 8}) {
    ThreadCountOverride guard(threads);
    Result<std::vector<cluster::Fascicle>> mined = miner.Mine(params);
    ASSERT_TRUE(mined.ok()) << mined.status().ToString();
    runs.push_back(*std::move(mined));
  }
  for (size_t run = 1; run < runs.size(); ++run) {
    ASSERT_EQ(runs[0].size(), runs[run].size());
    for (size_t i = 0; i < runs[0].size(); ++i) {
      EXPECT_EQ(runs[0][i].members, runs[run][i].members);
      EXPECT_EQ(runs[0][i].compact_columns, runs[run][i].compact_columns);
      EXPECT_EQ(runs[0][i].compact_ranges, runs[run][i].compact_ranges);
    }
  }
}

// The max_candidates overflow decision must not depend on the thread
// count either.
TEST(ParallelDifferentialTest, ExactMinerOverflowIsThreadCountInvariant) {
  std::vector<double> data(20 * 3, 1.0);
  cluster::FascicleMiner miner(data.data(), 20, 3);
  cluster::FascicleParams params;
  params.min_compact_tags = 3;
  params.tolerances = {1e9, 1e9, 1e9};
  params.min_size = 2;
  params.algorithm = cluster::FascicleParams::Algorithm::kExact;
  params.max_candidates = 100;
  for (size_t threads : {1, 2, 8}) {
    ThreadCountOverride guard(threads);
    EXPECT_EQ(miner.Mine(params).status().code(),
              StatusCode::kFailedPrecondition)
        << "threads=" << threads;
  }
}

}  // namespace
}  // namespace gea::core
