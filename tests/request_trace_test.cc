// Tests for per-request stage attribution: the thread-local stage sink,
// 1-in-N sampling, the fixed-capacity trace ring (wraparound and
// concurrent publish/read — run under TSan via the "parallel" label) and
// the Chrome trace-event JSON exporter's structural invariants.

#include "obs/request_trace.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "obs/export.h"
#include "obs/trace.h"

namespace gea::obs {
namespace {

RequestTraceRecord MakeRecord(uint64_t trace_id, uint64_t request_id,
                              const std::string& op, uint64_t start_nanos) {
  RequestTraceRecord record;
  record.trace_id = trace_id;
  record.request_id = request_id;
  record.op = op;
  record.user = "admin";
  record.start_nanos = start_nanos;
  record.stages[RequestStage::kDecode] = 1000;
  record.stages[RequestStage::kQueue] = 2000;
  record.stages[RequestStage::kExecute] = 10000;
  record.stages[RequestStage::kEncode] = 500;
  record.stages[RequestStage::kWrite] = 300;
  record.total_nanos = 13800;
  record.reader_tid = 1;
  record.worker_tid = 2;
  return record;
}

// ---------- Stage sink ----------

TEST(StageSinkTest, InactiveByDefaultAndScoped) {
  EXPECT_FALSE(StageCollectionActive());
  AddStageNanos(RequestStage::kExecute, 100);  // no-op, must not crash
  EXPECT_EQ(CollectedStageNanos(RequestStage::kExecute), 0u);

  StageCollectorScope scope;
  EXPECT_TRUE(StageCollectionActive());
  AddStageNanos(RequestStage::kWalFsync, 40);
  AddStageNanos(RequestStage::kWalFsync, 2);
  EXPECT_EQ(CollectedStageNanos(RequestStage::kWalFsync), 42u);
  EXPECT_EQ(scope.stages()[RequestStage::kWalFsync], 42u);
}

TEST(StageSinkTest, NestedScopesShadow) {
  StageCollectorScope outer;
  AddStageNanos(RequestStage::kDecode, 7);
  {
    StageCollectorScope inner;
    AddStageNanos(RequestStage::kDecode, 100);
    EXPECT_EQ(CollectedStageNanos(RequestStage::kDecode), 100u);
  }
  EXPECT_EQ(CollectedStageNanos(RequestStage::kDecode), 7u);
}

TEST(StageSinkTest, ContributedSpansLandInScope) {
  std::vector<SpanRecord> spans(2);
  spans[0].name = "op";
  spans[1].name = "wal_fsync";
  ContributeRequestSpans(spans);  // no scope: dropped, no crash

  StageCollectorScope scope;
  ContributeRequestSpans(std::move(spans));
  ASSERT_EQ(scope.spans().size(), 2u);
  EXPECT_EQ(scope.spans()[1].name, "wal_fsync");
}

TEST(StageSinkTest, StageNamesAreStable) {
  EXPECT_STREQ(RequestStageName(RequestStage::kDecode), "decode");
  EXPECT_STREQ(RequestStageName(RequestStage::kQueue), "queue_wait");
  EXPECT_STREQ(RequestStageName(RequestStage::kExecute), "execute");
  EXPECT_STREQ(RequestStageName(RequestStage::kWalAppend), "wal_append");
  EXPECT_STREQ(RequestStageName(RequestStage::kWalFsync), "wal_fsync");
  EXPECT_STREQ(RequestStageName(RequestStage::kEncode), "encode");
  EXPECT_STREQ(RequestStageName(RequestStage::kWrite), "write");
}

// ---------- Sampling ----------

TEST(SamplingTest, OneInNAndOff) {
  {
    ScopedTraceSample always(1);
    EXPECT_TRUE(SampleThisRequest());
    EXPECT_TRUE(SampleThisRequest());
  }
  {
    ScopedTraceSample never(0);
    EXPECT_FALSE(SampleThisRequest());
    EXPECT_FALSE(SampleThisRequest());
  }
  {
    // 1-in-3 over a shared process-wide counter: exactly ceil-ish a third
    // of any 300 consecutive calls sample, whatever the phase.
    ScopedTraceSample third(3);
    int sampled = 0;
    for (int i = 0; i < 300; ++i) sampled += SampleThisRequest() ? 1 : 0;
    EXPECT_EQ(sampled, 100);
  }
}

TEST(SamplingTest, NextTraceIdIsNonZeroAndDistinct) {
  const uint64_t a = NextTraceId();
  const uint64_t b = NextTraceId();
  EXPECT_NE(a, 0u);
  EXPECT_NE(b, 0u);
  EXPECT_NE(a, b);
}

// ---------- Ring ----------

TEST(RequestTraceRingTest, WraparoundKeepsNewestOldestFirst) {
  RequestTraceRing ring(4);
  EXPECT_EQ(ring.capacity(), 4u);
  for (uint64_t i = 1; i <= 10; ++i) {
    ring.Publish(MakeRecord(/*trace_id=*/i, /*request_id=*/i, "ping",
                            /*start_nanos=*/i * 1000));
  }
  EXPECT_EQ(ring.Published(), 10u);
  std::vector<RequestTraceRecord> snapshot = ring.Snapshot();
  ASSERT_EQ(snapshot.size(), 4u);
  // Oldest first: publishes 7, 8, 9, 10 survive.
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(snapshot[i].request_id, 7 + i);
  }

  ring.Clear();
  EXPECT_TRUE(ring.Snapshot().empty());
  EXPECT_EQ(ring.Published(), 0u);
}

TEST(RequestTraceRingTest, ConcurrentPublishAndReadIsClean) {
  RequestTraceRing ring(8);
  constexpr int kPublishers = 4;
  constexpr int kPerPublisher = 200;
  std::atomic<bool> stop{false};

  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      std::vector<RequestTraceRecord> snapshot = ring.Snapshot();
      // Seq-sorted snapshots never exceed capacity and stay oldest-first.
      ASSERT_LE(snapshot.size(), ring.capacity());
      for (size_t i = 1; i < snapshot.size(); ++i) {
        EXPECT_LE(snapshot[i - 1].request_id, snapshot[i].request_id + 0);
      }
    }
  });

  std::vector<std::thread> publishers;
  for (int p = 0; p < kPublishers; ++p) {
    publishers.emplace_back([&ring, p] {
      for (int i = 0; i < kPerPublisher; ++i) {
        ring.Publish(MakeRecord(/*trace_id=*/p * 1000 + i,
                                /*request_id=*/p * 1000 + i, "sql",
                                /*start_nanos=*/1000 + i));
      }
    });
  }
  for (std::thread& t : publishers) t.join();
  stop.store(true, std::memory_order_release);
  reader.join();

  EXPECT_EQ(ring.Published(),
            static_cast<uint64_t>(kPublishers) * kPerPublisher);
  EXPECT_EQ(ring.Snapshot().size(), ring.capacity());
}

// ---------- Chrome trace-event JSON ----------

/// Every "ts" value in file order; exporter output must be sorted.
std::vector<double> TimestampsInOrder(const std::string& json) {
  std::vector<double> out;
  size_t pos = 0;
  while ((pos = json.find("\"ts\":", pos)) != std::string::npos) {
    pos += 5;
    out.push_back(std::strtod(json.c_str() + pos, nullptr));
  }
  return out;
}

TEST(ChromeTraceJsonTest, EmptyRingIsStillValid) {
  const std::string json = ChromeTraceJson({});
  std::string error;
  EXPECT_TRUE(internal::ValidateJson(json, &error)) << error;
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("gea_server"), std::string::npos);
}

TEST(ChromeTraceJsonTest, StructuralInvariants) {
  RequestTraceRecord first = MakeRecord(101, 1, "populate", 50000);
  first.stages[RequestStage::kWalAppend] = 600;
  first.stages[RequestStage::kWalFsync] = 900;
  SpanRecord span;
  span.id = 11;
  span.parent_id = 0;
  span.name = "wal_fsync";
  span.start_nanos = 61000;
  span.duration_nanos = 900;
  span.trace_id = 101;
  span.tid = 9;
  first.spans.push_back(span);
  RequestTraceRecord second = MakeRecord(102, 2, "sql", 90000);

  const std::string json = ChromeTraceJson({first, second});
  std::string error;
  ASSERT_TRUE(internal::ValidateJson(json, &error)) << error;

  // Metadata: the process plus every referenced thread gets a name.
  EXPECT_NE(json.find("\"name\":\"gea_server\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"reader-1\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"worker-2\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"pool-9\""), std::string::npos);

  // Every stage renders as a slice; WAL stages only when non-zero.
  for (const char* stage : {"\"decode\"", "\"queue_wait\"", "\"execute\"",
                            "\"wal_append\"", "\"wal_fsync\"", "\"encode\"",
                            "\"write\""}) {
    EXPECT_NE(json.find(std::string("\"name\":") + stage), std::string::npos)
        << stage;
  }

  // The request envelopes and the fsync flow arrows are present.
  EXPECT_NE(json.find("\"name\":\"populate\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"sql\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos);

  // Timestamps are base-normalized (>= 0) and sorted in file order.
  std::vector<double> ts = TimestampsInOrder(json);
  ASSERT_FALSE(ts.empty());
  EXPECT_GE(ts.front(), 0.0);
  for (size_t i = 1; i < ts.size(); ++i) {
    EXPECT_LE(ts[i - 1], ts[i]) << "event " << i << " out of order";
  }
}

}  // namespace
}  // namespace gea::obs
