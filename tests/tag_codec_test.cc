// Tests for the SAGE tag codec (10-bp tags packed into 20-bit ids).

#include <gtest/gtest.h>

#include "sage/tag_codec.h"

namespace gea::sage {
namespace {

TEST(TagCodecTest, AllAsIsZero) {
  Result<TagId> id = EncodeTag("AAAAAAAAAA");
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(*id, 0u);
}

TEST(TagCodecTest, AllTsIsMax) {
  Result<TagId> id = EncodeTag("TTTTTTTTTT");
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(*id, kNumPossibleTags - 1);
}

TEST(TagCodecTest, LastBaseIsLeastSignificant) {
  EXPECT_EQ(*EncodeTag("AAAAAAAAAC"), 1u);
  EXPECT_EQ(*EncodeTag("AAAAAAAAAG"), 2u);
  EXPECT_EQ(*EncodeTag("AAAAAAAAAT"), 3u);
  EXPECT_EQ(*EncodeTag("AAAAAAAACA"), 4u);
}

TEST(TagCodecTest, RejectsBadLength) {
  EXPECT_FALSE(EncodeTag("AAA").ok());
  EXPECT_FALSE(EncodeTag("AAAAAAAAAAA").ok());
  EXPECT_FALSE(EncodeTag("").ok());
}

TEST(TagCodecTest, RejectsBadBases) {
  EXPECT_FALSE(EncodeTag("AAAAANAAAA").ok());
  EXPECT_FALSE(EncodeTag("aaaaaaaaaa").ok());  // lower case not accepted
}

TEST(TagCodecTest, IsValidTagString) {
  EXPECT_TRUE(IsValidTagString("ACGTACGTAC"));
  EXPECT_FALSE(IsValidTagString("ACGTACGTA"));
  EXPECT_FALSE(IsValidTagString("ACGTACGTAX"));
}

TEST(TagCodecTest, TagLabelFormat) {
  EXPECT_EQ(TagLabel(0), "AAAAAAAAAA_(0)");
  EXPECT_EQ(TagLabel(3), "AAAAAAAAAT_(3)");
}

TEST(TagCodecTest, LexicographicOrderMatchesNumericOrder) {
  std::vector<std::string> tags = {"AAAAAAAAAA", "AAAAAAAAAC", "AAAAAAAACC",
                                   "ACGTACGTAC", "CAAAAAAAAA", "GGGGGGGGGG",
                                   "TTTTTTTTTT"};
  for (size_t i = 1; i < tags.size(); ++i) {
    EXPECT_LT(*EncodeTag(tags[i - 1]), *EncodeTag(tags[i]))
        << tags[i - 1] << " vs " << tags[i];
  }
}

// Property sweep: encode/decode round-trips across a stride through the
// whole tag space.
class TagRoundTripTest : public testing::TestWithParam<uint32_t> {};

TEST_P(TagRoundTripTest, DecodeThenEncodeIsIdentity) {
  TagId id = GetParam();
  std::string s = DecodeTag(id);
  EXPECT_EQ(s.size(), 10u);
  Result<TagId> back = EncodeTag(s);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, id);
}

INSTANTIATE_TEST_SUITE_P(StrideThroughSpace, TagRoundTripTest,
                         testing::Values(0u, 1u, 2u, 3u, 4u, 1023u, 29994u,
                                         65535u, 524287u, 524288u, 1000000u,
                                         1048575u));

}  // namespace
}  // namespace gea::sage
