// Tests for the monitoring endpoint (request routing + a real end-to-end
// HTTP round trip on an ephemeral port) and the structured logging layer
// (levels, the JSON record builder, the slow-query log).

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <string>
#include <vector>

#include "obs/export.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/request_trace.h"
#include "obs/server.h"
#include "obs/trace.h"

namespace gea::obs {
namespace {

// ---------- Structured logging ----------

TEST(LogTest, LevelNamesAndDefaultThreshold) {
  EXPECT_STREQ(LogLevelName(LogLevel::kDebug), "debug");
  EXPECT_STREQ(LogLevelName(LogLevel::kError), "error");
  // Default threshold is warn: warnings/errors flow, info/debug do not
  // (unless GEA_LOG overrides; pin it for the assertion).
  ScopedLogLevel as_default(LogLevel::kWarn);
  EXPECT_TRUE(LogEnabled(LogLevel::kWarn));
  EXPECT_TRUE(LogEnabled(LogLevel::kError));
  EXPECT_FALSE(LogEnabled(LogLevel::kInfo));
  EXPECT_FALSE(LogEnabled(LogLevel::kDebug));
}

TEST(LogTest, ScopedLevelNests) {
  ScopedLogLevel outer(LogLevel::kError);
  EXPECT_FALSE(LogEnabled(LogLevel::kWarn));
  {
    ScopedLogLevel inner(LogLevel::kDebug);
    EXPECT_TRUE(LogEnabled(LogLevel::kDebug));
  }
  EXPECT_FALSE(LogEnabled(LogLevel::kWarn));
  EXPECT_TRUE(LogEnabled(LogLevel::kError));
}

TEST(LogTest, RecordRendersOneValidJsonLine) {
  ScopedLogCapture capture;
  LogRecord(LogLevel::kWarn, "unit_test")
      .Str("key", "va\"lue")
      .Int("neg", -5)
      .U64("big", 18'000'000'000'000'000'000ull)
      .F64("ratio", 0.25)
      .Bool("flag", true)
      .RawJson("nested", "{\"a\":1}")
      .Emit();
  const std::string out = capture.str();
  ASSERT_FALSE(out.empty());
  ASSERT_EQ(out.back(), '\n');
  const std::string line = out.substr(0, out.size() - 1);
  EXPECT_EQ(line.find('\n'), std::string::npos);  // exactly one line
  std::string error;
  EXPECT_TRUE(internal::ValidateJson(line, &error)) << error << "\n" << line;
  EXPECT_NE(line.find("\"level\":\"warn\""), std::string::npos);
  EXPECT_NE(line.find("\"event\":\"unit_test\""), std::string::npos);
  EXPECT_NE(line.find("\"key\":\"va\\\"lue\""), std::string::npos);
  EXPECT_NE(line.find("\"neg\":-5"), std::string::npos);
  EXPECT_NE(line.find("\"big\":18000000000000000000"), std::string::npos);
  EXPECT_NE(line.find("\"flag\":true"), std::string::npos);
  EXPECT_NE(line.find("\"nested\":{\"a\":1}"), std::string::npos);
  EXPECT_NE(line.find("\"ts_ms\":"), std::string::npos);
}

TEST(LogTest, BelowThresholdRecordsAreFreeAndSilent) {
  ScopedLogCapture capture(LogLevel::kError);
  LogRecord(LogLevel::kInfo, "quiet").Str("k", "v").Emit();
  EXPECT_TRUE(capture.str().empty());
}

TEST(LogTest, SlowQueryThresholdOverrides) {
  // The scoped override wins over whatever the environment says.
  ScopedSlowQueryMs slow(25);
  ASSERT_TRUE(SlowQueryThresholdMs().has_value());
  EXPECT_EQ(*SlowQueryThresholdMs(), 25u);
  {
    ScopedSlowQueryMs inner(std::nullopt);
    EXPECT_FALSE(SlowQueryThresholdMs().has_value());
  }
  EXPECT_EQ(*SlowQueryThresholdMs(), 25u);
}

// ---------- Request routing (no sockets) ----------

TEST(MonitorRoutingTest, ParseRequestPath) {
  EXPECT_EQ(internal::ParseRequestPath("GET /healthz HTTP/1.1\r\n\r\n"),
            "/healthz");
  EXPECT_EQ(internal::ParseRequestPath("GET /statz?pretty=1 HTTP/1.1\r\n"),
            "/statz");
  EXPECT_EQ(internal::ParseRequestPath("POST /metrics HTTP/1.1\r\n"), "");
  EXPECT_EQ(internal::ParseRequestPath("GET  HTTP/1.1"), "");
  EXPECT_EQ(internal::ParseRequestPath("garbage"), "");
}

TEST(MonitorRoutingTest, RoutesAndPayloads) {
  ScopedMetricsEnable metrics(true);
  MetricsRegistry::Global().GetCounter("gea.test.monitor_route").Add(1);

  internal::HttpResponse health = internal::HandlePath("/healthz");
  EXPECT_EQ(health.status, 200);
  EXPECT_EQ(health.body, "ok\n");

  internal::HttpResponse prom = internal::HandlePath("/metrics");
  EXPECT_EQ(prom.status, 200);
  EXPECT_NE(prom.content_type.find("version=0.0.4"), std::string::npos);
  EXPECT_NE(prom.body.find("# TYPE gea_test_monitor_route counter"),
            std::string::npos);

  internal::HttpResponse statz = internal::HandlePath("/statz");
  EXPECT_EQ(statz.status, 200);
  EXPECT_EQ(statz.content_type, "application/json");
  std::string error;
  EXPECT_TRUE(internal::ValidateJson(statz.body, &error)) << error;

  EXPECT_EQ(internal::HandlePath("/nope").status, 404);
}

TEST(MonitorRoutingTest, TracezReflectsLastPublishedProfile) {
  OperationProfile profile;
  profile.operation = "populate";
  profile.elapsed_nanos = 1234;
  SpanRecord span;
  span.id = 1;
  span.name = "populate";
  span.duration_nanos = 1000;
  profile.spans.push_back(span);
  profile.counters.push_back({"gea.populate.rows_materialized", 42});
  PublishProfile(profile);

  internal::HttpResponse tracez = internal::HandlePath("/tracez");
  EXPECT_EQ(tracez.status, 200);
  std::string error;
  EXPECT_TRUE(internal::ValidateJson(tracez.body, &error)) << error;
  EXPECT_NE(tracez.body.find("\"operation\":\"populate\""),
            std::string::npos);
  EXPECT_NE(tracez.body.find("\"gea.populate.rows_materialized\":42"),
            std::string::npos);

  std::optional<OperationProfile> last = LastPublishedProfile();
  ASSERT_TRUE(last.has_value());
  EXPECT_EQ(last->operation, "populate");
}

TEST(MonitorRoutingTest, ParseRequestQuery) {
  EXPECT_EQ(internal::ParseRequestQuery("GET /tracez?n=5 HTTP/1.1\r\n"),
            "n=5");
  EXPECT_EQ(internal::ParseRequestQuery(
                "GET /tracez?format=chrome&n=2 HTTP/1.1\r\n"),
            "format=chrome&n=2");
  EXPECT_EQ(internal::ParseRequestQuery("GET /tracez HTTP/1.1\r\n"), "");
  EXPECT_EQ(internal::ParseRequestQuery("garbage"), "");
}

TEST(MonitorRoutingTest, TracezRingServesLastN) {
  for (int i = 0; i < 3; ++i) {
    OperationProfile profile;
    profile.operation = "op" + std::to_string(i);
    profile.elapsed_nanos = 100 + i;
    PublishProfile(profile);
  }

  internal::HttpResponse two = internal::HandlePath("/tracez", "n=2");
  EXPECT_EQ(two.status, 200);
  std::string error;
  ASSERT_TRUE(internal::ValidateJson(two.body, &error)) << error;
  // Newest first, and op0 is beyond the requested window.
  const size_t newest = two.body.find("\"operation\":\"op2\"");
  const size_t older = two.body.find("\"operation\":\"op1\"");
  ASSERT_NE(newest, std::string::npos);
  ASSERT_NE(older, std::string::npos);
  EXPECT_LT(newest, older);
  EXPECT_EQ(two.body.find("\"operation\":\"op0\""), std::string::npos);

  // RecentProfiles mirrors the payload.
  std::vector<OperationProfile> recent = RecentProfiles(2);
  ASSERT_EQ(recent.size(), 2u);
  EXPECT_EQ(recent[0].operation, "op2");
  EXPECT_EQ(recent[1].operation, "op1");

  // A bad n is a 400, not a crash or a silent default.
  EXPECT_EQ(internal::HandlePath("/tracez", "n=bogus").status, 400);
}

TEST(MonitorRoutingTest, TracezChromeFormatRendersRequestRing) {
  RequestTraceRing& ring = RequestTraceRing::Global();
  ring.Clear();
  RequestTraceRecord record;
  record.trace_id = 7;
  record.request_id = 1;
  record.op = "ping";
  record.start_nanos = 1000;
  record.stages[RequestStage::kDecode] = 10;
  record.stages[RequestStage::kExecute] = 50;
  record.reader_tid = 1;
  record.worker_tid = 2;
  ring.Publish(std::move(record));

  internal::HttpResponse chrome =
      internal::HandlePath("/tracez", "format=chrome");
  EXPECT_EQ(chrome.status, 200);
  EXPECT_EQ(chrome.content_type, "application/json");
  std::string error;
  ASSERT_TRUE(internal::ValidateJson(chrome.body, &error)) << error;
  EXPECT_NE(chrome.body.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(chrome.body.find("\"name\":\"ping\""), std::string::npos);
  ring.Clear();
}

// ---------- End-to-end over a real socket ----------

/// Minimal blocking HTTP GET against 127.0.0.1:port.
std::string HttpGet(int port, const std::string& path) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    close(fd);
    return "";
  }
  const std::string request =
      "GET " + path + " HTTP/1.1\r\nHost: localhost\r\n\r\n";
  size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n =
        send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
  std::string response;
  char buf[2048];
  for (;;) {  // server sends Connection: close, so read to EOF
    const ssize_t n = recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    response.append(buf, static_cast<size_t>(n));
  }
  close(fd);
  return response;
}

std::string BodyOf(const std::string& response) {
  const size_t split = response.find("\r\n\r\n");
  return split == std::string::npos ? "" : response.substr(split + 4);
}

TEST(MonitorServerTest, EndToEndOnEphemeralPort) {
  ScopedMetricsEnable metrics(true);
  MetricsRegistry::Global().GetCounter("gea.test.monitor_e2e").Add(3);

  MonitorServer server;
  ASSERT_TRUE(server.Start(0).ok());
  ASSERT_TRUE(server.Running());
  const int port = server.Port();
  ASSERT_GT(port, 0);

  // Starting again while running is refused.
  EXPECT_TRUE(server.Start(0).IsFailedPrecondition());

  const std::string health = HttpGet(port, "/healthz");
  EXPECT_NE(health.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_EQ(BodyOf(health), "ok\n");

  const std::string prom = HttpGet(port, "/metrics");
  EXPECT_NE(prom.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(prom.find("Content-Type: text/plain; version=0.0.4"),
            std::string::npos);
  const std::string prom_body = BodyOf(prom);
  EXPECT_NE(prom_body.find("# TYPE gea_test_monitor_e2e counter"),
            std::string::npos);
  EXPECT_NE(prom_body.find("gea_test_monitor_e2e 3"), std::string::npos);

  std::string error;
  const std::string statz = BodyOf(HttpGet(port, "/statz"));
  EXPECT_TRUE(internal::ValidateJson(statz, &error)) << error;
  const std::string tracez = BodyOf(HttpGet(port, "/tracez"));
  EXPECT_TRUE(internal::ValidateJson(tracez, &error)) << error;

  EXPECT_NE(HttpGet(port, "/nope").find("HTTP/1.1 404"), std::string::npos);

  server.Stop();
  EXPECT_FALSE(server.Running());
  EXPECT_EQ(server.Port(), 0);
  // Stop is idempotent, and the server can start again afterwards.
  server.Stop();
  ASSERT_TRUE(server.Start(0).ok());
  EXPECT_NE(HttpGet(server.Port(), "/healthz").find("200 OK"),
            std::string::npos);
  server.Stop();
}

TEST(MonitorServerTest, StartRejectsBadPort) {
  MonitorServer server;
  EXPECT_TRUE(server.Start(-1).IsInvalidArgument());
  EXPECT_TRUE(server.Start(70000).IsInvalidArgument());
  EXPECT_FALSE(server.Running());
}

TEST(MonitorServerTest, StartMonitorFromEnvIsNoOpWithoutPort) {
  // The test environment does not set GEA_MONITOR_PORT, so this must be
  // an OK no-op and must not start the global server.
  ASSERT_TRUE(StartMonitorFromEnv().ok());
  EXPECT_FALSE(GlobalMonitor().Running());
}

}  // namespace
}  // namespace gea::obs
