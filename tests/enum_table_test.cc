// Dedicated tests for the ENUM table — the extensional world's cluster
// representation (Section 3.1.1) and its manipulations (Section 3.2.4).

#include <gtest/gtest.h>

#include "core/enum_table.h"
#include "sage/dataset.h"

namespace gea::core {
namespace {

using sage::TagId;

sage::SageDataSet Mini() {
  sage::SageDataSet data;
  auto lib = [](int id, sage::TissueType tissue, sage::NeoplasticState state,
                sage::TissueSource source,
                std::vector<std::pair<TagId, double>> counts) {
    sage::SageLibrary l(id, "L" + std::to_string(id), tissue, state, source);
    for (const auto& [tag, count] : counts) l.SetCount(tag, count);
    return l;
  };
  data.AddLibrary(lib(1, sage::TissueType::kBrain,
                      sage::NeoplasticState::kCancer,
                      sage::TissueSource::kBulkTissue,
                      {{10, 1.0}, {20, 2.0}}));
  data.AddLibrary(lib(2, sage::TissueType::kBrain,
                      sage::NeoplasticState::kNormal,
                      sage::TissueSource::kCellLine, {{20, 3.0}, {30, 4.0}}));
  data.AddLibrary(lib(3, sage::TissueType::kBreast,
                      sage::NeoplasticState::kCancer,
                      sage::TissueSource::kBulkTissue, {{10, 5.0}}));
  return data;
}

TEST(EnumTableTest, FromDataSetLayout) {
  EnumTable e = EnumTable::FromDataSet("E", Mini());
  EXPECT_EQ(e.NumLibraries(), 3u);
  EXPECT_EQ(e.NumTags(), 3u);
  EXPECT_EQ(e.tags(), (std::vector<TagId>{10, 20, 30}));
  // Library rows hold the per-tag values in tag order; absent tags are 0.
  EXPECT_DOUBLE_EQ(e.ValueAt(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(e.ValueAt(0, 2), 0.0);
  EXPECT_DOUBLE_EQ(e.ValueAt(1, 2), 4.0);
  std::span<const double> row = e.LibraryRow(2);
  EXPECT_EQ(row.size(), 3u);
  EXPECT_DOUBLE_EQ(row[0], 5.0);
}

TEST(EnumTableTest, Lookups) {
  EnumTable e = EnumTable::FromDataSet("E", Mini());
  EXPECT_EQ(*e.FindTagColumn(20), 1u);
  EXPECT_FALSE(e.FindTagColumn(99).has_value());
  EXPECT_EQ(*e.FindLibraryRow(3), 2u);
  EXPECT_FALSE(e.FindLibraryRow(99).has_value());
}

TEST(EnumTableTest, FilterLibrariesByPredicate) {
  EnumTable e = EnumTable::FromDataSet("E", Mini());
  EnumTable cancers = e.FilterLibraries(
      "cancers", [](const sage::LibraryMeta& lib) {
        return lib.state == sage::NeoplasticState::kCancer;
      });
  EXPECT_EQ(cancers.NumLibraries(), 2u);
  EXPECT_EQ(cancers.name(), "cancers");
  // Values follow their libraries.
  EXPECT_DOUBLE_EQ(cancers.ValueAt(1, 0), 5.0);
  // Tag columns unchanged.
  EXPECT_EQ(cancers.tags(), e.tags());
}

TEST(EnumTableTest, MinusLibraries) {
  EnumTable e = EnumTable::FromDataSet("E", Mini());
  EnumTable brain_cancer = e.SelectLibraries("bc", {1});
  EnumTable rest = e.MinusLibraries("rest", brain_cancer);
  EXPECT_EQ(rest.NumLibraries(), 2u);
  EXPECT_FALSE(rest.FindLibraryRow(1).has_value());
}

TEST(EnumTableTest, SelectLibrariesKeepsTableOrder) {
  EnumTable e = EnumTable::FromDataSet("E", Mini());
  EnumTable picked = e.SelectLibraries("p", {3, 1});
  ASSERT_EQ(picked.NumLibraries(), 2u);
  // Rows stay in the base table's order regardless of id order.
  EXPECT_EQ(picked.library(0).id, 1);
  EXPECT_EQ(picked.library(1).id, 3);
}

TEST(EnumTableTest, RestrictTagsZeroFillsMissing) {
  EnumTable e = EnumTable::FromDataSet("E", Mini());
  Result<EnumTable> r = e.RestrictTags("r", {10, 25, 30});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->tags(), (std::vector<TagId>{10, 25, 30}));
  for (size_t row = 0; row < r->NumLibraries(); ++row) {
    EXPECT_DOUBLE_EQ(r->ValueAt(row, 1), 0.0);  // tag 25 exists nowhere
  }
  EXPECT_DOUBLE_EQ(r->ValueAt(1, 2), 4.0);
}

TEST(EnumTableTest, RestrictTagsRejectsUnsortedOrDuplicate) {
  EnumTable e = EnumTable::FromDataSet("E", Mini());
  EXPECT_FALSE(e.RestrictTags("r", {30, 10}).ok());
  EXPECT_FALSE(e.RestrictTags("r", {10, 10}).ok());
}

TEST(EnumTableTest, FromRowsValidation) {
  std::vector<sage::LibraryMeta> libs = {
      {1, "L1", sage::TissueType::kBrain, sage::NeoplasticState::kNormal,
       sage::TissueSource::kBulkTissue}};
  EXPECT_TRUE(EnumTable::FromRows("e", libs, {1, 2}, {0.5, 1.5}).ok());
  // Wrong buffer size.
  EXPECT_FALSE(EnumTable::FromRows("e", libs, {1, 2}, {0.5}).ok());
  // Unsorted / duplicate tags.
  EXPECT_FALSE(EnumTable::FromRows("e", libs, {2, 1}, {0.5, 1.5}).ok());
  EXPECT_FALSE(EnumTable::FromRows("e", libs, {1, 1}, {0.5, 1.5}).ok());
}

TEST(EnumTableTest, ToRelTableIsRotated) {
  EnumTable e = EnumTable::FromDataSet("E", Mini());
  rel::Table r = e.ToRelTable();
  // Physical layout (Section 4.6.1): rows = tags, columns = libraries.
  EXPECT_EQ(r.NumRows(), e.NumTags());
  EXPECT_EQ(r.schema().NumColumns(), 2 + e.NumLibraries());
  EXPECT_EQ(r.Get(0, "TagNo")->AsInt(), 10);
  EXPECT_DOUBLE_EQ(r.Get(0, "L1")->AsDouble(), 1.0);
  EXPECT_DOUBLE_EQ(r.Get(2, "L2")->AsDouble(), 4.0);
}

TEST(EnumTableTest, EmptyDataSet) {
  EnumTable e = EnumTable::FromDataSet("E", sage::SageDataSet());
  EXPECT_EQ(e.NumLibraries(), 0u);
  EXPECT_EQ(e.NumTags(), 0u);
  EnumTable filtered =
      e.FilterLibraries("f", [](const sage::LibraryMeta&) { return true; });
  EXPECT_EQ(filtered.NumLibraries(), 0u);
}

}  // namespace
}  // namespace gea::core
