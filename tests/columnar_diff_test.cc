// Differential battery for the columnar kernels (same pattern as the
// PR-1 serial/parallel harness): run aggregate/populate/diff/top-gap and
// the SQL SELECT path through both a row-at-a-time reference
// implementation (written out longhand here, against the logical API
// only) and the batch kernels, over randomized seeded datasets of
// varying tag cardinality and null density, at 1/2/8 threads — and
// require *bit-identical* tables every time. The comparisons go through
// the binary row codec, which serializes doubles by bit pattern, so a
// single ULP of drift anywhere fails the battery.
//
// Labelled "parallel": the 2- and 8-thread legs exercise ParallelFor
// with real pool helpers and are TSan targets.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <optional>
#include <random>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "core/enum_table.h"
#include "core/gap.h"
#include "core/gap_ops.h"
#include "core/operators.h"
#include "core/populate.h"
#include "core/sumy.h"
#include "rel/catalog.h"
#include "rel/sql.h"
#include "rel/table.h"
#include "store/format.h"

namespace gea::core {
namespace {

// Real pool helpers even on single-core hosts, so the multi-thread legs
// genuinely interleave (and TSan sees the handoffs).
ForceParallelHelpersScope g_force_helpers;

const size_t kThreadCounts[] = {1, 2, 8};

uint64_t Bits(double v) {
  uint64_t b = 0;
  std::memcpy(&b, &v, sizeof(b));
  return b;
}

// Bit-exact table equality via the row codec (doubles encode as their
// bit patterns, so this is exact, not tolerance-based).
void ExpectBitIdentical(const rel::Table& a, const rel::Table& b,
                        const char* what) {
  EXPECT_EQ(store::EncodeTable(a), store::EncodeTable(b)) << what;
}

// ---- Seeded dataset generation ----

struct DataConfig {
  uint32_t seed = 1;
  size_t num_libs = 8;
  size_t num_tags = 100;
  // Fraction (percent) of cells snapped to a small integer grid: high
  // values create ties, overlapping µ±σ bands and therefore null gaps.
  int grid_percent = 50;
};

EnumTable MakeEnum(const DataConfig& config, const std::string& name) {
  std::mt19937 rng(config.seed);
  std::vector<sage::LibraryMeta> libs(config.num_libs);
  for (size_t i = 0; i < libs.size(); ++i) {
    libs[i].id = static_cast<int>(i + 1);
    libs[i].name = name + "_L" + std::to_string(i + 1);
    libs[i].state = (rng() % 2) ? sage::NeoplasticState::kCancer
                                : sage::NeoplasticState::kNormal;
  }
  std::vector<sage::TagId> tags(config.num_tags);
  sage::TagId next = 0;
  for (size_t t = 0; t < tags.size(); ++t) {
    next += 1 + rng() % 5;  // ascending, gappy tag universe
    tags[t] = next;
  }
  std::vector<double> values(config.num_libs * config.num_tags);
  std::uniform_real_distribution<double> dist(-50.0, 50.0);
  for (double& v : values) {
    v = dist(rng);
    if (static_cast<int>(rng() % 100) < config.grid_percent) {
      v = std::floor(v / 10.0) * 10.0;  // snap: ties and overlaps
    }
  }
  Result<EnumTable> e = EnumTable::FromRows(name, std::move(libs),
                                            std::move(tags),
                                            std::move(values));
  EXPECT_TRUE(e.ok());
  return *e;
}

// ---- Row-at-a-time references (logical API only, no kernels) ----

// Same arithmetic contract as the kernel documents: shifted moments with
// the column's first row as shift, reciprocal multiply. One column at a
// time, rows ascending.
SumyTable ReferenceAggregate(const EnumTable& input,
                             const std::string& out_name) {
  std::vector<SumyEntry> entries;
  const double n = static_cast<double>(input.NumLibraries());
  for (size_t c = 0; c < input.NumTags(); ++c) {
    const double shift = input.ValueAt(0, c);
    double lo = shift, hi = shift, sum = 0.0, sumsq = 0.0;
    for (size_t row = 0; row < input.NumLibraries(); ++row) {
      const double v = input.ValueAt(row, c);
      lo = std::min(lo, v);
      hi = std::max(hi, v);
      const double d = v - shift;
      sum += d;
      sumsq += d * d;
    }
    const double inv_n = 1.0 / n;
    const double mean_d = sum * inv_n;
    const double var = sumsq * inv_n - mean_d * mean_d;
    entries.push_back(SumyEntry(input.tags()[c], lo, hi, shift + mean_d,
                                std::sqrt(std::max(0.0, var))));
  }
  return SumyTable::FromSortedEntries(out_name, std::move(entries));
}

GapTable ReferenceDiff(const SumyTable& sumy1, const SumyTable& sumy2,
                       const std::string& out_name) {
  std::vector<GapEntry> rows;
  for (const SumyEntry& ea : sumy1.entries()) {
    std::optional<SumyEntry> eb = sumy2.Find(ea.tag);
    if (!eb.has_value()) continue;
    const bool first_is_higher = ea.mean >= eb->mean;
    const SumyEntry& hi = first_is_higher ? ea : *eb;
    const SumyEntry& lo = first_is_higher ? *eb : ea;
    const double magnitude = (hi.mean - hi.stddev) - (lo.mean + lo.stddev);
    GapEntry row;
    row.tag = ea.tag;
    if (magnitude <= 0.0) {
      row.gaps.push_back(std::nullopt);
    } else {
      row.gaps.push_back(first_is_higher ? magnitude : -magnitude);
    }
    rows.push_back(std::move(row));
  }
  Result<GapTable> table = GapTable::Create(out_name, {"Gap"},
                                            std::move(rows));
  EXPECT_TRUE(table.ok());
  return *table;
}

EnumTable ReferencePopulate(const SumyTable& sumy, const EnumTable& base,
                            const std::string& out_name) {
  // Sequential scan: a library qualifies when its level satisfies every
  // tag-range condition (absent tags hold level 0).
  std::vector<sage::LibraryMeta> libs;
  std::vector<double> values;
  for (size_t row = 0; row < base.NumLibraries(); ++row) {
    bool ok = true;
    for (const SumyEntry& e : sumy.entries()) {
      auto it = std::lower_bound(base.tags().begin(), base.tags().end(),
                                 e.tag);
      const double v = (it != base.tags().end() && *it == e.tag)
                           ? base.ValueAt(row, it - base.tags().begin())
                           : 0.0;
      if (v < e.min || v > e.max) {
        ok = false;
        break;
      }
    }
    if (!ok) continue;
    libs.push_back(base.library(row));
    for (const SumyEntry& e : sumy.entries()) {
      auto it = std::lower_bound(base.tags().begin(), base.tags().end(),
                                 e.tag);
      values.push_back((it != base.tags().end() && *it == e.tag)
                           ? base.ValueAt(row, it - base.tags().begin())
                           : 0.0);
    }
  }
  std::vector<sage::TagId> tags;
  for (const SumyEntry& e : sumy.entries()) tags.push_back(e.tag);
  Result<EnumTable> out = EnumTable::FromRows(out_name, std::move(libs),
                                              std::move(tags),
                                              std::move(values));
  EXPECT_TRUE(out.ok());
  return *out;
}

GapTable ReferenceTopGap(const GapTable& input, size_t x, TopGapMode mode,
                         const std::string& out_name) {
  // The pre-columnar implementation: materialize rows, filter non-null,
  // stable-sort descending by the mode key, truncate, rebuild.
  std::vector<GapEntry> rows;
  for (const GapEntry& e : input.entries()) {
    if (e.gaps[0].has_value()) rows.push_back(e);
  }
  auto key = [mode](const GapEntry& e) {
    const double g = *e.gaps[0];
    switch (mode) {
      case TopGapMode::kLargestMagnitude:
        return std::abs(g);
      case TopGapMode::kHighest:
        return g;
      case TopGapMode::kLowest:
        return -g;
    }
    return g;
  };
  std::stable_sort(rows.begin(), rows.end(),
                   [&](const GapEntry& a, const GapEntry& b) {
                     return key(a) > key(b);
                   });
  if (rows.size() > x) rows.resize(x);
  Result<GapTable> out = GapTable::Create(out_name, input.gap_columns(),
                                          std::move(rows));
  EXPECT_TRUE(out.ok());
  return *out;
}

void ExpectEnumBitIdentical(const EnumTable& a, const EnumTable& b) {
  ASSERT_EQ(a.NumLibraries(), b.NumLibraries());
  ASSERT_EQ(a.NumTags(), b.NumTags());
  EXPECT_EQ(a.tags(), b.tags());
  for (size_t row = 0; row < a.NumLibraries(); ++row) {
    EXPECT_EQ(a.library(row).id, b.library(row).id);
    EXPECT_EQ(a.library(row).name, b.library(row).name);
  }
  for (size_t i = 0; i < a.values().size(); ++i) {
    ASSERT_EQ(Bits(a.values()[i]), Bits(b.values()[i])) << "cell " << i;
  }
}

// ---- The battery ----

const DataConfig kConfigs[] = {
    // seed, libs, tags, grid% (higher grid% -> more ties -> more nulls)
    {101, 1, 3, 0},       // degenerate: single library, tiny tag set
    {202, 7, 64, 30},     //
    {303, 24, 257, 60},   // stripe (32) misaligned cardinality
    {404, 16, 1000, 85},  // null-heavy
};

TEST(ColumnarBatteryTest, AggregateMatchesRowReferenceAtEveryThreadCount) {
  for (const DataConfig& config : kConfigs) {
    EnumTable e = MakeEnum(config, "E" + std::to_string(config.seed));
    const SumyTable expected = ReferenceAggregate(e, "S");
    for (size_t threads : kThreadCounts) {
      ThreadCountOverride scope(threads);
      Result<SumyTable> got = Aggregate(e, "S");
      ASSERT_TRUE(got.ok());
      ExpectBitIdentical(expected.ToRelTable(), got->ToRelTable(),
                         "aggregate");
    }
  }
}

TEST(ColumnarBatteryTest, DiffMatchesRowReferenceAtEveryThreadCount) {
  for (const DataConfig& config : kConfigs) {
    if (config.num_libs < 2) continue;  // need two clusters
    EnumTable e = MakeEnum(config, "E");
    EnumTable c1 = e.FilterLibraries("C1", [](const sage::LibraryMeta& l) {
      return l.state == sage::NeoplasticState::kCancer;
    });
    EnumTable c2 = e.FilterLibraries("C2", [](const sage::LibraryMeta& l) {
      return l.state == sage::NeoplasticState::kNormal;
    });
    if (c1.NumLibraries() == 0 || c2.NumLibraries() == 0) continue;
    Result<SumyTable> s1 = Aggregate(c1, "S1");
    Result<SumyTable> s2 = Aggregate(c2, "S2");
    ASSERT_TRUE(s1.ok() && s2.ok());
    const GapTable expected = ReferenceDiff(*s1, *s2, "G");
    for (size_t threads : kThreadCounts) {
      ThreadCountOverride scope(threads);
      Result<GapTable> got = Diff(*s1, *s2, "G");
      ASSERT_TRUE(got.ok());
      ExpectBitIdentical(expected.ToRelTable(), got->ToRelTable(), "diff");
    }
  }
}

TEST(ColumnarBatteryTest, DiffMergePathMatchesReferenceOnDisjointTagSets) {
  // Partially overlapping tag universes force the merge fallback (the
  // aligned fast path only fires on identical tag vectors).
  EnumTable e = MakeEnum({707, 8, 200, 40}, "E");
  std::vector<sage::TagId> odd_tags, third_tags;
  for (size_t i = 0; i < e.NumTags(); ++i) {
    if (i % 2 == 1) odd_tags.push_back(e.tags()[i]);
    if (i % 3 == 0) third_tags.push_back(e.tags()[i]);
  }
  Result<EnumTable> e_odd = e.RestrictTags("EO", odd_tags);
  Result<EnumTable> e_third = e.RestrictTags("ET", third_tags);
  ASSERT_TRUE(e_odd.ok() && e_third.ok());
  Result<SumyTable> s1 = Aggregate(*e_odd, "S1");
  Result<SumyTable> s2 = Aggregate(*e_third, "S2");
  ASSERT_TRUE(s1.ok() && s2.ok());
  const GapTable expected = ReferenceDiff(*s1, *s2, "G");
  EXPECT_GT(expected.NumTags(), 0u);
  EXPECT_LT(expected.NumTags(), s1->NumTags());
  for (size_t threads : kThreadCounts) {
    ThreadCountOverride scope(threads);
    Result<GapTable> got = Diff(*s1, *s2, "G");
    ASSERT_TRUE(got.ok());
    ExpectBitIdentical(expected.ToRelTable(), got->ToRelTable(),
                       "diff merge");
  }
}

TEST(ColumnarBatteryTest, PopulateMatchesScanReferenceWithAndWithoutIndexes) {
  for (const DataConfig& config : kConfigs) {
    if (config.num_libs < 4) continue;
    EnumTable base = MakeEnum(config, "B");
    // Aggregate a half-cluster: its ranges re-select a superset of the
    // half under populate.
    EnumTable half = base.FilterLibraries(
        "H", [](const sage::LibraryMeta& l) { return l.id % 2 == 0; });
    Result<SumyTable> sumy = Aggregate(half, "S");
    ASSERT_TRUE(sumy.ok());
    const EnumTable expected = ReferencePopulate(*sumy, base, "P");
    EXPECT_GE(expected.NumLibraries(), half.NumLibraries());
    for (size_t threads : kThreadCounts) {
      ThreadCountOverride scope(threads);
      PopulateEngine engine(base);
      Result<EnumTable> scan = engine.Populate(*sumy, "P");
      ASSERT_TRUE(scan.ok());
      ExpectEnumBitIdentical(expected, *scan);
      // Indexed plan: same answer through a different physical path.
      ASSERT_TRUE(engine
                      .BuildIndexes({base.tags()[0],
                                     base.tags()[base.NumTags() / 2]})
                      .ok());
      Result<EnumTable> indexed = engine.Populate(*sumy, "P");
      ASSERT_TRUE(indexed.ok());
      ExpectEnumBitIdentical(expected, *indexed);
    }
  }
}

TEST(ColumnarBatteryTest, TopGapMatchesRowReferenceInEveryMode) {
  EnumTable e = MakeEnum({505, 20, 300, 70}, "E");
  EnumTable c1 = e.FilterLibraries(
      "C1", [](const sage::LibraryMeta& l) { return l.id <= 10; });
  EnumTable c2 = e.FilterLibraries(
      "C2", [](const sage::LibraryMeta& l) { return l.id > 10; });
  Result<SumyTable> s1 = Aggregate(c1, "S1");
  Result<SumyTable> s2 = Aggregate(c2, "S2");
  ASSERT_TRUE(s1.ok() && s2.ok());
  Result<GapTable> gap = Diff(*s1, *s2, "G");
  ASSERT_TRUE(gap.ok());
  for (TopGapMode mode : {TopGapMode::kLargestMagnitude, TopGapMode::kHighest,
                          TopGapMode::kLowest}) {
    for (size_t x : {size_t{1}, size_t{10}, size_t{100000}}) {
      const GapTable expected = ReferenceTopGap(*gap, x, mode, "T");
      for (size_t threads : kThreadCounts) {
        ThreadCountOverride scope(threads);
        Result<GapTable> got = TopGap(*gap, x, mode, "T");
        ASSERT_TRUE(got.ok());
        ExpectBitIdentical(expected.ToRelTable(), got->ToRelTable(),
                           TopGapModeName(mode));
      }
    }
  }
}

// ---- SQL SELECT through the columnar scan/filter path ----

// Reference evaluation: filter with a plain row loop over materialized
// Values, project, sort by TagNo (unique, so the order is total).
rel::Table ReferenceSelect(
    const rel::Table& source, const std::vector<std::string>& columns,
    const std::function<bool(const rel::Table&, size_t)>& pred,
    bool descending) {
  std::vector<rel::ColumnDef> defs;
  for (const std::string& name : columns) {
    defs.push_back(source.schema().column(*source.schema().FindColumn(name)));
  }
  std::vector<size_t> rows;
  for (size_t r = 0; r < source.NumRows(); ++r) {
    if (pred(source, r)) rows.push_back(r);
  }
  std::sort(rows.begin(), rows.end(), [&](size_t a, size_t b) {
    const int64_t ta = source.Get(a, "TagNo")->AsInt();
    const int64_t tb = source.Get(b, "TagNo")->AsInt();
    return descending ? ta > tb : ta < tb;
  });
  rel::Table out("query", rel::Schema(std::move(defs)));
  for (size_t r : rows) {
    rel::Row row;
    for (const std::string& name : columns) row.push_back(*source.Get(r, name));
    out.AppendRowUnchecked(std::move(row));
  }
  return out;
}

TEST(ColumnarBatteryTest, SqlSelectMatchesRowReferenceAtEveryThreadCount) {
  for (const DataConfig& config : kConfigs) {
    if (config.num_libs < 2) continue;
    EnumTable e = MakeEnum(config, "E");
    EnumTable c1 = e.FilterLibraries(
        "C1", [](const sage::LibraryMeta& l) { return l.id % 2 == 0; });
    EnumTable c2 = e.FilterLibraries(
        "C2", [](const sage::LibraryMeta& l) { return l.id % 2 == 1; });
    Result<SumyTable> s1 = Aggregate(c1, "S1");
    Result<SumyTable> s2 = Aggregate(c2, "S2");
    ASSERT_TRUE(s1.ok() && s2.ok());
    Result<GapTable> gap = Diff(*s1, *s2, "G");
    ASSERT_TRUE(gap.ok());
    rel::Table g = gap->ToRelTable();  // TagName, TagNo, Gap (with NULLs)

    rel::Catalog catalog;
    ASSERT_TRUE(catalog.CreateTable(g).ok());

    struct Query {
      const char* sql;
      std::vector<std::string> columns;
      std::function<bool(const rel::Table&, size_t)> pred;
      bool descending;
    };
    auto gap_at = [](const rel::Table& t, size_t r) {
      return t.Get(r, "Gap");
    };
    const Query queries[] = {
        {"SELECT * FROM G WHERE Gap > 0 AND TagNo < 400 ORDER BY TagNo",
         {"TagName", "TagNo", "Gap"},
         [&](const rel::Table& t, size_t r) {
           auto gv = gap_at(t, r);
           return gv->type() == rel::ValueType::kDouble &&
                  gv->AsDouble() > 0 && t.Get(r, "TagNo")->AsInt() < 400;
         },
         false},
        {"SELECT TagNo, Gap FROM G WHERE Gap < 0 OR TagNo IN (3, 9, 27, 81, "
         "243) ORDER BY TagNo DESC",
         {"TagNo", "Gap"},
         [&](const rel::Table& t, size_t r) {
           auto gv = gap_at(t, r);
           const int64_t tag = t.Get(r, "TagNo")->AsInt();
           return (gv->type() == rel::ValueType::kDouble &&
                   gv->AsDouble() < 0) ||
                  tag == 3 || tag == 9 || tag == 27 || tag == 81 ||
                  tag == 243;
         },
         true},
        {"SELECT TagName, TagNo FROM G WHERE Gap IS NULL AND (TagNo < 100 OR "
         "TagNo > 600) ORDER BY TagNo",
         {"TagName", "TagNo"},
         [&](const rel::Table& t, size_t r) {
           const int64_t tag = t.Get(r, "TagNo")->AsInt();
           return gap_at(t, r)->is_null() && (tag < 100 || tag > 600);
         },
         false},
    };
    for (const Query& q : queries) {
      const rel::Table expected =
          ReferenceSelect(g, q.columns, q.pred, q.descending);
      for (size_t threads : kThreadCounts) {
        ThreadCountOverride scope(threads);
        Result<rel::Table> got = rel::ExecuteQuery(catalog, q.sql);
        ASSERT_TRUE(got.ok()) << q.sql << ": " << got.status().ToString();
        ExpectBitIdentical(expected, *got, q.sql);
      }
    }
  }
}

}  // namespace
}  // namespace gea::core
