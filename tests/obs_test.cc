// Tests for the observability layer (DESIGN.md, "Observability"): the
// metrics registry, scoped trace spans, the exporters and the EXPLAIN
// capture. Labelled "parallel": the registry hammer and the trace
// propagation tests exercise the pool and run under TSan.

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "core/enum_table.h"
#include "core/gap.h"
#include "core/operators.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace gea::obs {
namespace {

// The concurrency hammer below is a TSan target: force real pool
// helpers even on single-core hosts so threads actually interleave.
ForceParallelHelpersScope g_force_helpers;

// ---- Enablement gates ----

TEST(MetricsGateTest, DisabledByDefaultAndOverrideRestores) {
  // No GEA_METRICS in the test environment, no override: off.
  EXPECT_FALSE(MetricsEnabled());
  {
    ScopedMetricsEnable on(true);
    EXPECT_TRUE(MetricsEnabled());
    {
      ScopedMetricsEnable off(false);
      EXPECT_FALSE(MetricsEnabled());
    }
    EXPECT_TRUE(MetricsEnabled());
  }
  EXPECT_FALSE(MetricsEnabled());
}

TEST(MetricsGateTest, ParseBoolFlag) {
  EXPECT_TRUE(internal::ParseBoolFlag("1"));
  EXPECT_TRUE(internal::ParseBoolFlag("true"));
  EXPECT_TRUE(internal::ParseBoolFlag("on"));
  EXPECT_TRUE(internal::ParseBoolFlag("yes"));
  EXPECT_FALSE(internal::ParseBoolFlag(nullptr));
  EXPECT_FALSE(internal::ParseBoolFlag(""));
  EXPECT_FALSE(internal::ParseBoolFlag("0"));
  EXPECT_FALSE(internal::ParseBoolFlag("TRUE"));  // case sensitive
  EXPECT_FALSE(internal::ParseBoolFlag("2"));
}

TEST(MetricsGateTest, DisabledRecordingIsANoOp) {
  ScopedMetricsEnable off(false);
  Counter c;
  c.Add(7);
  EXPECT_EQ(c.Value(), 0u);
  Gauge g;
  g.Set(5);
  g.Add(3);
  EXPECT_EQ(g.Value(), 0);
  Histogram h;
  h.Record(100);
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_EQ(h.Sum(), 0u);
}

// ---- Registry and metric objects ----

TEST(MetricsRegistryTest, SameNameReturnsSameObject) {
  MetricsRegistry registry;
  Counter& a = registry.GetCounter("x");
  Counter& b = registry.GetCounter("x");
  EXPECT_EQ(&a, &b);
  EXPECT_NE(&a, &registry.GetCounter("y"));
}

TEST(MetricsRegistryTest, SnapshotIsSortedByName) {
  ScopedMetricsEnable on(true);
  MetricsRegistry registry;
  registry.GetCounter("zeta").Add(1);
  registry.GetCounter("alpha").Add(2);
  registry.GetGauge("mid").Set(-4);
  registry.GetHistogram("lat").Record(1000);
  MetricsSnapshot snap = registry.Snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].name, "alpha");
  EXPECT_EQ(snap.counters[0].value, 2u);
  EXPECT_EQ(snap.counters[1].name, "zeta");
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges[0].value, -4);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].count, 1u);
  EXPECT_EQ(snap.histograms[0].sum, 1000u);
}

TEST(MetricsRegistryTest, ResetForTestKeepsRegistrations) {
  ScopedMetricsEnable on(true);
  MetricsRegistry registry;
  Counter& c = registry.GetCounter("c");
  c.Add(9);
  registry.ResetForTest();
  EXPECT_EQ(c.Value(), 0u);   // cached reference still valid, value zeroed
  c.Add(1);
  EXPECT_EQ(c.Value(), 1u);
}

TEST(HistogramTest, BucketIndexAndBounds) {
  EXPECT_EQ(Histogram::BucketIndex(0), 0u);
  EXPECT_EQ(Histogram::BucketIndex(1), 1u);
  EXPECT_EQ(Histogram::BucketIndex(2), 2u);
  EXPECT_EQ(Histogram::BucketIndex(3), 2u);
  EXPECT_EQ(Histogram::BucketIndex(4), 3u);
  EXPECT_EQ(HistogramBucketUpperBound(0), 0u);
  EXPECT_EQ(HistogramBucketUpperBound(1), 1u);
  EXPECT_EQ(HistogramBucketUpperBound(2), 3u);
  EXPECT_EQ(HistogramBucketUpperBound(3), 7u);
  // Everything past the last bucket folds into it.
  EXPECT_EQ(Histogram::BucketIndex(~0ull), kHistogramBuckets - 1);
}

TEST(HistogramTest, BucketBoundariesPinned) {
  // Pin the 48-bucket power-of-two mapping exactly: bucket i (for
  // 1 <= i < 47) covers (2^(i-1), 2^i - 1]... meaning a value v lands in
  // bucket bit_width(v), capped at 47.
  for (size_t i = 1; i + 1 < kHistogramBuckets; ++i) {
    const uint64_t power = 1ull << i;
    // 2^i is the smallest value of bucket i+1; 2^i - 1 the largest of i.
    EXPECT_EQ(Histogram::BucketIndex(power), i + 1) << "value 2^" << i;
    EXPECT_EQ(Histogram::BucketIndex(power - 1), i) << "value 2^" << i
                                                    << " - 1";
  }
  // The extremes.
  EXPECT_EQ(Histogram::BucketIndex(0), 0u);
  EXPECT_EQ(Histogram::BucketIndex(1), 1u);
  EXPECT_EQ(Histogram::BucketIndex(1ull << 47), kHistogramBuckets - 1);
  EXPECT_EQ(Histogram::BucketIndex(~0ull), kHistogramBuckets - 1);

  // Upper bounds: 0 for the zero bucket, 2^i - 1 in the middle, and the
  // overflow bucket is unbounded (UINT64_MAX).
  EXPECT_EQ(HistogramBucketUpperBound(0), 0u);
  for (size_t i = 1; i + 1 < kHistogramBuckets; ++i) {
    EXPECT_EQ(HistogramBucketUpperBound(i), (1ull << i) - 1) << "bucket " << i;
  }
  EXPECT_EQ(HistogramBucketUpperBound(kHistogramBuckets - 1), ~0ull);

  // Round trip: every bucket's upper bound maps back into that bucket.
  for (size_t i = 0; i < kHistogramBuckets; ++i) {
    EXPECT_EQ(Histogram::BucketIndex(HistogramBucketUpperBound(i)), i);
  }
}

TEST(HistogramTest, QuantilesFromBuckets) {
  ScopedMetricsEnable on(true);
  MetricsRegistry registry;
  Histogram& h = registry.GetHistogram("h");
  for (int i = 0; i < 90; ++i) h.Record(10);    // bucket ub 15
  for (int i = 0; i < 10; ++i) h.Record(1000);  // bucket ub 1023
  MetricsSnapshot snap = registry.Snapshot();
  ASSERT_EQ(snap.histograms.size(), 1u);
  const HistogramValue& hv = snap.histograms[0];
  EXPECT_EQ(hv.count, 100u);
  EXPECT_EQ(hv.ApproxQuantile(0.50), 15u);
  EXPECT_EQ(hv.ApproxQuantile(0.95), 1023u);
  EXPECT_DOUBLE_EQ(hv.Mean(), (90 * 10 + 10 * 1000) / 100.0);
}

TEST(MetricsRegistryTest, DiffCountersReportsPositiveDeltas) {
  ScopedMetricsEnable on(true);
  MetricsRegistry registry;
  registry.GetCounter("stays").Add(5);
  MetricsSnapshot before = registry.Snapshot();
  registry.GetCounter("moves").Add(3);
  registry.GetCounter("stays").Add(0);
  MetricsSnapshot after = registry.Snapshot();
  std::vector<CounterDelta> deltas = DiffCounters(before, after);
  ASSERT_EQ(deltas.size(), 1u);  // "stays" did not move, "moves" is new
  EXPECT_EQ(deltas[0].name, "moves");
  EXPECT_EQ(deltas[0].delta, 3u);
}

// ---- Concurrency hammer (the TSan target) ----

TEST(MetricsRegistryTest, ConcurrentRecordingFromPoolWorkers) {
  ScopedMetricsEnable on(true);
  ThreadCountOverride threads(8);
  MetricsRegistry& registry = MetricsRegistry::Global();
  const uint64_t c_before = registry.GetCounter("obs_test.hammer.c").Value();
  const uint64_t h_before =
      registry.GetHistogram("obs_test.hammer.h").Count();

  const size_t n = 100000;
  ParallelFor(0, n, 64, [&](size_t begin, size_t end) {
    // GetCounter from workers on purpose: registration must be
    // thread-safe and return stable references under contention.
    Counter& c = registry.GetCounter("obs_test.hammer.c");
    Histogram& h = registry.GetHistogram("obs_test.hammer.h");
    Gauge& g = registry.GetGauge("obs_test.hammer.g");
    for (size_t i = begin; i < end; ++i) {
      c.Add(1);
      if (i % 100 == 0) h.Record(i);
      g.Set(static_cast<int64_t>(i));
    }
  });

  EXPECT_EQ(registry.GetCounter("obs_test.hammer.c").Value() - c_before, n);
  EXPECT_EQ(registry.GetHistogram("obs_test.hammer.h").Count() - h_before,
            n / 100);
}

// ---- Kernel batching (gea.core.tag_lookups) ----

TEST(KernelCountersTest, TagIdsResolveOncePerTagNotOncePerValue) {
  // The batch kernels hoist tag-id resolution out of the inner loops:
  // aggregate() and diff() each charge gea.core.tag_lookups once per
  // output tag, not once per (library, tag) cell the row-at-a-time
  // paths used to pay. 8 libraries x 100 tags makes the distinction
  // unambiguous: a per-cell count would be 800+.
  constexpr size_t kLibs = 8;
  constexpr size_t kTags = 100;
  std::vector<sage::LibraryMeta> libs(kLibs);
  for (size_t i = 0; i < kLibs; ++i) {
    libs[i].id = static_cast<int>(i + 1);
    libs[i].name = "L" + std::to_string(i + 1);
  }
  std::vector<sage::TagId> tags(kTags);
  for (size_t t = 0; t < kTags; ++t) tags[t] = static_cast<sage::TagId>(t);
  std::vector<double> values(kLibs * kTags);
  for (size_t i = 0; i < values.size(); ++i) {
    values[i] = static_cast<double>((i * 37) % 101);
  }
  Result<core::EnumTable> e =
      core::EnumTable::FromRows("E", libs, tags, values);
  ASSERT_TRUE(e.ok());

  ScopedMetricsEnable on(true);
  Counter& lookups =
      MetricsRegistry::Global().GetCounter("gea.core.tag_lookups");

  uint64_t before = lookups.Value();
  Result<core::SumyTable> sumy = core::Aggregate(*e, "S");
  ASSERT_TRUE(sumy.ok());
  EXPECT_EQ(lookups.Value() - before, kTags);

  before = lookups.Value();
  Result<core::GapTable> gap = core::Diff(*sumy, *sumy, "G");
  ASSERT_TRUE(gap.ok());
  EXPECT_EQ(lookups.Value() - before, kTags);
}

// ---- Trace spans ----

TEST(TraceTest, DisabledSpanHasZeroIdAndRecordsNothing) {
  ScopedTraceEnable off(false);
  const uint64_t mark = TraceCollector::Global().Mark();
  {
    TraceSpan span("invisible");
    EXPECT_EQ(span.id(), 0u);
  }
  EXPECT_TRUE(TraceCollector::Global().DrainSince(mark).empty());
}

TEST(TraceTest, SpansNestAndDrainInStartOrder) {
  ScopedTraceEnable on(true);
  const uint64_t mark = TraceCollector::Global().Mark();
  uint64_t outer_id = 0;
  {
    TraceSpan outer("outer");
    outer_id = outer.id();
    EXPECT_NE(outer_id, 0u);
    EXPECT_EQ(CurrentSpanId(), outer_id);
    {
      TraceSpan inner("inner");
      EXPECT_EQ(CurrentSpanId(), inner.id());
      { TraceSpan leaf("leaf"); }
    }
    EXPECT_EQ(CurrentSpanId(), outer_id);
  }
  EXPECT_EQ(CurrentSpanId(), 0u);

  std::vector<SpanRecord> spans = TraceCollector::Global().DrainSince(mark);
  ASSERT_EQ(spans.size(), 3u);
  // Sorted by (start_nanos, id): open order outer -> inner -> leaf.
  EXPECT_EQ(spans[0].name, "outer");
  EXPECT_EQ(spans[1].name, "inner");
  EXPECT_EQ(spans[2].name, "leaf");
  EXPECT_EQ(spans[0].parent_id, 0u);
  EXPECT_EQ(spans[1].parent_id, spans[0].id);
  EXPECT_EQ(spans[2].parent_id, spans[1].id);
  EXPECT_GE(spans[0].duration_nanos, spans[1].duration_nanos);

  // Drained: a second drain from the same mark is empty.
  EXPECT_TRUE(TraceCollector::Global().DrainSince(mark).empty());
}

TEST(TraceTest, MarkDiscardsEarlierSpans) {
  ScopedTraceEnable on(true);
  const uint64_t before = TraceCollector::Global().Mark();
  { TraceSpan old_span("old"); }
  const uint64_t mark = TraceCollector::Global().Mark();
  { TraceSpan new_span("new"); }
  std::vector<SpanRecord> spans = TraceCollector::Global().DrainSince(mark);
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "new");
  (void)before;
}

TEST(TraceTest, ParallelForChunksAttachToCallingSpan) {
  ScopedTraceEnable on(true);
  ThreadCountOverride threads(4);
  const uint64_t mark = TraceCollector::Global().Mark();
  {
    TraceSpan op("op");
    std::atomic<size_t> covered{0};
    ParallelFor(0, 4096, 64, [&](size_t begin, size_t end) {
      covered.fetch_add(end - begin);
    });
    EXPECT_EQ(covered.load(), 4096u);
  }
  std::vector<SpanRecord> spans = TraceCollector::Global().DrainSince(mark);

  uint64_t op_id = 0, pf_id = 0;
  size_t chunk_count = 0;
  for (const SpanRecord& span : spans) {
    if (span.name == "op") op_id = span.id;
    if (span.name == "parallel_for") pf_id = span.id;
  }
  ASSERT_NE(op_id, 0u);
  ASSERT_NE(pf_id, 0u);
  for (const SpanRecord& span : spans) {
    if (span.name == "parallel_for") EXPECT_EQ(span.parent_id, op_id);
    if (span.name == "chunk") {
      // Worker-side spans attach to the parallel_for span of the
      // submitting thread through TraceParentScope.
      EXPECT_EQ(span.parent_id, pf_id);
      ++chunk_count;
    }
  }
  EXPECT_GE(chunk_count, 2u);
}

// ---- Exporters ----

MetricsSnapshot ExampleSnapshot() {
  ScopedMetricsEnable on(true);
  MetricsRegistry registry;
  registry.GetCounter("gea.test.rows").Add(42);
  registry.GetGauge("gea.test.level").Set(-7);
  Histogram& h = registry.GetHistogram("gea.test.nanos");
  h.Record(10);
  h.Record(1000);
  return registry.Snapshot();
}

TEST(ExportTest, RenderTableGolden) {
  const std::string expected =
      "counters:\n"
      "  gea.test.rows  42\n"
      "gauges:\n"
      "  gea.test.level  -7\n"
      "histograms:\n"
      "  gea.test.nanos  count=2 mean=505.0 p50<=15 p95<=1023\n";
  EXPECT_EQ(RenderTable(ExampleSnapshot()), expected);
  EXPECT_EQ(RenderTable(MetricsSnapshot{}), "(no metrics recorded)\n");
}

TEST(ExportTest, RenderJsonLinesGoldenAndValid) {
  const std::string out = RenderJsonLines(ExampleSnapshot());
  const std::string expected =
      "{\"type\":\"counter\",\"name\":\"gea.test.rows\",\"value\":42}\n"
      "{\"type\":\"gauge\",\"name\":\"gea.test.level\",\"value\":-7}\n"
      "{\"type\":\"histogram\",\"name\":\"gea.test.nanos\",\"count\":2,"
      "\"sum\":1010,\"mean\":505.000,\"p50\":15,\"p95\":1023}\n";
  EXPECT_EQ(out, expected);
  size_t start = 0;
  while (start < out.size()) {
    const size_t nl = out.find('\n', start);
    std::string error;
    EXPECT_TRUE(internal::ValidateJson(out.substr(start, nl - start), &error))
        << error;
    start = nl + 1;
  }
}

TEST(ExportTest, RenderPrometheusGolden) {
  const std::string out = RenderPrometheus(ExampleSnapshot());
  // The build-identity pair always leads the exposition, even for an
  // empty registry; uptime moves between calls so only its shape is
  // golden.
  EXPECT_EQ(out.rfind("# TYPE gea_build_info gauge\n", 0), 0u);
  EXPECT_NE(out.find("gea_build_info{version=\"1.0.0\",compiler=\""),
            std::string::npos);
  EXPECT_NE(out.find("\",arch=\""), std::string::npos);
  EXPECT_NE(out.find("# TYPE gea_uptime_seconds gauge\ngea_uptime_seconds "),
            std::string::npos);
  const std::string expected =
      "# TYPE gea_test_rows counter\n"
      "gea_test_rows 42\n"
      "# TYPE gea_test_level gauge\n"
      "gea_test_level -7\n"
      "# TYPE gea_test_nanos histogram\n"
      "gea_test_nanos_bucket{le=\"15\"} 1\n"
      "gea_test_nanos_bucket{le=\"1023\"} 2\n"
      "gea_test_nanos_bucket{le=\"+Inf\"} 2\n"
      "gea_test_nanos_sum 1010\n"
      "gea_test_nanos_count 2\n";
  // The snapshot's metrics render unchanged after the preamble.
  const size_t preamble_end = out.find("# TYPE gea_test_rows");
  ASSERT_NE(preamble_end, std::string::npos);
  EXPECT_EQ(out.substr(preamble_end), expected);
}

TEST(ExportTest, PrometheusMetricNameSanitizes) {
  // Legal names pass through untouched.
  EXPECT_EQ(PrometheusMetricName("gea_rows_total"), "gea_rows_total");
  EXPECT_EQ(PrometheusMetricName("ns:sub:metric"), "ns:sub:metric");
  // Dots and dashes (the GEA house style) become underscores.
  EXPECT_EQ(PrometheusMetricName("gea.populate.rows"), "gea_populate_rows");
  EXPECT_EQ(PrometheusMetricName("cache-hit-rate"), "cache_hit_rate");
  // Hostile characters: quotes, braces, spaces, newlines.
  EXPECT_EQ(PrometheusMetricName("a\"b{c}d e\nf"), "a_b_c_d_e_f");
  // A leading digit is illegal in the exposition grammar.
  EXPECT_EQ(PrometheusMetricName("2fast"), "_2fast");
  EXPECT_EQ(PrometheusMetricName(""), "_");
}

TEST(ExportTest, PrometheusLabelValueEscapes) {
  EXPECT_EQ(PrometheusLabelValue("plain value"), "plain value");
  EXPECT_EQ(PrometheusLabelValue("a\"b"), "a\\\"b");
  EXPECT_EQ(PrometheusLabelValue("back\\slash"), "back\\\\slash");
  EXPECT_EQ(PrometheusLabelValue("two\nlines"), "two\\nlines");
  EXPECT_EQ(PrometheusLabelValue("k=\"v\\n\""), "k=\\\"v\\\\n\\\"");
}

TEST(ExportTest, RenderPrometheusSanitizesHostileNames) {
  ScopedMetricsEnable on(true);
  MetricsRegistry registry;
  registry.GetCounter("gea.weird-name\"x\nwith{braces}").Add(1);
  registry.GetCounter("7starts.with.digit").Add(2);
  const std::string out = RenderPrometheus(registry.Snapshot());
  EXPECT_NE(out.find("# TYPE _7starts_with_digit counter\n"),
            std::string::npos);
  EXPECT_NE(out.find("_7starts_with_digit 2\n"), std::string::npos);
  EXPECT_NE(out.find("gea_weird_name_x_with_braces_ 1\n"), std::string::npos);
  // Every line is either a comment or matches "name value" with a legal
  // name: no raw quotes/newlines leaked out of the metric names.
  size_t start = 0;
  while (start < out.size()) {
    const size_t nl = out.find('\n', start);
    const std::string line = out.substr(start, nl - start);
    if (line.rfind("# TYPE ", 0) != 0) {
      const size_t space = line.find(' ');
      ASSERT_NE(space, std::string::npos) << line;
      // A labeled series (gea_build_info{...} 1) may carry spaces inside
      // its label values; the name under test ends at the brace.
      const std::string name = line.substr(0, std::min(space, line.find('{')));
      EXPECT_EQ(PrometheusMetricName(name), name) << line;
    }
    start = nl + 1;
  }
}

TEST(ExportTest, JsonEscape) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(JsonEscape("line\nfeed\ttab"), "line\\nfeed\\ttab");
  EXPECT_EQ(JsonEscape(std::string_view("\x01", 1)), "\\u0001");
}

TEST(ExportTest, ValidateJsonAcceptsAndRejects) {
  std::string error;
  EXPECT_TRUE(internal::ValidateJson("{}", &error));
  EXPECT_TRUE(internal::ValidateJson("[1, 2.5, -3e4, \"x\", true, null]",
                                     &error));
  EXPECT_TRUE(internal::ValidateJson(
      "{\"a\":{\"b\":[{\"c\":\"\\u0041\"}]}}", &error));
  EXPECT_FALSE(internal::ValidateJson("", &error));
  EXPECT_FALSE(internal::ValidateJson("{", &error));
  EXPECT_FALSE(internal::ValidateJson("{\"a\":1,}", &error));
  EXPECT_FALSE(internal::ValidateJson("[1 2]", &error));
  EXPECT_FALSE(internal::ValidateJson("\"unterminated", &error));
  EXPECT_FALSE(internal::ValidateJson("01x", &error));
  EXPECT_FALSE(internal::ValidateJson("{} trailing", &error));
  EXPECT_NE(error.find("byte"), std::string::npos);
}

// ---- Operation capture (EXPLAIN substrate) ----

TEST(OperationCaptureTest, CapturesSpansAndCounterDeltas) {
  ScopedMetricsEnable metrics(true);
  ScopedTraceEnable trace(true);
  MetricsRegistry& registry = MetricsRegistry::Global();
  const uint64_t before = registry.GetCounter("obs_test.capture.c").Value();

  OperationCapture capture("test_op");
  {
    TraceSpan step("step");
    registry.GetCounter("obs_test.capture.c").Add(11);
  }
  OperationProfile profile = capture.Finish();
  (void)before;

  EXPECT_EQ(profile.operation, "test_op");
  EXPECT_GT(profile.elapsed_nanos, 0u);
  ASSERT_EQ(profile.spans.size(), 2u);  // root "test_op" + "step"
  EXPECT_EQ(profile.spans[0].name, "test_op");
  EXPECT_EQ(profile.spans[1].name, "step");
  EXPECT_EQ(profile.spans[1].parent_id, profile.spans[0].id);

  bool saw_delta = false;
  for (const CounterDelta& d : profile.counters) {
    if (d.name == "obs_test.capture.c") {
      EXPECT_EQ(d.delta, 11u);
      saw_delta = true;
    }
  }
  EXPECT_TRUE(saw_delta);

  const std::string rendered = profile.Render();
  EXPECT_NE(rendered.find("test_op"), std::string::npos);
  EXPECT_NE(rendered.find("  step"), std::string::npos);
  EXPECT_NE(rendered.find("obs_test.capture.c"), std::string::npos);
}

TEST(OperationCaptureTest, WorksWithEverythingDisabled) {
  ScopedMetricsEnable metrics(false);
  ScopedTraceEnable trace(false);
  OperationCapture capture("dark_op");
  OperationProfile profile = capture.Finish();
  EXPECT_EQ(profile.operation, "dark_op");
  EXPECT_TRUE(profile.spans.empty());
  EXPECT_TRUE(profile.counters.empty());
  EXPECT_NE(profile.Render().find("dark_op"), std::string::npos);
}

}  // namespace
}  // namespace gea::obs
