// Unit tests for rel::Value: typing, comparison, parsing, rendering.

#include <gtest/gtest.h>

#include "rel/value.h"

namespace gea::rel {
namespace {

TEST(ValueTest, DefaultIsNull) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.type(), ValueType::kNull);
}

TEST(ValueTest, FactoriesSetTypes) {
  EXPECT_EQ(Value::Int(3).type(), ValueType::kInt);
  EXPECT_EQ(Value::Double(3.5).type(), ValueType::kDouble);
  EXPECT_EQ(Value::String("x").type(), ValueType::kString);
  EXPECT_EQ(Value::Null().type(), ValueType::kNull);
}

TEST(ValueTest, Accessors) {
  EXPECT_EQ(Value::Int(-7).AsInt(), -7);
  EXPECT_DOUBLE_EQ(Value::Double(2.25).AsDouble(), 2.25);
  EXPECT_EQ(Value::String("abc").AsString(), "abc");
  EXPECT_DOUBLE_EQ(Value::Int(4).AsNumeric(), 4.0);
  EXPECT_TRUE(Value::Int(1).IsNumeric());
  EXPECT_TRUE(Value::Double(1).IsNumeric());
  EXPECT_FALSE(Value::String("1").IsNumeric());
  EXPECT_FALSE(Value::Null().IsNumeric());
}

TEST(ValueTest, IntComparison) {
  EXPECT_LT(Value::Int(1).Compare(Value::Int(2)), 0);
  EXPECT_GT(Value::Int(2).Compare(Value::Int(1)), 0);
  EXPECT_EQ(Value::Int(2).Compare(Value::Int(2)), 0);
}

TEST(ValueTest, IntDoubleCrossComparison) {
  EXPECT_EQ(Value::Int(2).Compare(Value::Double(2.0)), 0);
  EXPECT_LT(Value::Int(2).Compare(Value::Double(2.5)), 0);
  EXPECT_GT(Value::Double(3.1).Compare(Value::Int(3)), 0);
}

TEST(ValueTest, NullSortsFirstAndEqualsNull) {
  EXPECT_EQ(Value::Null().Compare(Value::Null()), 0);
  EXPECT_LT(Value::Null().Compare(Value::Int(-100)), 0);
  EXPECT_LT(Value::Null().Compare(Value::String("")), 0);
}

TEST(ValueTest, NumbersSortBeforeStrings) {
  EXPECT_LT(Value::Int(999).Compare(Value::String("0")), 0);
  EXPECT_GT(Value::String("a").Compare(Value::Double(1e9)), 0);
}

TEST(ValueTest, StringComparisonIsLexicographic) {
  EXPECT_LT(Value::String("abc").Compare(Value::String("abd")), 0);
  EXPECT_EQ(Value::String("x").Compare(Value::String("x")), 0);
}

TEST(ValueTest, OperatorsAgreeWithCompare) {
  EXPECT_TRUE(Value::Int(1) < Value::Int(2));
  EXPECT_TRUE(Value::Int(2) == Value::Int(2));
  EXPECT_TRUE(Value::Int(2) != Value::Int(3));
}

TEST(ValueTest, ToStringRendering) {
  EXPECT_EQ(Value::Null().ToString(), "NULL");
  EXPECT_EQ(Value::Int(42).ToString(), "42");
  EXPECT_EQ(Value::String("hey").ToString(), "hey");
  EXPECT_EQ(Value::Double(2.5).ToString(), "2.5");
  EXPECT_EQ(Value::Double(2.0).ToString(), "2.0");
}

TEST(ValueTest, ParseInt) {
  Result<Value> v = Value::Parse("123", ValueType::kInt);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->AsInt(), 123);
  EXPECT_FALSE(Value::Parse("12x", ValueType::kInt).ok());
  EXPECT_FALSE(Value::Parse("1.5", ValueType::kInt).ok());
}

TEST(ValueTest, ParseDouble) {
  Result<Value> v = Value::Parse("-2.75", ValueType::kDouble);
  ASSERT_TRUE(v.ok());
  EXPECT_DOUBLE_EQ(v->AsDouble(), -2.75);
  EXPECT_FALSE(Value::Parse("abc", ValueType::kDouble).ok());
}

TEST(ValueTest, ParseIntRejectsOutOfRange) {
  EXPECT_TRUE(Value::Parse("9223372036854775807", ValueType::kInt).ok());
  EXPECT_TRUE(Value::Parse("-9223372036854775808", ValueType::kInt).ok());
  // One past either end: strtoll clamps, which would silently corrupt
  // counts, so the parser must reject instead.
  EXPECT_FALSE(Value::Parse("9223372036854775808", ValueType::kInt).ok());
  EXPECT_FALSE(Value::Parse("-9223372036854775809", ValueType::kInt).ok());
  EXPECT_FALSE(Value::Parse("99999999999999999999999", ValueType::kInt).ok());
}

TEST(ValueTest, ParseDoubleRejectsOverflowKeepsUnderflow) {
  EXPECT_FALSE(Value::Parse("1e999", ValueType::kDouble).ok());
  EXPECT_FALSE(Value::Parse("-1e999", ValueType::kDouble).ok());
  // Gradual underflow to a denormal (or zero) is a legitimate value.
  Result<Value> tiny = Value::Parse("1e-320", ValueType::kDouble);
  ASSERT_TRUE(tiny.ok());
  EXPECT_GE(tiny->AsDouble(), 0.0);
  EXPECT_TRUE(Value::Parse("1.7976931348623157e308", ValueType::kDouble).ok());
}

TEST(ValueTest, ParseNullForms) {
  EXPECT_TRUE(Value::Parse("NULL", ValueType::kInt)->is_null());
  EXPECT_TRUE(Value::Parse("", ValueType::kDouble)->is_null());
  // The empty string is a real string value, not NULL.
  ASSERT_FALSE(Value::Parse("", ValueType::kString)->is_null());
  EXPECT_EQ(Value::Parse("", ValueType::kString)->AsString(), "");
}

TEST(ValueTest, ParseString) {
  EXPECT_EQ(Value::Parse("hello", ValueType::kString)->AsString(), "hello");
}

TEST(ValueTest, ParseValueTypeNames) {
  EXPECT_TRUE(ParseValueType("int").ok());
  EXPECT_TRUE(ParseValueType("double").ok());
  EXPECT_TRUE(ParseValueType("string").ok());
  EXPECT_FALSE(ParseValueType("varchar").ok());
}

// Property sweep: Compare is antisymmetric and a total order over a mixed
// set of values.
class ValueOrderTest : public testing::TestWithParam<int> {};

std::vector<Value> MixedValues() {
  return {Value::Null(),        Value::Int(-3),       Value::Int(0),
          Value::Int(7),        Value::Double(-3.5),  Value::Double(0.0),
          Value::Double(7.5),   Value::String(""),    Value::String("a"),
          Value::String("abc")};
}

TEST_P(ValueOrderTest, AntisymmetricAgainstAll) {
  std::vector<Value> values = MixedValues();
  const Value& a = values[static_cast<size_t>(GetParam())];
  for (const Value& b : values) {
    EXPECT_EQ(a.Compare(b), -b.Compare(a))
        << a.ToString() << " vs " << b.ToString();
  }
}

TEST_P(ValueOrderTest, TransitiveThroughPivot) {
  std::vector<Value> values = MixedValues();
  const Value& pivot = values[static_cast<size_t>(GetParam())];
  for (const Value& a : values) {
    for (const Value& b : values) {
      if (a.Compare(pivot) <= 0 && pivot.Compare(b) <= 0) {
        EXPECT_LE(a.Compare(b), 0)
            << a.ToString() << " <= " << pivot.ToString()
            << " <= " << b.ToString();
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllValues, ValueOrderTest, testing::Range(0, 10));

}  // namespace
}  // namespace gea::rel
