// Tests for the intensional world: SUMY tables, GAP tables, diff() with
// the worked Fig. 3.5 example, the Fig. 3.6 set operations, aggregate(),
// top-gap manipulation, range arithmetic, and the 13 comparison queries.

#include <gtest/gtest.h>

#include <cmath>

#include "core/enum_table.h"
#include "core/gap.h"
#include "core/gap_compare.h"
#include "core/gap_ops.h"
#include "core/operators.h"
#include "core/sumy.h"
#include "core/sumy_ops.h"
#include "sage/dataset.h"

namespace gea::core {
namespace {

using sage::TagId;

SumyEntry Entry(TagId tag, double min, double max, double mean,
                double stddev) {
  return SumyEntry{tag, min, max, mean, stddev};
}

// ---------- SumyTable basics ----------

TEST(SumyTableTest, CreateSortsAndValidates) {
  Result<SumyTable> t = SumyTable::Create(
      "s", {Entry(30, 0, 1, 0.5, 0.1), Entry(10, 0, 2, 1, 0.5)});
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->entry(0).tag, 10u);
  EXPECT_EQ(t->entry(1).tag, 30u);
  EXPECT_TRUE(t->Contains(30));
  EXPECT_FALSE(t->Contains(20));
}

TEST(SumyTableTest, RejectsDuplicatesAndBadRanges) {
  EXPECT_FALSE(SumyTable::Create("s", {Entry(1, 0, 1, 0, 0),
                                       Entry(1, 0, 1, 0, 0)})
                   .ok());
  EXPECT_FALSE(SumyTable::Create("s", {Entry(1, 5, 2, 3, 0)}).ok());
}

TEST(SumyTableTest, RelationalRendering) {
  Result<SumyTable> t =
      SumyTable::Create("s", {Entry(3, 1, 9, 5, 2)});
  ASSERT_TRUE(t.ok());
  rel::Table r = t->ToRelTable();
  EXPECT_EQ(r.NumRows(), 1u);
  EXPECT_EQ(r.Get(0, "TagName")->AsString(), "AAAAAAAAAT");
  EXPECT_EQ(r.Get(0, "TagNo")->AsInt(), 3);
  EXPECT_DOUBLE_EQ(r.Get(0, "Average")->AsDouble(), 5.0);
}

// ---------- diff(): the Fig. 3.5 worked example ----------

class Fig35Test : public testing::Test {
 protected:
  void SetUp() override {
    // Table SUMY1 (Fig. 3.5a): Tag1..Tag4 mapped to tag ids 1..4.
    Result<SumyTable> s1 = SumyTable::Create(
        "SUMY1", {Entry(1, 5, 5, 5, 0), Entry(2, 0, 7, 3, 1),
                  Entry(3, 10, 120, 70, 15), Entry(4, 0, 20, 10, 4)});
    ASSERT_TRUE(s1.ok());
    sumy1_ = std::move(*s1);
    // Table SUMY2 (Fig. 3.5b): Tag1, Tag3, Tag4, Tag5.
    Result<SumyTable> s2 = SumyTable::Create(
        "SUMY2", {Entry(1, 0, 14, 7, 1), Entry(3, 10, 130, 60, 25),
                  Entry(4, 0, 12, 3, 1), Entry(5, 0, 50, 20, 15)});
    ASSERT_TRUE(s2.ok());
    sumy2_ = std::move(*s2);
  }
  SumyTable sumy1_;
  SumyTable sumy2_;
};

TEST_F(Fig35Test, GapTableMatchesTheThesis) {
  Result<GapTable> gap = Diff(sumy1_, sumy2_, "GAP");
  ASSERT_TRUE(gap.ok());
  // Only the common tags: Tag1, Tag3, Tag4.
  EXPECT_EQ(gap->NumTags(), 3u);
  // Tag1: (7-1)-(5+0) = 1, negative because SUMY1 has the lower mean.
  ASSERT_TRUE(gap->Gap(1).has_value());
  EXPECT_DOUBLE_EQ(*gap->Gap(1), -1.0);
  // Tag3: the mu±sigma bands overlap -> null.
  EXPECT_FALSE(gap->Gap(3).has_value());
  ASSERT_TRUE(gap->Find(3).has_value());  // the row exists, the gap is null
  // Tag4: (10-4)-(3+1) = 2, positive because SUMY1 is higher.
  ASSERT_TRUE(gap->Gap(4).has_value());
  EXPECT_DOUBLE_EQ(*gap->Gap(4), 2.0);
}

TEST_F(Fig35Test, DiffIsAntisymmetric) {
  GapTable forward = *Diff(sumy1_, sumy2_, "f");
  GapTable backward = *Diff(sumy2_, sumy1_, "b");
  for (const GapEntry& e : forward.entries()) {
    std::optional<double> other = backward.Gap(e.tag);
    if (e.gaps[0].has_value()) {
      ASSERT_TRUE(other.has_value());
      EXPECT_DOUBLE_EQ(*e.gaps[0], -*other);
    } else {
      EXPECT_FALSE(other.has_value());
    }
  }
}

TEST_F(Fig35Test, TouchingBandsAreNull) {
  // mu1-s1 == mu2+s2 exactly: magnitude 0 counts as overlap.
  SumyTable a = *SumyTable::Create("a", {Entry(1, 0, 20, 10, 2)});
  SumyTable b = *SumyTable::Create("b", {Entry(1, 0, 10, 6, 2)});
  GapTable gap = *Diff(a, b, "g");
  EXPECT_FALSE(gap.Gap(1).has_value());
}

TEST_F(Fig35Test, GapRelationalRenderingHasNulls) {
  GapTable gap = *Diff(sumy1_, sumy2_, "GAP");
  rel::Table r = gap.ToRelTable();
  EXPECT_EQ(r.NumRows(), 3u);
  bool saw_null = false;
  for (size_t i = 0; i < r.NumRows(); ++i) {
    if (r.At(i, 2).is_null()) saw_null = true;
  }
  EXPECT_TRUE(saw_null);
}

// ---------- Fig. 3.6: minus / intersect / union ----------

class Fig36Test : public testing::Test {
 protected:
  void SetUp() override {
    // GAP1: Tag1 -11, Tag2 2, Tag3 NULL, Tag4 5.
    std::vector<GapEntry> e1 = {{1, {-11.0}}, {2, {2.0}},
                                {3, {std::nullopt}}, {4, {5.0}}};
    gap1_ = *GapTable::Create("GAP1", {"Gap"}, std::move(e1));
    // GAP2: Tag1 -8, Tag3 9, Tag4 10, Tag5 11.
    std::vector<GapEntry> e2 = {{1, {-8.0}}, {3, {9.0}}, {4, {10.0}},
                                {5, {11.0}}};
    gap2_ = *GapTable::Create("GAP2", {"Gap"}, std::move(e2));
  }
  GapTable gap1_;
  GapTable gap2_;
};

TEST_F(Fig36Test, MinusMatchesGap3) {
  Result<GapTable> gap3 = GapMinus(gap1_, gap2_, "GAP3");
  ASSERT_TRUE(gap3.ok());
  ASSERT_EQ(gap3->NumTags(), 1u);
  EXPECT_EQ(gap3->entry(0).tag, 2u);
  EXPECT_DOUBLE_EQ(*gap3->entry(0).gaps[0], 2.0);
}

TEST_F(Fig36Test, IntersectMatchesGap4) {
  Result<GapTable> gap4 = GapIntersect(gap1_, gap2_, "GAP4");
  ASSERT_TRUE(gap4.ok());
  EXPECT_EQ(gap4->NumColumns(), 2u);
  ASSERT_EQ(gap4->NumTags(), 3u);  // Tag1, Tag3, Tag4
  EXPECT_DOUBLE_EQ(*gap4->Gap(1, 0), -11.0);
  EXPECT_DOUBLE_EQ(*gap4->Gap(1, 1), -8.0);
  EXPECT_FALSE(gap4->Gap(3, 0).has_value());
  EXPECT_DOUBLE_EQ(*gap4->Gap(3, 1), 9.0);
  EXPECT_DOUBLE_EQ(*gap4->Gap(4, 0), 5.0);
  EXPECT_DOUBLE_EQ(*gap4->Gap(4, 1), 10.0);
}

TEST_F(Fig36Test, UnionCoversAllTagsWithNullPadding) {
  Result<GapTable> u = GapUnion(gap1_, gap2_, "U");
  ASSERT_TRUE(u.ok());
  EXPECT_EQ(u->NumTags(), 5u);
  // Tag2 only in GAP1: second column null.
  EXPECT_DOUBLE_EQ(*u->Gap(2, 0), 2.0);
  EXPECT_FALSE(u->Gap(2, 1).has_value());
  // Tag5 only in GAP2: first column null.
  EXPECT_FALSE(u->Gap(5, 0).has_value());
  EXPECT_DOUBLE_EQ(*u->Gap(5, 1), 11.0);
}

TEST_F(Fig36Test, ProjectGapSelectsColumns) {
  GapTable gap4 = *GapIntersect(gap1_, gap2_, "GAP4");
  Result<GapTable> proj = ProjectGap(gap4, {gap4.gap_columns()[1]}, "p");
  ASSERT_TRUE(proj.ok());
  EXPECT_EQ(proj->NumColumns(), 1u);
  EXPECT_DOUBLE_EQ(*proj->Gap(3, 0), 9.0);
  EXPECT_FALSE(ProjectGap(gap4, {"nope"}, "p").ok());
}

// ---------- GapTable validation ----------

TEST(GapTableTest, CreateValidates) {
  EXPECT_FALSE(GapTable::Create("g", {}, {}).ok());  // no columns
  std::vector<GapEntry> wrong_arity = {{1, {1.0, 2.0}}};
  EXPECT_FALSE(GapTable::Create("g", {"Gap"}, std::move(wrong_arity)).ok());
  std::vector<GapEntry> dup = {{1, {1.0}}, {1, {2.0}}};
  EXPECT_FALSE(GapTable::Create("g", {"Gap"}, std::move(dup)).ok());
}

// ---------- aggregate() ----------

sage::SageDataSet MiniData() {
  sage::SageDataSet data;
  auto lib = [](int id, sage::NeoplasticState state,
                std::vector<std::pair<TagId, double>> counts) {
    sage::SageLibrary l(id, "L" + std::to_string(id),
                        sage::TissueType::kBrain, state,
                        sage::TissueSource::kBulkTissue);
    for (const auto& [tag, count] : counts) l.SetCount(tag, count);
    return l;
  };
  data.AddLibrary(lib(1, sage::NeoplasticState::kCancer,
                      {{10, 2.0}, {20, 4.0}}));
  data.AddLibrary(lib(2, sage::NeoplasticState::kCancer,
                      {{10, 4.0}, {20, 4.0}}));
  data.AddLibrary(lib(3, sage::NeoplasticState::kNormal,
                      {{10, 9.0}, {30, 6.0}}));
  return data;
}

TEST(AggregateTest, ComputesRangeMeanStdDev) {
  EnumTable e = EnumTable::FromDataSet("E", MiniData());
  Result<SumyTable> sumy = Aggregate(e, "S");
  ASSERT_TRUE(sumy.ok());
  // Tag 10 over (2, 4, 9): mean 5, range [2, 9],
  // population stddev sqrt((9+1+16)/3) = sqrt(26/3).
  std::optional<SumyEntry> entry = sumy->Find(10);
  ASSERT_TRUE(entry.has_value());
  EXPECT_DOUBLE_EQ(entry->min, 2.0);
  EXPECT_DOUBLE_EQ(entry->max, 9.0);
  EXPECT_DOUBLE_EQ(entry->mean, 5.0);
  EXPECT_NEAR(entry->stddev, std::sqrt(26.0 / 3.0), 1e-12);
  // Tag 30 absent from two libraries -> zeros participate: (0, 0, 6).
  std::optional<SumyEntry> t30 = sumy->Find(30);
  ASSERT_TRUE(t30.has_value());
  EXPECT_DOUBLE_EQ(t30->min, 0.0);
  EXPECT_DOUBLE_EQ(t30->mean, 2.0);
}

TEST(AggregateTest, StdDevIsNumericallyStableForLargeMagnitudeCounts) {
  // Regression for the naive E[x^2] - E[x]^2 accumulation: at counts
  // around 1e9 with unit spread, the squares reach 1e18 and the
  // subtraction cancels catastrophically (the old form returned ~0 or
  // relied on the max(0, .) clamp). The two-pass form keeps full
  // precision, which also protects chunked parallel merges from drift.
  auto lib = [](int id, double count) {
    sage::SageLibrary l(id, "L" + std::to_string(id), sage::TissueType::kBrain,
                        sage::NeoplasticState::kCancer,
                        sage::TissueSource::kBulkTissue);
    l.SetCount(10, count);
    return l;
  };
  sage::SageDataSet data;
  const double base = 1e9;
  data.AddLibrary(lib(1, base - 1.0));
  data.AddLibrary(lib(2, base));
  data.AddLibrary(lib(3, base + 1.0));
  EnumTable e = EnumTable::FromDataSet("E", data);
  Result<SumyTable> sumy = Aggregate(e, "S");
  ASSERT_TRUE(sumy.ok());
  std::optional<SumyEntry> entry = sumy->Find(10);
  ASSERT_TRUE(entry.has_value());
  EXPECT_DOUBLE_EQ(entry->mean, base);
  // Population stddev of {-1, 0, +1} around the mean: sqrt(2/3).
  EXPECT_NEAR(entry->stddev, std::sqrt(2.0 / 3.0), 1e-9);
}

TEST(AggregateTest, EmptyEnumFails) {
  sage::SageDataSet empty;
  EnumTable e = EnumTable::FromDataSet("E", empty);
  EXPECT_FALSE(Aggregate(e, "S").ok());
}

// ---------- purity ----------

TEST(PurityTest, Properties) {
  EnumTable e = EnumTable::FromDataSet("E", MiniData());
  EXPECT_FALSE(IsPure(e, PurityProperty::kCancer));
  EXPECT_TRUE(IsPure(e, PurityProperty::kBulkTissue));
  EnumTable cancers = e.FilterLibraries(
      "C", [](const sage::LibraryMeta& lib) {
        return lib.state == sage::NeoplasticState::kCancer;
      });
  EXPECT_TRUE(IsPure(cancers, PurityProperty::kCancer));
  std::vector<PurityProperty> pure = PureProperties(cancers);
  EXPECT_EQ(pure.size(), 2u);  // cancer + bulk tissue
}

// ---------- selection and range arithmetic on SUMY ----------

TEST(SumyOpsTest, SelectByPredicate) {
  SumyTable s = *SumyTable::Create(
      "s", {Entry(1, 0, 10, 5, 1), Entry(2, 50, 60, 55, 2)});
  Result<SumyTable> high = SelectSumy(
      s, [](const SumyEntry& e) { return e.mean > 20; }, "high");
  ASSERT_TRUE(high.ok());
  EXPECT_EQ(high->NumTags(), 1u);
  EXPECT_EQ(high->entry(0).tag, 2u);
}

TEST(SumyOpsTest, SelectByAllenRelation) {
  SumyTable s = *SumyTable::Create(
      "s", {Entry(1, 0, 5, 2, 1), Entry(2, 10, 30, 20, 5),
            Entry(3, 100, 200, 150, 10)});
  // Ranges overlapping [8, 60] in the Allen sense (proper overlap with
  // the range starting first): only tag 2's [10,30] is during [8,60];
  // use kDuring.
  Result<SumyTable> during = SelectSumyByRange(
      s, interval::AllenRelation::kDuring, {8, 60}, "d");
  ASSERT_TRUE(during.ok());
  ASSERT_EQ(during->NumTags(), 1u);
  EXPECT_EQ(during->entry(0).tag, 2u);
}

TEST(SumyOpsTest, SetOperations) {
  SumyTable a = *SumyTable::Create(
      "a", {Entry(1, 0, 1, 0.5, 0), Entry(2, 0, 1, 0.5, 0)});
  SumyTable b = *SumyTable::Create(
      "b", {Entry(2, 5, 6, 5.5, 0), Entry(3, 0, 1, 0.5, 0)});
  EXPECT_EQ(SumyMinus(a, b, "m")->NumTags(), 1u);
  EXPECT_EQ(SumyIntersect(a, b, "i")->NumTags(), 1u);
  // Intersect keeps a's aggregates.
  EXPECT_DOUBLE_EQ(SumyIntersect(a, b, "i")->entry(0).mean, 0.5);
  EXPECT_EQ(SumyUnion(a, b, "u")->NumTags(), 3u);
}

TEST(RangeSearchTest, ReportsNeNoAndRanges) {
  // Mirrors Fig. 4.16: tag 573 matches with range [20, 616]; tag 568
  // fails; a tag absent from one table reports NE there.
  SumyTable t1 = *SumyTable::Create(
      "brain25k_3NormalTable",
      {Entry(568, 800, 900, 850, 10), Entry(573, 20, 616, 100, 50)});
  SumyTable t2 = *SumyTable::Create(
      "brain30k_3CancerFasTab", {Entry(573, 5, 8, 6, 1)});
  std::vector<RangeSearchHit> hits =
      RangeSearch({&t1, &t2}, 568, 573,
                  interval::AllenRelation::kOverlaps, {10, 700});
  // Two tags x two tables = 4 report lines.
  ASSERT_EQ(hits.size(), 4u);
  // tag 568 in t1: [800,900] does not overlap [10,700] -> NO.
  EXPECT_EQ(hits[0].outcome, RangeSearchHit::Outcome::kNoMatch);
  EXPECT_EQ(hits[0].Render(), "NO");
  // tag 568 in t2: absent -> NE.
  EXPECT_EQ(hits[1].outcome, RangeSearchHit::Outcome::kNotExist);
  // tag 573 in t1: [20,616] is during [10,700]... "overlaps" in the
  // strict Allen sense fails, so this is NO.
  EXPECT_EQ(hits[2].outcome, RangeSearchHit::Outcome::kNoMatch);
  // tag 573 in t2: [5,8] before [10,700] -> NO under kOverlaps.
  EXPECT_EQ(hits[3].outcome, RangeSearchHit::Outcome::kNoMatch);

  // The same search with kDuring matches tag 573 in t1.
  hits = RangeSearch({&t1, &t2}, 568, 573,
                     interval::AllenRelation::kDuring, {10, 700});
  EXPECT_EQ(hits[2].outcome, RangeSearchHit::Outcome::kMatch);
  EXPECT_EQ(hits[2].Render(), "[20, 616]");
}

TEST(RangeSearchTest, AnyModeListsOnlyMatches) {
  SumyTable t = *SumyTable::Create(
      "t", {Entry(1, 14, 212, 100, 10), Entry(2, 800, 900, 850, 10)});
  std::vector<RangeSearchHit> hits =
      RangeSearchAny(t, interval::AllenRelation::kDuring, {5, 700});
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].tag, 1u);
}

// ---------- top gap ----------

GapTable FourGaps() {
  std::vector<GapEntry> entries = {{1, {-357.24}},
                                   {2, {182.94}},
                                   {3, {std::nullopt}},
                                   {4, {-141.95}},
                                   {5, {3.5}}};
  return *GapTable::Create("g", {"Gap"}, std::move(entries));
}

TEST(TopGapTest, LargestMagnitude) {
  Result<GapTable> top = TopGap(FourGaps(), 2,
                                TopGapMode::kLargestMagnitude, "t");
  ASSERT_TRUE(top.ok());
  EXPECT_EQ(top->NumTags(), 2u);
  EXPECT_TRUE(top->Find(1).has_value());  // -357.24
  EXPECT_TRUE(top->Find(2).has_value());  // 182.94
}

TEST(TopGapTest, HighestAndLowest) {
  Result<GapTable> hi = TopGap(FourGaps(), 1, TopGapMode::kHighest, "h");
  EXPECT_TRUE(hi->Find(2).has_value());
  Result<GapTable> lo = TopGap(FourGaps(), 1, TopGapMode::kLowest, "l");
  EXPECT_TRUE(lo->Find(1).has_value());
}

TEST(TopGapTest, SkipsNullsAndHandlesOverrun) {
  Result<GapTable> top = TopGap(FourGaps(), 10,
                                TopGapMode::kLargestMagnitude, "t");
  ASSERT_TRUE(top.ok());
  EXPECT_EQ(top->NumTags(), 4u);  // the null entry is excluded
  EXPECT_FALSE(TopGap(FourGaps(), 0, TopGapMode::kHighest, "t").ok());
}

TEST(TopGapTest, RenderListFormat) {
  std::vector<std::string> lines = RenderGapList(FourGaps(), 2);
  ASSERT_EQ(lines.size(), 2u);
  // Largest magnitude first, rendered TAGNAME_(id)_value.
  EXPECT_EQ(lines[0], "AAAAAAAAAC_(1)_-357.24");
  EXPECT_EQ(lines[1], "AAAAAAAAAG_(2)_182.94");
}

// ---------- gap selection ----------

TEST(GapSelectTest, SignAndNullFilters) {
  GapTable g = FourGaps();
  EXPECT_EQ(SelectNonNullGaps(g, "n")->NumTags(), 4u);
  EXPECT_EQ(SelectPositiveGaps(g, "p")->NumTags(), 2u);
  EXPECT_EQ(SelectNegativeGaps(g, "m")->NumTags(), 2u);
}

// ---------- the 13 comparison queries ----------

class GapQueryTest : public testing::Test {
 protected:
  void SetUp() override {
    // Construct a compared table covering every sign/null combination:
    //   tag : gapA , gapB
    //   1   : +    , +      (up in both)
    //   2   : -    , -      (down in both)
    //   3   : +    , -
    //   4   : -    , +
    //   5   : +    , null
    //   6   : null , -
    //   7   : null , null
    std::vector<GapEntry> a = {{1, {5.0}}, {2, {-5.0}}, {3, {5.0}},
                               {4, {-5.0}}, {5, {5.0}},
                               {6, {std::nullopt}}, {7, {std::nullopt}}};
    std::vector<GapEntry> b = {{1, {3.0}}, {2, {-3.0}}, {3, {-3.0}},
                               {4, {3.0}}, {5, {std::nullopt}},
                               {6, {-3.0}}, {7, {std::nullopt}}};
    GapTable ga = *GapTable::Create("ga", {"Gap"}, std::move(a));
    GapTable gb = *GapTable::Create("gb", {"Gap"}, std::move(b));
    compared_ = *CompareGaps(ga, gb, GapCompareKind::kUnion, "cmp");
  }

  std::vector<TagId> TagsOf(GapCompareQuery query) {
    Result<GapTable> out = ApplyGapQuery(compared_, query, "q");
    EXPECT_TRUE(out.ok());
    std::vector<TagId> tags;
    for (const GapEntry& e : out->entries()) tags.push_back(e.tag);
    return tags;
  }

  GapTable compared_;
};

TEST_F(GapQueryTest, HigherInAInBoth) {
  EXPECT_EQ(TagsOf(GapCompareQuery::kHigherInAInBoth),
            (std::vector<TagId>{1}));
  // Query 4 is the thesis's redundant phrasing of the same condition.
  EXPECT_EQ(TagsOf(GapCompareQuery::kLowerInBInBoth),
            (std::vector<TagId>{1}));
}

TEST_F(GapQueryTest, LowerInAInBoth) {
  EXPECT_EQ(TagsOf(GapCompareQuery::kLowerInAInBoth),
            (std::vector<TagId>{2}));
  EXPECT_EQ(TagsOf(GapCompareQuery::kHigherInBInBoth),
            (std::vector<TagId>{2}));
}

TEST_F(GapQueryTest, NonNullInBoth) {
  EXPECT_EQ(TagsOf(GapCompareQuery::kNonNullInBoth),
            (std::vector<TagId>{1, 2, 3, 4}));
}

TEST_F(GapQueryTest, OnlyInGapA) {
  // gapA > 0 and not (gapB > 0): tags 3 (B negative) and 5 (B null).
  EXPECT_EQ(TagsOf(GapCompareQuery::kHigherInAOfAOnly),
            (std::vector<TagId>{3, 5}));
  // gapA < 0 and not (gapB < 0): tag 4.
  EXPECT_EQ(TagsOf(GapCompareQuery::kLowerInAOfAOnly),
            (std::vector<TagId>{4}));
}

TEST_F(GapQueryTest, OnlyInGapB) {
  // gapB > 0 and not (gapA > 0): tag 4.
  EXPECT_EQ(TagsOf(GapCompareQuery::kHigherInAOfBOnly),
            (std::vector<TagId>{4}));
  // gapB < 0 and not (gapA < 0): tags 3 and 6.
  EXPECT_EQ(TagsOf(GapCompareQuery::kLowerInAOfBOnly),
            (std::vector<TagId>{3, 6}));
}

TEST_F(GapQueryTest, DifferenceOutputSupportsQueries1To5Only) {
  std::vector<GapEntry> a = {{1, {5.0}}, {2, {-4.0}}, {3, {std::nullopt}}};
  std::vector<GapEntry> b = {{9, {5.0}}};
  GapTable ga = *GapTable::Create("ga", {"Gap"}, std::move(a));
  GapTable gb = *GapTable::Create("gb", {"Gap"}, std::move(b));
  GapTable diff = *CompareGaps(ga, gb, GapCompareKind::kDifference, "d");
  EXPECT_EQ(diff.NumColumns(), 1u);
  // Queries 1-5 degenerate to the GapA condition (the Fig. 4.14 usage).
  Result<GapTable> q2 =
      ApplyGapQuery(diff, GapCompareQuery::kLowerInAInBoth, "q2");
  ASSERT_TRUE(q2.ok());
  ASSERT_EQ(q2->NumTags(), 1u);
  EXPECT_EQ(q2->entry(0).tag, 2u);
  Result<GapTable> q5 =
      ApplyGapQuery(diff, GapCompareQuery::kNonNullInBoth, "q5");
  ASSERT_TRUE(q5.ok());
  EXPECT_EQ(q5->NumTags(), 2u);
  // Queries 6-13 remain unavailable on a difference output.
  EXPECT_EQ(ApplyGapQuery(diff, GapCompareQuery::kHigherInAOfAOnly, "q6")
                .status()
                .code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(GapQueryTest, IntersectKeepsOnlyCommonTags) {
  std::vector<GapEntry> a = {{1, {5.0}}, {2, {1.0}}};
  std::vector<GapEntry> b = {{2, {5.0}}, {3, {1.0}}};
  GapTable ga = *GapTable::Create("ga", {"Gap"}, std::move(a));
  GapTable gb = *GapTable::Create("gb", {"Gap"}, std::move(b));
  GapTable inter = *CompareGaps(ga, gb, GapCompareKind::kIntersect, "i");
  EXPECT_EQ(inter.NumTags(), 1u);
  EXPECT_EQ(inter.entry(0).tag, 2u);
}

TEST(GapQueryMetaTest, DescriptionsExist) {
  for (int q = 1; q <= 13; ++q) {
    EXPECT_STRNE(
        GapCompareQueryDescription(static_cast<GapCompareQuery>(q)), "?");
  }
}

}  // namespace
}  // namespace gea::core
