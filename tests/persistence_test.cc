// Tests for the persistence layer: SAGE library files, the relational
// round trips of the GEA structures, lineage export/import, and the
// session-level SaveDatabase / LoadDatabase.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "core/gap_ops.h"
#include "core/serialization.h"
#include "lineage/lineage.h"
#include "rel/table_io.h"
#include "sage/cleaning.h"
#include "sage/generator.h"
#include "sage/io.h"
#include "workbench/session.h"

namespace gea {
namespace {

namespace fs = std::filesystem;

std::string FreshDir(const std::string& tag) {
  std::string dir = testing::TempDir() + "/gea_persist_" + tag;
  fs::remove_all(dir);
  return dir;
}

sage::SageLibrary SampleLibrary() {
  sage::SageLibrary lib(7, "SAGE_brain_cancer_B1", sage::TissueType::kBrain,
                        sage::NeoplasticState::kCancer,
                        sage::TissueSource::kCellLine);
  lib.SetCount(*sage::EncodeTag("AAAAAAAAAC"), 13.0);
  lib.SetCount(*sage::EncodeTag("CCTTGAGTAC"), 4.5);
  lib.SetCount(*sage::EncodeTag("TTTTTTTTTT"), 1.0);
  return lib;
}

// ---------- SAGE library files ----------

TEST(SageIoTest, LibraryTextRoundTrip) {
  sage::SageLibrary lib = SampleLibrary();
  std::string text = sage::WriteLibraryText(lib);
  Result<sage::SageLibrary> back =
      sage::ReadLibraryText(lib.name(), text);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->id(), 7);
  EXPECT_EQ(back->tissue(), sage::TissueType::kBrain);
  EXPECT_EQ(back->state(), sage::NeoplasticState::kCancer);
  EXPECT_EQ(back->source(), sage::TissueSource::kCellLine);
  ASSERT_EQ(back->entries().size(), lib.entries().size());
  EXPECT_DOUBLE_EQ(back->Count(*sage::EncodeTag("CCTTGAGTAC")), 4.5);
}

TEST(SageIoTest, ReadRejectsMalformedInput) {
  EXPECT_FALSE(sage::ReadLibraryText("x", "TAG\t3\n").ok());  // no header
  EXPECT_FALSE(sage::ReadLibraryText(
                   "x", "# gea-sage-library v1\nBADTAG\t3\n")
                   .ok());
  EXPECT_FALSE(sage::ReadLibraryText(
                   "x", "# gea-sage-library v1\nAAAAAAAAAC\tnope\n")
                   .ok());
  EXPECT_FALSE(sage::ReadLibraryText(
                   "x", "# gea-sage-library v1\nAAAAAAAAAC\n")
                   .ok());
  EXPECT_FALSE(sage::ReadLibraryText(
                   "x", "# gea-sage-library v1\n# tissue liver\n")
                   .ok());
}

TEST(SageIoTest, DataSetDirectoryRoundTrip) {
  sage::GeneratorConfig config;
  config.seed = 5;
  config.panels = sage::SyntheticSageGenerator::SmallPanels();
  sage::SyntheticSage synth = sage::SyntheticSageGenerator(config).Generate();

  std::string dir = FreshDir("dataset");
  ASSERT_TRUE(sage::SaveDataSet(synth.dataset, dir).ok());
  ASSERT_TRUE(fs::exists(dir + "/sageName.txt"));

  Result<sage::SageDataSet> back = sage::LoadDataSet(dir);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back->NumLibraries(), synth.dataset.NumLibraries());
  for (size_t i = 0; i < back->NumLibraries(); ++i) {
    const sage::SageLibrary& a = synth.dataset.library(i);
    const sage::SageLibrary& b = back->library(i);
    EXPECT_EQ(a.name(), b.name());
    EXPECT_EQ(a.id(), b.id());
    EXPECT_EQ(a.UniqueTagCount(), b.UniqueTagCount());
    EXPECT_DOUBLE_EQ(a.TotalTagCount(), b.TotalTagCount());
  }
}

TEST(SageIoTest, LoadMissingDirectoryFails) {
  EXPECT_FALSE(sage::LoadDataSet("/nonexistent/gea").ok());
}

// ---------- relational round trips ----------

class RoundTripTest : public testing::Test {
 protected:
  void SetUp() override {
    sage::GeneratorConfig config;
    config.seed = 11;
    config.panels = sage::SyntheticSageGenerator::SmallPanels();
    synth_ = sage::SyntheticSageGenerator(config).Generate();
    sage::CleanAndNormalize(synth_.dataset);
    brain_ = core::EnumTable::FromDataSet(
        "brain", synth_.dataset.FilterByTissue(sage::TissueType::kBrain));
  }
  sage::SyntheticSage synth_;
  core::EnumTable brain_ =
      core::EnumTable::FromDataSet("empty", sage::SageDataSet());
};

TEST_F(RoundTripTest, SumyThroughRelAndCsv) {
  core::SumyTable sumy =
      std::move(core::Aggregate(brain_, "brain_sumy")).value();
  // SUMY -> rel -> CSV -> rel -> SUMY.
  std::string csv = rel::TableToCsv(sumy.ToRelTable());
  Result<rel::Table> table = rel::TableFromCsv("brain_sumy", csv);
  ASSERT_TRUE(table.ok());
  Result<core::SumyTable> back =
      core::SumyFromRelTable(*table, "brain_sumy");
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back->NumTags(), sumy.NumTags());
  for (size_t i = 0; i < sumy.NumTags(); ++i) {
    EXPECT_EQ(back->entry(i).tag, sumy.entry(i).tag);
    EXPECT_NEAR(back->entry(i).mean, sumy.entry(i).mean, 1e-4);
    EXPECT_NEAR(back->entry(i).stddev, sumy.entry(i).stddev, 1e-4);
  }
}

TEST_F(RoundTripTest, GapWithNullsThroughRel) {
  core::EnumTable cancer = brain_.FilterLibraries(
      "cancer", [](const sage::LibraryMeta& lib) {
        return lib.state == sage::NeoplasticState::kCancer;
      });
  core::EnumTable normal = brain_.FilterLibraries(
      "normal", [](const sage::LibraryMeta& lib) {
        return lib.state == sage::NeoplasticState::kNormal;
      });
  core::SumyTable s1 = std::move(core::Aggregate(cancer, "s1")).value();
  core::SumyTable s2 = std::move(core::Aggregate(normal, "s2")).value();
  core::GapTable gap = std::move(core::Diff(s1, s2, "gap")).value();

  Result<core::GapTable> back =
      core::GapFromRelTable(gap.ToRelTable(), "gap");
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back->NumTags(), gap.NumTags());
  size_t nulls = 0;
  for (size_t i = 0; i < gap.NumTags(); ++i) {
    const core::GapEntry& a = gap.entry(i);
    const core::GapEntry& b = back->entry(i);
    EXPECT_EQ(a.tag, b.tag);
    ASSERT_EQ(a.gaps.size(), b.gaps.size());
    EXPECT_EQ(a.gaps[0].has_value(), b.gaps[0].has_value());
    if (a.gaps[0].has_value()) {
      EXPECT_NEAR(*a.gaps[0], *b.gaps[0], 1e-4);
    } else {
      ++nulls;
    }
  }
  EXPECT_GT(nulls, 0u);  // the round trip actually exercised nulls
}

TEST_F(RoundTripTest, TwoColumnGapThroughRel) {
  std::vector<core::GapEntry> entries = {{1, {1.5, std::nullopt}},
                                         {2, {std::nullopt, -2.0}}};
  core::GapTable gap = std::move(core::GapTable::Create(
                                     "g", {"GapA", "GapB"},
                                     std::move(entries)))
                           .value();
  Result<core::GapTable> back = core::GapFromRelTable(gap.ToRelTable(), "g");
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->gap_columns(),
            (std::vector<std::string>{"GapA", "GapB"}));
  EXPECT_DOUBLE_EQ(*back->Gap(1, 0), 1.5);
  EXPECT_FALSE(back->Gap(1, 1).has_value());
}

TEST_F(RoundTripTest, EnumThroughRelTables) {
  Result<core::EnumTable> back = core::EnumFromRelTables(
      brain_.ToRelTable(), core::EnumLibrariesToRelTable(brain_, "libs"),
      "brain");
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back->NumLibraries(), brain_.NumLibraries());
  ASSERT_EQ(back->NumTags(), brain_.NumTags());
  for (size_t row = 0; row < brain_.NumLibraries(); ++row) {
    EXPECT_EQ(back->library(row).id, brain_.library(row).id);
    EXPECT_EQ(back->library(row).state, brain_.library(row).state);
    for (size_t col = 0; col < brain_.NumTags(); col += 97) {
      EXPECT_NEAR(back->ValueAt(row, col), brain_.ValueAt(row, col), 1e-4);
    }
  }
}

TEST_F(RoundTripTest, ReadersRejectWrongSchemas) {
  rel::Table wrong("w", rel::Schema({{"TagNo", rel::ValueType::kString}}));
  EXPECT_FALSE(core::SumyFromRelTable(wrong, "s").ok());
  EXPECT_FALSE(core::GapFromRelTable(wrong, "g").ok());
  rel::Table no_gaps("g", rel::Schema({{"TagName", rel::ValueType::kString},
                                       {"TagNo", rel::ValueType::kInt}}));
  EXPECT_FALSE(core::GapFromRelTable(no_gaps, "g").ok());
}

// ---------- lineage export/import ----------

TEST(LineagePersistTest, ExportImportRoundTrip) {
  lineage::LineageGraph graph;
  auto root = *graph.AddNode("SAGE", lineage::NodeKind::kDataSet, "load",
                             {{"libraries", "24"}}, {});
  auto fas = *graph.AddNode("brain25k_1", lineage::NodeKind::kFascicle,
                            "fascicles", {{"k", "150"}}, {root});
  auto sumy = *graph.AddNode("brain25k_1_SUMY", lineage::NodeKind::kSumy,
                             "aggregate", {}, {fas});
  ASSERT_TRUE(graph.SetComment(fas, "interesting").ok());
  ASSERT_TRUE(graph.DeleteContents(sumy).ok());

  lineage::LineageGraph::RelExport exported = graph.Export();
  Result<lineage::LineageGraph> back = lineage::LineageGraph::Import(
      exported.nodes, exported.params, exported.edges);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->NumNodes(), 3u);
  auto fas2 = *back->FindByName("brain25k_1");
  const lineage::LineageGraph::Node* node = *back->GetNode(fas2);
  EXPECT_EQ(node->comment, "interesting");
  EXPECT_EQ(node->parameters.at("k"), "150");
  EXPECT_EQ(node->parents.size(), 1u);
  EXPECT_EQ(node->children.size(), 1u);
  const lineage::LineageGraph::Node* sumy_node =
      *back->GetNode(*back->FindByName("brain25k_1_SUMY"));
  EXPECT_FALSE(sumy_node->has_contents);
  // Fresh ids continue after the imported maximum.
  Result<lineage::LineageGraph::NodeId> fresh = back->AddNode(
      "new", lineage::NodeKind::kGap, "diff", {}, {});
  ASSERT_TRUE(fresh.ok());
  EXPECT_GT(*fresh, sumy);
}

TEST(LineagePersistTest, ImportRejectsCorruptTables) {
  lineage::LineageGraph graph;
  (void)*graph.AddNode("a", lineage::NodeKind::kDataSet, "load", {}, {});
  lineage::LineageGraph::RelExport exported = graph.Export();
  // Edge referencing an unknown node.
  exported.edges.AppendRowUnchecked(
      {rel::Value::Int(99), rel::Value::Int(1)});
  EXPECT_FALSE(lineage::LineageGraph::Import(exported.nodes,
                                             exported.params,
                                             exported.edges)
                   .ok());
}

// ---------- session save/load ----------

TEST(SessionPersistTest, SaveAndLoadDatabase) {
  using workbench::AccessLevel;
  using workbench::AnalysisSession;

  sage::GeneratorConfig config;
  config.seed = 42;
  config.panels = sage::SyntheticSageGenerator::SmallPanels();
  sage::SyntheticSage synth = sage::SyntheticSageGenerator(config).Generate();
  sage::CleanAndNormalize(synth.dataset);

  AnalysisSession session("admin", "secret");
  ASSERT_TRUE(
      session.Login("admin", "secret", AccessLevel::kAdministrator).ok());
  ASSERT_TRUE(session.LoadDataSet(synth.dataset).ok());
  ASSERT_TRUE(session.CreateTissueDataSet(sage::TissueType::kBrain).ok());
  ASSERT_TRUE(session.GenerateMetadata("brain", 25.0, "meta").ok());
  Result<std::vector<std::string>> fascicles = session.CalculateFascicles(
      "brain", "meta", 150, 6, 3, "brain25k");
  ASSERT_TRUE(fascicles.ok());
  ASSERT_FALSE(fascicles->empty());
  const std::string fas = fascicles->front();
  Result<AnalysisSession::ControlGroups> groups =
      session.FormControlGroups("brain", fas);
  ASSERT_TRUE(groups.ok());
  ASSERT_TRUE(session
                  .CreateGap(groups->fascicle_sumy, groups->opposite_sumy,
                             "brain_gap")
                  .ok());
  ASSERT_TRUE(session.CommentOn(fas, "saved comment").ok());

  std::string dir = FreshDir("session");
  ASSERT_TRUE(session.SaveDatabase(dir).ok());

  // A brand-new session loads everything back.
  AnalysisSession restored("admin", "secret");
  ASSERT_TRUE(
      restored.Login("admin", "secret", AccessLevel::kAdministrator).ok());
  ASSERT_TRUE(restored.LoadDatabase(dir).ok());

  EXPECT_EQ(restored.TableNames(), session.TableNames());
  Result<const core::EnumTable*> brain = restored.GetEnum("brain");
  ASSERT_TRUE(brain.ok());
  EXPECT_EQ((*brain)->NumLibraries(), 12u);
  Result<const core::GapTable*> gap = restored.GetGap("brain_gap");
  ASSERT_TRUE(gap.ok());
  Result<const core::GapTable*> original = session.GetGap("brain_gap");
  EXPECT_EQ((*gap)->NumTags(), (*original)->NumTags());

  // Lineage survived, including the comment and the derivation chain.
  Result<lineage::LineageGraph::NodeId> node =
      restored.Lineage().FindByName(fas);
  ASSERT_TRUE(node.ok());
  EXPECT_EQ((*restored.Lineage().GetNode(*node))->comment, "saved comment");
  Result<lineage::LineageGraph::NodeId> gap_node =
      restored.Lineage().FindByName("brain_gap");
  ASSERT_TRUE(gap_node.ok());
  EXPECT_EQ((*restored.Lineage().GetNode(*gap_node))->parents.size(), 2u);

  // The data set itself round-tripped.
  Result<const sage::SageDataSet*> data = restored.DataSet();
  ASSERT_TRUE(data.ok());
  EXPECT_EQ((*data)->NumLibraries(), synth.dataset.NumLibraries());

  // And the restored session keeps working: re-run a downstream step.
  Result<std::string> top = restored.CalculateTopGap("brain_gap", 10);
  ASSERT_TRUE(top.ok()) << top.status().ToString();
  EXPECT_TRUE(restored.GetGap(*top).ok());
}

TEST(SessionPersistTest, SaveSkipsComputedStatViewsButKeepsStoredRelations) {
  using workbench::AccessLevel;
  using workbench::AnalysisSession;

  sage::GeneratorConfig config;
  config.seed = 42;
  config.panels = sage::SyntheticSageGenerator::SmallPanels();
  sage::SyntheticSage synth = sage::SyntheticSageGenerator(config).Generate();

  AnalysisSession session("admin", "secret");
  ASSERT_TRUE(
      session.Login("admin", "secret", AccessLevel::kAdministrator).ok());
  ASSERT_TRUE(session.LoadDataSet(synth.dataset).ok());
  // Touch a stat view so it is definitely live in the catalog.
  ASSERT_TRUE(session.Query("SELECT name FROM gea_stat_counters").ok());

  std::string dir = FreshDir("statview_skip");
  ASSERT_TRUE(session.SaveDatabase(dir).ok());

  // The stored auxiliary relations are persisted...
  EXPECT_TRUE(fs::exists(dir + "/relations/Libraries.csv"));
  EXPECT_TRUE(fs::exists(dir + "/relations/Typeinfo.csv"));
  // ...but the computed telemetry views must never be: persisting one
  // would freeze a counter sample and shadow the live view on reload.
  for (const auto& entry : fs::directory_iterator(dir + "/relations")) {
    EXPECT_EQ(entry.path().filename().string().rfind("gea_stat", 0),
              std::string::npos)
        << "computed view persisted: " << entry.path();
  }

  AnalysisSession restored("admin", "secret");
  ASSERT_TRUE(
      restored.Login("admin", "secret", AccessLevel::kAdministrator).ok());
  ASSERT_TRUE(restored.LoadDatabase(dir).ok());

  // Stored relations round-tripped and are queryable.
  Result<rel::Table> libs =
      restored.Query("SELECT Lib_ID, Lib_Name FROM Libraries");
  ASSERT_TRUE(libs.ok()) << libs.status().ToString();
  EXPECT_EQ(libs->NumRows(), synth.dataset.NumLibraries());
  // The stat views are still computed (live), not frozen table data.
  Result<rel::Table> counters =
      restored.Query("SELECT name, value FROM gea_stat_counters");
  ASSERT_TRUE(counters.ok()) << counters.status().ToString();
}

TEST(SessionPersistTest, LoadRejectsMalformedManifest) {
  using workbench::AccessLevel;
  using workbench::AnalysisSession;

  AnalysisSession session("admin", "secret");
  ASSERT_TRUE(
      session.Login("admin", "secret", AccessLevel::kAdministrator).ok());
  std::string dir = FreshDir("bad_manifest");
  ASSERT_TRUE(session.SaveDatabase(dir).ok());

  // Corrupt the manifest: a row with the wrong shape must be rejected
  // with a clean error, not crash the loader.
  {
    std::ofstream out(dir + "/manifest.csv",
                      std::ios::binary | std::ios::trunc);
    out << "Name:string,Kind:string,Extra:int\na,enum,1\n";
  }
  AnalysisSession restored("admin", "secret");
  ASSERT_TRUE(
      restored.Login("admin", "secret", AccessLevel::kAdministrator).ok());
  EXPECT_FALSE(restored.LoadDatabase(dir).ok());
}

TEST(SessionPersistTest, SaveRequiresLogin) {
  workbench::AnalysisSession session("admin", "secret");
  EXPECT_TRUE(session.SaveDatabase(FreshDir("nologin")).IsPermissionDenied());
}

TEST(SessionPersistTest, LoadFromMissingDirectoryFails) {
  workbench::AnalysisSession session("admin", "secret");
  ASSERT_TRUE(session
                  .Login("admin", "secret",
                         workbench::AccessLevel::kAdministrator)
                  .ok());
  EXPECT_FALSE(session.LoadDatabase("/nonexistent/gea_db").ok());
}

}  // namespace
}  // namespace gea
