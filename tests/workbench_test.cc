// Tests for the workbench: user accounts (Appendix III), the session
// facade, data management, redundancy checks, search operations, and
// lineage integration.

#include <gtest/gtest.h>

#include "obs/export.h"
#include "obs/log.h"
#include "sage/cleaning.h"
#include "sage/generator.h"
#include "workbench/session.h"
#include "workbench/users.h"

namespace gea::workbench {
namespace {

// ---------- UserDatabase ----------

TEST(UserDatabaseTest, BootstrapAdminCanAuthenticate) {
  UserDatabase users("admin", "secret");
  EXPECT_TRUE(users.Authenticate("admin", "secret",
                                 AccessLevel::kAdministrator)
                  .ok());
}

TEST(UserDatabaseTest, LoginFailsOnWrongPasswordOrType) {
  // The Fig. 4.27 hint: password and TYPE must both match.
  UserDatabase users("admin", "secret");
  EXPECT_TRUE(users.Authenticate("admin", "wrong",
                                 AccessLevel::kAdministrator)
                  .status()
                  .IsPermissionDenied());
  EXPECT_TRUE(users.Authenticate("admin", "secret", AccessLevel::kUser)
                  .status()
                  .IsPermissionDenied());
  EXPECT_TRUE(users.Authenticate("ghost", "secret",
                                 AccessLevel::kAdministrator)
                  .status()
                  .IsPermissionDenied());
}

TEST(UserDatabaseTest, AddDeleteModify) {
  UserDatabase users("admin", "secret");
  ASSERT_TRUE(users.AddUser("jessica", "pw", AccessLevel::kUser).ok());
  EXPECT_TRUE(users.AddUser("jessica", "pw2", AccessLevel::kUser)
                  .IsAlreadyExists());
  EXPECT_TRUE(users.Authenticate("jessica", "pw", AccessLevel::kUser).ok());

  // Promote to administrator with a new password (Fig. AIII.11).
  ASSERT_TRUE(
      users.ModifyUser("jessica", "pw2", AccessLevel::kAdministrator).ok());
  EXPECT_TRUE(users.Authenticate("jessica", "pw", AccessLevel::kUser)
                  .status()
                  .IsPermissionDenied());
  EXPECT_TRUE(users
                  .Authenticate("jessica", "pw2",
                                AccessLevel::kAdministrator)
                  .ok());

  ASSERT_TRUE(users.DeleteUser("jessica").ok());
  EXPECT_TRUE(users.DeleteUser("jessica").IsNotFound());
}

TEST(UserDatabaseTest, LastAdministratorIsProtected) {
  UserDatabase users("admin", "secret");
  EXPECT_EQ(users.DeleteUser("admin").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(users.ModifyUser("admin", "x", AccessLevel::kUser).code(),
            StatusCode::kFailedPrecondition);
  // With a second admin, deletion works.
  ASSERT_TRUE(
      users.AddUser("root2", "pw", AccessLevel::kAdministrator).ok());
  EXPECT_TRUE(users.DeleteUser("admin").ok());
}

TEST(UserDatabaseTest, Introspection) {
  UserDatabase users("admin", "secret");
  users.AddUser("u1", "p", AccessLevel::kUser);
  EXPECT_TRUE(users.HasUser("u1"));
  EXPECT_EQ(*users.GetLevel("u1"), AccessLevel::kUser);
  EXPECT_EQ(users.UserNames().size(), 2u);
  EXPECT_TRUE(users.GetLevel("nope").status().IsNotFound());
}

// ---------- AnalysisSession ----------

sage::SageDataSet CleanSmallData(uint64_t seed = 42) {
  sage::GeneratorConfig config;
  config.seed = seed;
  config.panels = sage::SyntheticSageGenerator::SmallPanels();
  sage::SyntheticSage synth = sage::SyntheticSageGenerator(config).Generate();
  sage::CleanAndNormalize(synth.dataset);
  return std::move(synth.dataset);
}

class SessionTest : public testing::Test {
 protected:
  static void SetUpTestSuite() { data_ = new sage::SageDataSet(CleanSmallData()); }
  static void TearDownTestSuite() {
    delete data_;
    data_ = nullptr;
  }

  AnalysisSession LoggedInSession() {
    AnalysisSession session("admin", "secret");
    EXPECT_TRUE(
        session.Login("admin", "secret", AccessLevel::kAdministrator).ok());
    EXPECT_TRUE(session.LoadDataSet(*data_).ok());
    return session;
  }

  static sage::SageDataSet* data_;
};

sage::SageDataSet* SessionTest::data_ = nullptr;

TEST_F(SessionTest, OperationsRequireLogin) {
  AnalysisSession session("admin", "secret");
  EXPECT_TRUE(session.LoadDataSet(*data_).IsPermissionDenied());
  EXPECT_TRUE(session.CreateTissueDataSet(sage::TissueType::kBrain)
                  .IsPermissionDenied());
  EXPECT_FALSE(session.IsLoggedIn());
  EXPECT_FALSE(session.CurrentUser().ok());
}

TEST_F(SessionTest, LoginLogout) {
  AnalysisSession session("admin", "secret");
  EXPECT_TRUE(session.Login("admin", "bad", AccessLevel::kAdministrator)
                  .IsPermissionDenied());
  ASSERT_TRUE(
      session.Login("admin", "secret", AccessLevel::kAdministrator).ok());
  EXPECT_TRUE(session.IsLoggedIn());
  EXPECT_EQ(*session.CurrentUser(), "admin");
  session.Logout();
  EXPECT_FALSE(session.IsLoggedIn());
}

TEST_F(SessionTest, AdministrationRequiresAdminLevel) {
  AnalysisSession session("admin", "secret");
  ASSERT_TRUE(
      session.Login("admin", "secret", AccessLevel::kAdministrator).ok());
  ASSERT_TRUE(session.AddUser("jess", "pw", AccessLevel::kUser).ok());
  session.Logout();
  ASSERT_TRUE(session.Login("jess", "pw", AccessLevel::kUser).ok());
  EXPECT_TRUE(session.AddUser("x", "y", AccessLevel::kUser)
                  .IsPermissionDenied());
  EXPECT_TRUE(session.SetConfiguration("db_path", "/x").IsPermissionDenied());
  EXPECT_TRUE(session.InitializeDatabase().IsPermissionDenied());
  // But analysis operations are available to plain users.
  EXPECT_TRUE(session.LoadDataSet(*data_).ok());
  EXPECT_TRUE(session.CreateTissueDataSet(sage::TissueType::kBrain).ok());
}

TEST_F(SessionTest, ConfigurationDefaultsAndUpdates) {
  AnalysisSession session("admin", "secret");
  ASSERT_TRUE(
      session.Login("admin", "secret", AccessLevel::kAdministrator).ok());
  EXPECT_TRUE(session.GetConfiguration("db_path").ok());
  ASSERT_TRUE(session.SetConfiguration("db_path", "/tmp/gea").ok());
  EXPECT_EQ(*session.GetConfiguration("db_path"), "/tmp/gea");
  EXPECT_TRUE(session.GetConfiguration("nope").status().IsNotFound());
}

TEST_F(SessionTest, LoadDataSetBuildsRelations) {
  AnalysisSession session = LoggedInSession();
  EXPECT_TRUE(session.Relations().HasTable("Libraries"));
  EXPECT_TRUE(session.Relations().HasTable("Typeinfo"));
  EXPECT_TRUE(session.Relations().HasTable("Sageinfo"));
  EXPECT_TRUE(session.Lineage().FindByName("SAGE").ok());
}

TEST_F(SessionTest, TissueDataSetAndRedundancyCheck) {
  AnalysisSession session = LoggedInSession();
  ASSERT_TRUE(session.CreateTissueDataSet(sage::TissueType::kBrain).ok());
  Result<const core::EnumTable*> brain = session.GetEnum("brain");
  ASSERT_TRUE(brain.ok());
  EXPECT_EQ((*brain)->NumLibraries(), 12u);
  // Redundancy check (Fig. 4.28): refused without replace.
  EXPECT_TRUE(session.CreateTissueDataSet(sage::TissueType::kBrain)
                  .IsAlreadyExists());
  EXPECT_TRUE(session.CreateTissueDataSet(sage::TissueType::kBrain,
                                          /*replace=*/true)
                  .ok());
  // A tissue with no libraries in the small panel is NotFound.
  EXPECT_TRUE(session.CreateTissueDataSet(sage::TissueType::kKidney)
                  .IsNotFound());
}

TEST_F(SessionTest, CustomDataSet) {
  AnalysisSession session = LoggedInSession();
  std::vector<int> ids = {1, 2, 13};
  ASSERT_TRUE(session.CreateCustomDataSet("newBrain", ids).ok());
  Result<const core::EnumTable*> custom = session.GetEnum("newBrain");
  ASSERT_TRUE(custom.ok());
  EXPECT_EQ((*custom)->NumLibraries(), 3u);
  EXPECT_TRUE(
      session.CreateCustomDataSet("bad", {9999}).IsNotFound());
}

TEST_F(SessionTest, MetadataValidation) {
  AnalysisSession session = LoggedInSession();
  ASSERT_TRUE(session.CreateTissueDataSet(sage::TissueType::kBrain).ok());
  EXPECT_TRUE(
      session.GenerateMetadata("brain", 150.0, "m").IsInvalidArgument());
  EXPECT_TRUE(session.GenerateMetadata("nope", 10.0, "m").IsNotFound());
  ASSERT_TRUE(session.GenerateMetadata("brain", 10.0, "brainfile.meta").ok());
  EXPECT_TRUE(session.GenerateMetadata("brain", 10.0, "brainfile.meta")
                  .IsAlreadyExists());
  EXPECT_TRUE(session
                  .GenerateMetadata("brain", 10.0, "brainfile.meta",
                                    /*replace=*/true)
                  .ok());
}

TEST_F(SessionTest, SearchOperations) {
  AnalysisSession session = LoggedInSession();
  // Library info by id and name (Fig. 4.23).
  Result<sage::LibraryMeta> by_id = session.SearchLibrary(1);
  ASSERT_TRUE(by_id.ok());
  Result<sage::LibraryMeta> by_name = session.SearchLibrary(by_id->name);
  ASSERT_TRUE(by_name.ok());
  EXPECT_EQ(by_name->id, 1);
  EXPECT_TRUE(session.SearchLibrary(424242).status().IsNotFound());

  // Tissue type info (Fig. 4.24).
  Result<std::vector<std::string>> brains =
      session.LibrariesOfTissue(sage::TissueType::kBrain);
  ASSERT_TRUE(brains.ok());
  EXPECT_EQ(brains->size(), 12u);

  // Tag frequency (Figs. 4.25/4.26): values match the library's counts.
  const sage::SageLibrary& lib = (*session.DataSet())->library(0);
  ASSERT_FALSE(lib.entries().empty());
  sage::TagId tag = lib.entries().front().tag;
  Result<std::vector<AnalysisSession::TagFrequencyRow>> rows =
      session.TagFrequency(tag, tag, {lib.name()});
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ(rows->front().tag, tag);
  EXPECT_DOUBLE_EQ(rows->front().values[0], lib.Count(tag));

  EXPECT_TRUE(
      session.TagFrequency(tag, tag, {"missing_library"}).status()
          .IsNotFound());
}

TEST_F(SessionTest, SqlQueryOverAuxiliaryRelations) {
  AnalysisSession session = LoggedInSession();
  Result<rel::Table> out = session.Query(
      "SELECT Type, COUNT(*) AS n FROM Libraries GROUP BY Type ORDER BY "
      "Type");
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_EQ(out->NumRows(), 2u);  // brain + breast in the small panel
  EXPECT_EQ(out->Get(0, "Type")->AsString(), "brain");
  EXPECT_EQ(out->Get(0, "n")->AsInt(), 12);
  // Queries require login.
  session.Logout();
  EXPECT_TRUE(session.Query("SELECT * FROM Libraries").status()
                  .IsPermissionDenied());
}

TEST_F(SessionTest, RangeSearchOverStoredSumys) {
  AnalysisSession session = LoggedInSession();
  ASSERT_TRUE(session.CreateTissueDataSet(sage::TissueType::kBrain).ok());
  ASSERT_TRUE(session.GenerateMetadata("brain", 25.0, "meta").ok());
  Result<std::vector<std::string>> fascicles = session.CalculateFascicles(
      "brain", "meta", 150, 6, 3, "rs");
  ASSERT_TRUE(fascicles.ok());
  ASSERT_FALSE(fascicles->empty());
  const std::string sumy_name = fascicles->front() + "_SUMY";
  Result<const core::SumyTable*> sumy = session.GetSumy(sumy_name);
  ASSERT_TRUE(sumy.ok());
  ASSERT_GT((*sumy)->NumTags(), 0u);
  sage::TagId tag = (*sumy)->entry(0).tag;
  const core::SumyEntry& entry = (*sumy)->entry(0);

  // Query with the tag's own range: relation equals must match.
  Result<std::vector<core::RangeSearchHit>> hits = session.RangeSearchSumys(
      {sumy_name}, tag, tag, interval::AllenRelation::kEquals,
      {entry.min, entry.max});
  ASSERT_TRUE(hits.ok());
  ASSERT_EQ(hits->size(), 1u);
  EXPECT_EQ(hits->front().outcome,
            core::RangeSearchHit::Outcome::kMatch);

  EXPECT_TRUE(session
                  .RangeSearchSumys({"nope"}, tag, tag,
                                    interval::AllenRelation::kEquals,
                                    {0, 1})
                  .status()
                  .IsNotFound());
}

TEST_F(SessionTest, InitializeDatabaseClearsEverything) {
  AnalysisSession session = LoggedInSession();
  ASSERT_TRUE(session.CreateTissueDataSet(sage::TissueType::kBrain).ok());
  ASSERT_TRUE(session.InitializeDatabase().ok());
  // Only the built-in stat views survive (seven from obs plus
  // gea_stat_storage and gea_stat_transactions); every stored relation
  // is gone.
  EXPECT_EQ(session.Relations().NumTables(), 9u);
  for (const std::string& name : session.Relations().TableNames()) {
    EXPECT_EQ(name.rfind("gea_stat_", 0), 0u) << name;
  }
  EXPECT_TRUE(session.GetEnum("brain").status().IsNotFound());
  EXPECT_FALSE(session.DataSet().ok());
}

TEST_F(SessionTest, LineageDeleteCascadeDropsTables) {
  AnalysisSession session = LoggedInSession();
  ASSERT_TRUE(session.CreateTissueDataSet(sage::TissueType::kBrain).ok());
  ASSERT_TRUE(session.GenerateMetadata("brain", 25.0, "meta").ok());
  Result<std::vector<std::string>> fascicles = session.CalculateFascicles(
      "brain", "meta", /*min_compact_tags=*/150, /*batch_size=*/6,
      /*min_size=*/3, "brain150");
  ASSERT_TRUE(fascicles.ok()) << fascicles.status().ToString();
  ASSERT_FALSE(fascicles->empty());
  const std::string& fas = fascicles->front();
  ASSERT_TRUE(session.GetEnum(fas).ok());
  ASSERT_TRUE(session.GetSumy(fas + "_SUMY").ok());
  ASSERT_TRUE(session.CommentOn(fas, "interesting compact tags").ok());

  // Cascade delete removes the fascicle and its SUMY.
  ASSERT_TRUE(session.DeleteTable(fas, /*cascade=*/true).ok());
  EXPECT_TRUE(session.GetEnum(fas).status().IsNotFound());
  EXPECT_TRUE(session.GetSumy(fas + "_SUMY").status().IsNotFound());
}

TEST_F(SessionTest, DeleteContentsKeepsLineageMetadata) {
  AnalysisSession session = LoggedInSession();
  ASSERT_TRUE(session.CreateTissueDataSet(sage::TissueType::kBreast).ok());
  ASSERT_TRUE(session.DeleteTable("breast", /*cascade=*/false).ok());
  EXPECT_TRUE(session.GetEnum("breast").status().IsNotFound());
  // The lineage node survives with its parameters for regeneration.
  Result<lineage::LineageGraph::NodeId> node =
      session.Lineage().FindByName("breast");
  ASSERT_TRUE(node.ok());
  EXPECT_FALSE((*session.Lineage().GetNode(*node))->has_contents);
}

// ---------- Observability: query log + EXPLAIN ----------

TEST_F(SessionTest, QueryLogRecordsSuccessAndFailure) {
  AnalysisSession session = LoggedInSession();
  EXPECT_TRUE(session.ExplainLast().status().IsNotFound());

  ASSERT_TRUE(session.CreateTissueDataSet(sage::TissueType::kBrain).ok());
  ASSERT_EQ(session.QueryLog().size(), 1u);
  EXPECT_EQ(session.QueryLog()[0].operation, "tissue_dataset");
  EXPECT_EQ(session.QueryLog()[0].detail, "brain");
  EXPECT_TRUE(session.QueryLog()[0].ok);

  // A failing operation is logged too, with its status message.
  EXPECT_FALSE(session.CreateGap("no_such", "sumys", "g").ok());
  ASSERT_EQ(session.QueryLog().size(), 2u);
  EXPECT_EQ(session.QueryLog()[1].operation, "create_gap");
  EXPECT_FALSE(session.QueryLog()[1].ok);
  EXPECT_FALSE(session.QueryLog()[1].error.empty());

  session.ClearQueryLog();
  EXPECT_TRUE(session.QueryLog().empty());
}

TEST_F(SessionTest, QueryLogIsABoundedRing) {
  AnalysisSession session = LoggedInSession();
  session.ClearQueryLog();
  ASSERT_EQ(session.QueryLogCapacity(), 1024u);  // default
  session.SetQueryLogCapacity(3);
  EXPECT_EQ(session.QueryLogCapacity(), 3u);

  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(
        session.Query("SELECT COUNT(*) AS n" + std::to_string(i) +
                      " FROM Libraries")
            .ok());
  }

  // Only the newest three entries survive, in order.
  std::vector<AnalysisSession::QueryLogEntry> log = session.QueryLog();
  ASSERT_EQ(log.size(), 3u);
  EXPECT_NE(log[0].detail.find("n2"), std::string::npos);
  EXPECT_NE(log[2].detail.find("n4"), std::string::npos);

  // Eviction never touches the last profile: EXPLAIN still works even
  // after its entry ages out of the ring.
  session.SetQueryLogCapacity(1);
  EXPECT_EQ(session.QueryLog().size(), 1u);
  Result<std::string> explain = session.ExplainLast();
  ASSERT_TRUE(explain.ok()) << explain.status().ToString();
  EXPECT_NE(explain->find("sql_query"), std::string::npos);

  // Capacity 0 is clamped to 1 rather than disabling the log.
  session.SetQueryLogCapacity(0);
  EXPECT_EQ(session.QueryLogCapacity(), 1u);
}

TEST_F(SessionTest, AuthenticateUserIsLoggedWithoutChangingLogin) {
  AnalysisSession session = LoggedInSession();
  ASSERT_TRUE(
      session.AddUser("reader", "pw", AccessLevel::kUser).ok());
  session.ClearQueryLog();

  Result<AccessLevel> level =
      session.AuthenticateUser("reader", "pw", AccessLevel::kUser);
  ASSERT_TRUE(level.ok());
  EXPECT_EQ(*level, AccessLevel::kUser);
  EXPECT_TRUE(
      session.AuthenticateUser("reader", "wrong", AccessLevel::kUser)
          .status()
          .IsPermissionDenied());

  // Both attempts hit the query log; the session identity is untouched.
  std::vector<AnalysisSession::QueryLogEntry> log = session.QueryLog();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0].operation, "login");
  EXPECT_TRUE(log[0].ok);
  EXPECT_FALSE(log[1].ok);
  ASSERT_TRUE(session.CurrentUser().ok());
  EXPECT_EQ(*session.CurrentUser(), "admin");
}

TEST_F(SessionTest, ExplainLastOnPopulateThenDiffPipeline) {
  obs::ScopedMetricsEnable metrics(true);
  obs::ScopedTraceEnable trace(true);

  AnalysisSession session = LoggedInSession();
  ASSERT_TRUE(session.CreateTissueDataSet(sage::TissueType::kBrain).ok());
  ASSERT_TRUE(session.CreateTissueDataSet(sage::TissueType::kBreast).ok());
  ASSERT_TRUE(session.Aggregate("brain", "brain_sumy").ok());
  ASSERT_TRUE(session.Aggregate("breast", "breast_sumy").ok());

  // populate: the profile's counters must match the produced table.
  ASSERT_TRUE(session.Populate("brain_sumy", "brain", "brain_pop").ok());
  Result<const obs::OperationProfile*> populate_profile =
      session.LastProfile();
  ASSERT_TRUE(populate_profile.ok());
  EXPECT_EQ((*populate_profile)->operation, "populate");
  Result<const core::EnumTable*> populated = session.GetEnum("brain_pop");
  ASSERT_TRUE(populated.ok());
  uint64_t rows_delta = 0, candidates_delta = 0;
  for (const obs::CounterDelta& d : (*populate_profile)->counters) {
    if (d.name == "gea.populate.rows_materialized") rows_delta = d.delta;
    if (d.name == "gea.populate.candidates_verified") {
      candidates_delta = d.delta;
    }
  }
  EXPECT_EQ(rows_delta, (*populated)->NumLibraries());
  EXPECT_GE(candidates_delta, rows_delta);
  bool saw_populate_span = false, saw_child_span = false;
  for (const obs::SpanRecord& span : (*populate_profile)->spans) {
    if (span.name == "populate") saw_populate_span = true;
    if (span.parent_id != 0) saw_child_span = true;
  }
  EXPECT_TRUE(saw_populate_span);
  EXPECT_TRUE(saw_child_span);

  // diff (CreateGap): tags_compared is the sum of both SUMY sizes.
  Result<const core::SumyTable*> s1 = session.GetSumy("brain_sumy");
  Result<const core::SumyTable*> s2 = session.GetSumy("breast_sumy");
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(s2.ok());
  ASSERT_TRUE(session.CreateGap("brain_sumy", "breast_sumy", "g").ok());
  Result<std::string> explain = session.ExplainLast();
  ASSERT_TRUE(explain.ok());
  EXPECT_NE(explain->find("create_gap"), std::string::npos);
  EXPECT_NE(explain->find("spans:"), std::string::npos);
  EXPECT_NE(explain->find("diff"), std::string::npos);
  EXPECT_NE(explain->find("counters:"), std::string::npos);
  EXPECT_NE(explain->find("gea.diff.tags_compared"), std::string::npos);

  Result<const obs::OperationProfile*> gap_profile = session.LastProfile();
  ASSERT_TRUE(gap_profile.ok());
  uint64_t tags_compared = 0;
  for (const obs::CounterDelta& d : (*gap_profile)->counters) {
    if (d.name == "gea.diff.tags_compared") tags_compared = d.delta;
  }
  EXPECT_EQ(tags_compared, (*s1)->NumTags() + (*s2)->NumTags());
}

TEST_F(SessionTest, ExplainLastOnMine) {
  obs::ScopedMetricsEnable metrics(true);
  obs::ScopedTraceEnable trace(true);

  AnalysisSession session = LoggedInSession();
  ASSERT_TRUE(session.CreateTissueDataSet(sage::TissueType::kBrain).ok());
  ASSERT_TRUE(session.GenerateMetadata("brain", 25.0, "meta").ok());
  Result<std::vector<std::string>> fascicles = session.CalculateFascicles(
      "brain", "meta", /*min_compact_tags=*/150, /*batch_size=*/6,
      /*min_size=*/3, "brain150");
  ASSERT_TRUE(fascicles.ok()) << fascicles.status().ToString();

  Result<const obs::OperationProfile*> profile = session.LastProfile();
  ASSERT_TRUE(profile.ok());
  EXPECT_EQ((*profile)->operation, "fascicles");
  bool saw_mine_span = false;
  for (const obs::SpanRecord& span : (*profile)->spans) {
    if (span.name == "mine") saw_mine_span = true;
  }
  EXPECT_TRUE(saw_mine_span);
  uint64_t mine_calls = 0, candidates = 0;
  for (const obs::CounterDelta& d : (*profile)->counters) {
    if (d.name == "gea.mine.calls") mine_calls = d.delta;
    if (d.name == "gea.fascicles.candidates_evaluated") candidates = d.delta;
  }
  EXPECT_GE(mine_calls, 1u);
  EXPECT_GE(candidates, 1u);

  Result<std::string> explain = session.ExplainLast();
  ASSERT_TRUE(explain.ok());
  EXPECT_NE(explain->find("fascicles"), std::string::npos);
  EXPECT_NE(explain->find("mine"), std::string::npos);
  EXPECT_NE(explain->find("gea.mine.calls"), std::string::npos);
}

TEST_F(SessionTest, ExplainLastOnGapAndSumySelections) {
  obs::ScopedMetricsEnable metrics(true);
  obs::ScopedTraceEnable trace(true);

  AnalysisSession session = LoggedInSession();
  ASSERT_TRUE(session.CreateTissueDataSet(sage::TissueType::kBrain).ok());
  ASSERT_TRUE(session.CreateTissueDataSet(sage::TissueType::kBreast).ok());
  ASSERT_TRUE(session.Aggregate("brain", "brain_sumy").ok());
  ASSERT_TRUE(session.Aggregate("breast", "breast_sumy").ok());
  ASSERT_TRUE(session.CreateGap("brain_sumy", "breast_sumy", "g").ok());
  ASSERT_TRUE(session
                  .CompareGapTables("g", "g", core::GapCompareKind::kUnion,
                                    "g_cmp")
                  .ok());

  // RunGapQuery runs the gap selection operator: "gap.select" span plus
  // the tags_scanned/rows_kept counters.
  ASSERT_TRUE(session
                  .RunGapQuery("g_cmp",
                               core::GapCompareQuery::kNonNullInBoth, "g_q5")
                  .ok());
  Result<const obs::OperationProfile*> gap_profile = session.LastProfile();
  ASSERT_TRUE(gap_profile.ok());
  EXPECT_EQ((*gap_profile)->operation, "gap_query");
  bool saw_select_span = false;
  for (const obs::SpanRecord& span : (*gap_profile)->spans) {
    if (span.name == "gap.select") saw_select_span = true;
  }
  EXPECT_TRUE(saw_select_span);
  uint64_t tags_scanned = 0;
  for (const obs::CounterDelta& d : (*gap_profile)->counters) {
    if (d.name == "gea.gap.select.tags_scanned") tags_scanned = d.delta;
  }
  EXPECT_GE(tags_scanned, 1u);
  Result<std::string> explain = session.ExplainLast();
  ASSERT_TRUE(explain.ok());
  EXPECT_NE(explain->find("gap_query"), std::string::npos);
  EXPECT_NE(explain->find("gap.select"), std::string::npos);

  // RangeSearchSumys is a logged operation now: "range_search" with the
  // sumy.range_search span and counter.
  Result<const core::SumyTable*> sumy = session.GetSumy("brain_sumy");
  ASSERT_TRUE(sumy.ok());
  ASSERT_GT((*sumy)->NumTags(), 0u);
  const core::SumyEntry& entry = (*sumy)->entry(0);
  Result<std::vector<core::RangeSearchHit>> hits = session.RangeSearchSumys(
      {"brain_sumy"}, entry.tag, entry.tag, interval::AllenRelation::kEquals,
      {entry.min, entry.max});
  ASSERT_TRUE(hits.ok());
  Result<const obs::OperationProfile*> range_profile = session.LastProfile();
  ASSERT_TRUE(range_profile.ok());
  EXPECT_EQ((*range_profile)->operation, "range_search");
  bool saw_range_span = false;
  for (const obs::SpanRecord& span : (*range_profile)->spans) {
    if (span.name == "sumy.range_search") saw_range_span = true;
  }
  EXPECT_TRUE(saw_range_span);
  uint64_t range_calls = 0;
  for (const obs::CounterDelta& d : (*range_profile)->counters) {
    if (d.name == "gea.sumy.range_search.calls") range_calls = d.delta;
  }
  EXPECT_EQ(range_calls, 1u);
  EXPECT_EQ(session.QueryLog().back().operation, "range_search");
}

TEST_F(SessionTest, SlowQueryLogEmitsStructuredRecord) {
  obs::ScopedMetricsEnable metrics(true);
  obs::ScopedLogCapture capture;   // threshold down to debug, buffered
  obs::ScopedSlowQueryMs slow(0);  // every operation is "slow"

  AnalysisSession session = LoggedInSession();
  ASSERT_TRUE(session.CreateTissueDataSet(sage::TissueType::kBrain).ok());

  const std::string out = capture.str();
  // Find the tissue_dataset slow-query record among the captured lines.
  std::string record;
  size_t start = 0;
  while (start < out.size()) {
    size_t nl = out.find('\n', start);
    if (nl == std::string::npos) nl = out.size();
    const std::string line = out.substr(start, nl - start);
    if (line.find("\"event\":\"slow_query\"") != std::string::npos &&
        line.find("\"operation\":\"tissue_dataset\"") != std::string::npos) {
      record = line;
    }
    start = nl + 1;
  }
  ASSERT_FALSE(record.empty()) << out;
  std::string error;
  EXPECT_TRUE(obs::internal::ValidateJson(record, &error)) << error << "\n"
                                                           << record;
  EXPECT_NE(record.find("\"level\":\"warn\""), std::string::npos);
  EXPECT_NE(record.find("\"detail\":\"brain\""), std::string::npos);
  EXPECT_NE(record.find("\"elapsed_ms\":"), std::string::npos);
  EXPECT_NE(record.find("\"threshold_ms\":0"), std::string::npos);
  EXPECT_NE(record.find("\"ok\":true"), std::string::npos);
  EXPECT_NE(record.find("\"user\":\"admin\""), std::string::npos);

  // An operation that moves registry counters carries them in the
  // record: populate reports rows_materialized (metrics are on).
  ASSERT_TRUE(session.Aggregate("brain", "brain_sumy").ok());
  ASSERT_TRUE(session.Populate("brain_sumy", "brain", "brain_pop").ok());
  const std::string with_counters = capture.str();
  size_t populate_at =
      with_counters.find("\"operation\":\"populate\"");
  ASSERT_NE(populate_at, std::string::npos);
  const std::string populate_record = with_counters.substr(
      with_counters.rfind('\n', populate_at) + 1,
      with_counters.find('\n', populate_at) -
          with_counters.rfind('\n', populate_at) - 1);
  EXPECT_TRUE(obs::internal::ValidateJson(populate_record, &error))
      << error << "\n" << populate_record;
  EXPECT_NE(populate_record.find("\"counters\":{"), std::string::npos);
  EXPECT_NE(populate_record.find("gea.populate.rows_materialized"),
            std::string::npos);

  // A failing operation logs ok:false with the error message.
  EXPECT_FALSE(session.CreateGap("no_such", "tables", "g").ok());
  const std::string after = capture.str();
  EXPECT_NE(after.find("\"operation\":\"create_gap\""), std::string::npos);
  EXPECT_NE(after.find("\"ok\":false"), std::string::npos);
  EXPECT_NE(after.find("\"error\":"), std::string::npos);
}

TEST_F(SessionTest, SlowQueryLogSilentWhenDisabled) {
  obs::ScopedLogCapture capture;
  obs::ScopedSlowQueryMs off(std::nullopt);

  AnalysisSession session = LoggedInSession();
  ASSERT_TRUE(session.CreateTissueDataSet(sage::TissueType::kBrain).ok());
  EXPECT_EQ(capture.str().find("slow_query"), std::string::npos);
}

}  // namespace
}  // namespace gea::workbench
