// End-to-end integration tests reproducing the *shape* of the thesis's
// Chapter 4 case studies on the synthetic SAGE data:
//   Case 1 (4.3.1): cancerous brain in fascicle vs normal brain.
//   Case 2 (4.3.2): cancerous brain inside vs outside the fascicle.
//   Case 3 (4.3.3): genes always lower in cancer across tissue types.
//   Case 4 (4.3.4): genes unique to one type of cancer.
//   Case 5 (4.3.5): verification in the extensional world.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "core/gap_compare.h"
#include "core/gap_ops.h"
#include "sage/cleaning.h"
#include "sage/generator.h"
#include "workbench/session.h"

namespace gea {
namespace {

using core::GapCompareKind;
using core::GapCompareQuery;
using core::GapTable;
using sage::TagId;
using workbench::AccessLevel;
using workbench::AnalysisSession;

constexpr double kMetaPercent = 25.0;
constexpr size_t kMinCompact = 150;

// One shared pipeline for the whole suite: generate, clean, mine both
// tissue types, and form the control groups + GAP tables of Cases 1-3.
class CaseStudies : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    sage::GeneratorConfig config;
    config.seed = 42;
    config.panels = sage::SyntheticSageGenerator::SmallPanels();
    synth_ = new sage::SyntheticSage(
        sage::SyntheticSageGenerator(config).Generate());
    sage::CleanAndNormalize(synth_->dataset);

    session_ = new AnalysisSession("admin", "secret");
    ASSERT_TRUE(
        session_->Login("admin", "secret", AccessLevel::kAdministrator)
            .ok());
    ASSERT_TRUE(session_->LoadDataSet(synth_->dataset).ok());

    for (sage::TissueType tissue :
         {sage::TissueType::kBrain, sage::TissueType::kBreast}) {
      const std::string name = sage::TissueTypeName(tissue);
      ASSERT_TRUE(session_->CreateTissueDataSet(tissue).ok());
      ASSERT_TRUE(
          session_->GenerateMetadata(name, kMetaPercent, name + ".meta")
              .ok());
      Result<std::vector<std::string>> fascicles =
          session_->CalculateFascicles(name, name + ".meta", kMinCompact,
                                       /*batch_size=*/6, /*min_size=*/3,
                                       name + "25k");
      ASSERT_TRUE(fascicles.ok()) << fascicles.status().ToString();
      ASSERT_FALSE(fascicles->empty());

      // Pick the largest pure-cancer fascicle (the thesis's purity check,
      // Fig. 4.8). Fascicles come back largest first.
      std::string chosen;
      for (const std::string& fas : *fascicles) {
        Result<std::vector<core::PurityProperty>> purity =
            session_->CheckPurity(fas);
        ASSERT_TRUE(purity.ok());
        if (std::find(purity->begin(), purity->end(),
                      core::PurityProperty::kCancer) != purity->end()) {
          chosen = fas;
          break;
        }
      }
      ASSERT_FALSE(chosen.empty()) << "no pure cancer fascicle in " << name;
      fascicle_[tissue] = chosen;

      Result<AnalysisSession::ControlGroups> groups =
          session_->FormControlGroups(name, chosen);
      ASSERT_TRUE(groups.ok()) << groups.status().ToString();
      groups_[tissue] = *groups;

      // GAP1 = diff(cancer-in-fascicle, normal); GAP2 = diff(cancer-in-
      // fascicle, cancer-not-in-fascicle).
      ASSERT_TRUE(session_
                      ->CreateGap(groups->fascicle_sumy,
                                  groups->opposite_sumy,
                                  name + "_canvsnor_gap")
                      .ok());
      ASSERT_TRUE(session_
                      ->CreateGap(groups->fascicle_sumy,
                                  groups->not_in_fas_sumy,
                                  name + "_canvscnif_gap")
                      .ok());
    }
  }

  static void TearDownTestSuite() {
    delete session_;
    session_ = nullptr;
    delete synth_;
    synth_ = nullptr;
  }

  static bool Contains(const std::vector<TagId>& sorted, TagId tag) {
    return std::binary_search(sorted.begin(), sorted.end(), tag);
  }

  static sage::SyntheticSage* synth_;
  static AnalysisSession* session_;
  static std::map<sage::TissueType, std::string> fascicle_;
  static std::map<sage::TissueType, AnalysisSession::ControlGroups> groups_;
};

sage::SyntheticSage* CaseStudies::synth_ = nullptr;
AnalysisSession* CaseStudies::session_ = nullptr;
std::map<sage::TissueType, std::string> CaseStudies::fascicle_;
std::map<sage::TissueType, AnalysisSession::ControlGroups>
    CaseStudies::groups_;

// ---- Case 1 ----

TEST_F(CaseStudies, Case1FascicleIsTheCoreCancerSubtype) {
  Result<const core::EnumTable*> fas =
      session_->GetEnum(fascicle_[sage::TissueType::kBrain]);
  ASSERT_TRUE(fas.ok());
  // Pure cancer...
  EXPECT_TRUE(core::IsPure(**fas, core::PurityProperty::kCancer));
  // ...and it recovers the planted core subtype exactly.
  std::set<int> members;
  for (const sage::LibraryMeta& lib : (*fas)->libraries()) {
    members.insert(lib.id);
  }
  const auto& core_ids =
      synth_->truth.core_cancer_library_ids.at(sage::TissueType::kBrain);
  EXPECT_EQ(members, std::set<int>(core_ids.begin(), core_ids.end()));
}

TEST_F(CaseStudies, Case1PositiveGapsAreUpRegulatedTags) {
  // Fig. 4.2's shape: tags with positive gaps are expressed higher in the
  // cancer fascicle than in normal tissue — the planted up-regulated
  // tags; negative gaps are the silenced tags (Fig. 4.3).
  Result<const GapTable*> gap = session_->GetGap("brain_canvsnor_gap");
  ASSERT_TRUE(gap.ok());

  std::set<TagId> up(synth_->truth.cancer_up.at(sage::TissueType::kBrain)
                         .begin(),
                     synth_->truth.cancer_up.at(sage::TissueType::kBrain)
                         .end());
  up.insert(synth_->truth.shared_cancer_up.begin(),
            synth_->truth.shared_cancer_up.end());
  std::set<TagId> down(
      synth_->truth.cancer_down.at(sage::TissueType::kBrain).begin(),
      synth_->truth.cancer_down.at(sage::TissueType::kBrain).end());
  down.insert(synth_->truth.shared_cancer_down.begin(),
              synth_->truth.shared_cancer_down.end());

  size_t up_positive = 0;
  size_t up_total = 0;
  size_t down_negative = 0;
  size_t down_total = 0;
  for (const core::GapEntry& e : (*gap)->entries()) {
    if (!e.gaps[0].has_value()) continue;
    if (up.count(e.tag) > 0) {
      ++up_total;
      if (*e.gaps[0] > 0) ++up_positive;
    } else if (down.count(e.tag) > 0) {
      ++down_total;
      if (*e.gaps[0] < 0) ++down_negative;
    }
  }
  ASSERT_GT(up_total, 0u);
  ASSERT_GT(down_total, 10u);
  // A stray tag can invert when its lognormal abundance draws cross;
  // the overwhelming majority must carry the planted sign.
  EXPECT_GE(up_positive * 10, up_total * 9);
  EXPECT_EQ(down_negative, down_total);
}

TEST_F(CaseStudies, Case1TopGapsAreDominatedByPlantedBiology) {
  Result<std::string> top_name =
      session_->CalculateTopGap("brain_canvsnor_gap", 10);
  ASSERT_TRUE(top_name.ok());
  Result<const GapTable*> top = session_->GetGap(*top_name);
  ASSERT_TRUE(top.ok());
  EXPECT_EQ((*top)->NumTags(), 10u);

  std::set<TagId> planted;
  auto insert_all = [&planted](const std::vector<TagId>& tags) {
    planted.insert(tags.begin(), tags.end());
  };
  insert_all(synth_->truth.cancer_up.at(sage::TissueType::kBrain));
  insert_all(synth_->truth.cancer_down.at(sage::TissueType::kBrain));
  insert_all(synth_->truth.shared_cancer_up);
  insert_all(synth_->truth.shared_cancer_down);
  insert_all(synth_->truth.signature.at(sage::TissueType::kBrain));
  insert_all(synth_->truth.housekeeping);
  insert_all(synth_->truth.baseline.at(sage::TissueType::kBrain));

  size_t regulated = 0;
  for (const core::GapEntry& e : (*top)->entries()) {
    if (planted.count(e.tag) > 0) ++regulated;
  }
  // Every top-gap tag must be real biology, not sequencing noise.
  EXPECT_EQ(regulated, (*top)->NumTags());
}

// ---- Case 2 ----

TEST_F(CaseStudies, Case2InsideVsOutsideGapsAreSmallerThanVsNormal) {
  // Section 4.3.2: "the GAP values found between the cancerous tissue
  // inside of the fascicle and normal tissue are often larger than the
  // GAP values found between the cancerous tissue inside and outside of
  // the fascicle."
  Result<const GapTable*> vs_normal =
      session_->GetGap("brain_canvsnor_gap");
  Result<const GapTable*> vs_outside =
      session_->GetGap("brain_canvscnif_gap");
  ASSERT_TRUE(vs_normal.ok());
  ASSERT_TRUE(vs_outside.ok());

  double sum_normal = 0.0;
  size_t n_normal = 0;
  for (const core::GapEntry& e : (*vs_normal)->entries()) {
    if (e.gaps[0].has_value()) {
      sum_normal += std::abs(*e.gaps[0]);
      ++n_normal;
    }
  }
  double sum_outside = 0.0;
  size_t n_outside = 0;
  for (const core::GapEntry& e : (*vs_outside)->entries()) {
    if (e.gaps[0].has_value()) {
      sum_outside += std::abs(*e.gaps[0]);
      ++n_outside;
    }
  }
  ASSERT_GT(n_normal, 0u);
  ASSERT_GT(n_outside, 0u);
  EXPECT_GT(sum_normal / static_cast<double>(n_normal),
            sum_outside / static_cast<double>(n_outside));
}

TEST_F(CaseStudies, Case2ControlGroupsPartitionTheCancerLibraries) {
  const AnalysisSession::ControlGroups& groups =
      groups_[sage::TissueType::kBrain];
  Result<const core::EnumTable*> fas =
      session_->GetEnum(fascicle_[sage::TissueType::kBrain]);
  Result<const core::EnumTable*> outside =
      session_->GetEnum(groups.not_in_fas_enum);
  Result<const core::EnumTable*> normals =
      session_->GetEnum(groups.opposite_enum);
  ASSERT_TRUE(fas.ok());
  ASSERT_TRUE(outside.ok());
  ASSERT_TRUE(normals.ok());
  // 8 brain cancer libraries split into fascicle + outside; 4 normals.
  EXPECT_EQ((*fas)->NumLibraries() + (*outside)->NumLibraries(), 8u);
  EXPECT_GT((*outside)->NumLibraries(), 0u);
  EXPECT_EQ((*normals)->NumLibraries(), 4u);
  // No overlap between inside and outside.
  for (const sage::LibraryMeta& lib : (*outside)->libraries()) {
    EXPECT_FALSE((*fas)->FindLibraryRow(lib.id).has_value());
  }
  // The control groups live on the fascicle's compact tags.
  EXPECT_EQ((*outside)->tags(), (*fas)->tags());
  EXPECT_EQ((*normals)->tags(), (*fas)->tags());
}

// ---- Case 3 ----

TEST_F(CaseStudies, Case3IntersectionFindsPanTissueSilencedGenes) {
  ASSERT_TRUE(session_
                  ->CompareGapTables("brain_canvsnor_gap",
                                     "breast_canvsnor_gap",
                                     GapCompareKind::kIntersect,
                                     "brainBreastIntersect1")
                  .ok());
  ASSERT_TRUE(session_
                  ->RunGapQuery("brainBreastIntersect1",
                                GapCompareQuery::kLowerInAInBoth,
                                "alwaysLowerInCancer")
                  .ok());
  Result<const GapTable*> result = session_->GetGap("alwaysLowerInCancer");
  ASSERT_TRUE(result.ok());
  ASSERT_GT((*result)->NumTags(), 0u);

  std::set<TagId> shared_down(synth_->truth.shared_cancer_down.begin(),
                              synth_->truth.shared_cancer_down.end());
  size_t recovered = 0;
  for (const core::GapEntry& e : (*result)->entries()) {
    // Everything the query returns must be a pan-tissue silenced gene.
    EXPECT_TRUE(shared_down.count(e.tag) > 0)
        << sage::TagLabel(e.tag) << " is not a planted shared-down tag";
    if (shared_down.count(e.tag) > 0) ++recovered;
  }
  // And a substantial part of the planted set is recovered.
  EXPECT_GE(recovered, shared_down.size() / 3);
}

TEST_F(CaseStudies, Case3Query1FindsPanTissueUpRegulatedGenes) {
  ASSERT_TRUE(session_
                  ->RunGapQuery("brainBreastIntersect1",
                                GapCompareQuery::kHigherInAInBoth,
                                "alwaysHigherInCancer")
                  .ok());
  Result<const GapTable*> result = session_->GetGap("alwaysHigherInCancer");
  ASSERT_TRUE(result.ok());
  std::set<TagId> shared_up(synth_->truth.shared_cancer_up.begin(),
                            synth_->truth.shared_cancer_up.end());
  for (const core::GapEntry& e : (*result)->entries()) {
    EXPECT_TRUE(shared_up.count(e.tag) > 0) << sage::TagLabel(e.tag);
  }
}

// ---- Case 4 ----

TEST_F(CaseStudies, Case4DifferenceFindsBrainUniqueGenes) {
  ASSERT_TRUE(session_
                  ->CompareGapTables("brain_canvsnor_gap",
                                     "breast_canvsnor_gap",
                                     GapCompareKind::kDifference,
                                     "brainBreastDiff1")
                  .ok());
  ASSERT_TRUE(session_
                  ->RunGapQuery("brainBreastDiff1",
                                GapCompareQuery::kLowerInAInBoth,
                                "brainOnlyLower")
                  .ok());
  Result<const GapTable*> result = session_->GetGap("brainOnlyLower");
  ASSERT_TRUE(result.ok());
  ASSERT_GT((*result)->NumTags(), 0u);

  // Brain-specific silenced tags may appear; pan-tissue silenced tags
  // that the breast gap also carries must NOT.
  std::set<TagId> breast_tags;
  Result<const GapTable*> breast_gap =
      session_->GetGap("breast_canvsnor_gap");
  ASSERT_TRUE(breast_gap.ok());
  for (const core::GapEntry& e : (*breast_gap)->entries()) {
    breast_tags.insert(e.tag);
  }
  for (const core::GapEntry& e : (*result)->entries()) {
    EXPECT_EQ(breast_tags.count(e.tag), 0u) << sage::TagLabel(e.tag);
  }
  // At least one planted brain-specific silenced gene shows up.
  std::set<TagId> brain_down(
      synth_->truth.cancer_down.at(sage::TissueType::kBrain).begin(),
      synth_->truth.cancer_down.at(sage::TissueType::kBrain).end());
  size_t brain_specific = 0;
  for (const core::GapEntry& e : (*result)->entries()) {
    if (brain_down.count(e.tag) > 0) ++brain_specific;
  }
  EXPECT_GT(brain_specific, 0u);
}

// ---- Case 5 ----

TEST_F(CaseStudies, Case5VerificationWithUserDefinedDataSet) {
  // Remove one library from the brain data set (Fig. 4.15) and redo the
  // Case 1 aggregation: the gap signs of the planted biology survive.
  Result<const core::EnumTable*> brain = session_->GetEnum("brain");
  ASSERT_TRUE(brain.ok());
  std::vector<int> kept_ids;
  for (const sage::LibraryMeta& lib : (*brain)->libraries()) {
    kept_ids.push_back(lib.id);
  }
  kept_ids.pop_back();  // drop the last library
  ASSERT_TRUE(session_->CreateCustomDataSet("newBrain", kept_ids).ok());

  Result<const core::EnumTable*> custom = session_->GetEnum("newBrain");
  ASSERT_TRUE(custom.ok());
  EXPECT_EQ((*custom)->NumLibraries(), kept_ids.size());

  // Re-run the comparison on the reduced data set via the raw operators.
  Result<const core::EnumTable*> fas =
      session_->GetEnum(fascicle_[sage::TissueType::kBrain]);
  ASSERT_TRUE(fas.ok());
  Result<core::EnumTable> compact =
      (*custom)->RestrictTags("newBrain_compact", (*fas)->tags());
  ASSERT_TRUE(compact.ok());
  core::EnumTable normals = compact->FilterLibraries(
      "newBrain_norm", [](const sage::LibraryMeta& lib) {
        return lib.state == sage::NeoplasticState::kNormal;
      });
  ASSERT_GT(normals.NumLibraries(), 0u);
  Result<core::SumyTable> normal_sumy =
      core::Aggregate(normals, "newBrain_norm_sumy");
  ASSERT_TRUE(normal_sumy.ok());
  Result<const core::SumyTable*> fas_sumy =
      session_->GetSumy(groups_[sage::TissueType::kBrain].fascicle_sumy);
  ASSERT_TRUE(fas_sumy.ok());
  Result<GapTable> gap =
      core::Diff(**fas_sumy, *normal_sumy, "newBrain_gap");
  ASSERT_TRUE(gap.ok());

  std::set<TagId> down(
      synth_->truth.cancer_down.at(sage::TissueType::kBrain).begin(),
      synth_->truth.cancer_down.at(sage::TissueType::kBrain).end());
  for (const core::GapEntry& e : gap->entries()) {
    if (!e.gaps[0].has_value() || down.count(e.tag) == 0) continue;
    EXPECT_LT(*e.gaps[0], 0.0) << sage::TagLabel(e.tag);
  }
}

// ---- Lineage across the whole pipeline ----

TEST_F(CaseStudies, LineageTracksTheWholeAnalysis) {
  const lineage::LineageGraph& lineage = session_->Lineage();
  Result<lineage::LineageGraph::NodeId> gap_node =
      lineage.FindByName("brain_canvsnor_gap");
  ASSERT_TRUE(gap_node.ok());
  const lineage::LineageGraph::Node* node = *lineage.GetNode(*gap_node);
  EXPECT_EQ(node->operation, "diff");
  EXPECT_EQ(node->parents.size(), 2u);
}

}  // namespace
}  // namespace gea
