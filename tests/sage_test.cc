// Tests for SageLibrary, SageDataSet, the rotated ExpressionMatrix and the
// relational stat builders.

#include <gtest/gtest.h>

#include "rel/ops.h"
#include "sage/dataset.h"
#include "sage/library.h"
#include "sage/matrix.h"
#include "sage/stats.h"

namespace gea::sage {
namespace {

SageLibrary MakeLib(int id, const std::string& name, TissueType tissue,
                    NeoplasticState state,
                    std::vector<std::pair<TagId, double>> counts,
                    TissueSource source = TissueSource::kBulkTissue) {
  SageLibrary lib(id, name, tissue, state, source);
  for (const auto& [tag, count] : counts) lib.SetCount(tag, count);
  return lib;
}

// ---------- SageLibrary ----------

TEST(LibraryTest, CountsAndTotals) {
  SageLibrary lib = MakeLib(1, "L1", TissueType::kBrain,
                            NeoplasticState::kNormal,
                            {{10, 5.0}, {20, 3.0}, {5, 2.0}});
  EXPECT_DOUBLE_EQ(lib.Count(10), 5.0);
  EXPECT_DOUBLE_EQ(lib.Count(999), 0.0);
  EXPECT_EQ(lib.UniqueTagCount(), 3u);
  EXPECT_DOUBLE_EQ(lib.TotalTagCount(), 10.0);
}

TEST(LibraryTest, EntriesStaySortedByTag) {
  SageLibrary lib = MakeLib(1, "L1", TissueType::kBrain,
                            NeoplasticState::kNormal,
                            {{30, 1.0}, {10, 1.0}, {20, 1.0}});
  ASSERT_EQ(lib.entries().size(), 3u);
  EXPECT_EQ(lib.entries()[0].tag, 10u);
  EXPECT_EQ(lib.entries()[1].tag, 20u);
  EXPECT_EQ(lib.entries()[2].tag, 30u);
}

TEST(LibraryTest, SetCountZeroErases) {
  SageLibrary lib = MakeLib(1, "L1", TissueType::kBrain,
                            NeoplasticState::kNormal, {{10, 5.0}});
  lib.SetCount(10, 0.0);
  EXPECT_EQ(lib.UniqueTagCount(), 0u);
}

TEST(LibraryTest, AddCountCreatesAndAccumulates) {
  SageLibrary lib(1, "L1", TissueType::kBrain, NeoplasticState::kNormal,
                  TissueSource::kCellLine);
  lib.AddCount(7, 2.0);
  lib.AddCount(7, 3.0);
  EXPECT_DOUBLE_EQ(lib.Count(7), 5.0);
  lib.AddCount(7, -5.0);
  EXPECT_EQ(lib.UniqueTagCount(), 0u);
}

TEST(LibraryTest, EraseReportsPresence) {
  SageLibrary lib = MakeLib(1, "L1", TissueType::kBrain,
                            NeoplasticState::kNormal, {{10, 5.0}});
  EXPECT_TRUE(lib.Erase(10));
  EXPECT_FALSE(lib.Erase(10));
}

TEST(LibraryTest, ScaleMultipliesAllCounts) {
  SageLibrary lib = MakeLib(1, "L1", TissueType::kBrain,
                            NeoplasticState::kNormal,
                            {{10, 5.0}, {20, 3.0}});
  lib.Scale(2.0);
  EXPECT_DOUBLE_EQ(lib.Count(10), 10.0);
  EXPECT_DOUBLE_EQ(lib.TotalTagCount(), 16.0);
}

TEST(LibraryTest, EnumNames) {
  EXPECT_STREQ(TissueTypeName(TissueType::kBrain), "brain");
  EXPECT_STREQ(NeoplasticStateName(NeoplasticState::kCancer), "cancer");
  EXPECT_STREQ(TissueSourceName(TissueSource::kCellLine), "cell_line");
  EXPECT_EQ(AllTissueTypes().size(), 9u);
  ASSERT_TRUE(ParseTissueType("kidney").ok());
  EXPECT_EQ(*ParseTissueType("kidney"), TissueType::kKidney);
  EXPECT_FALSE(ParseTissueType("liver").ok());
}

// ---------- SageDataSet ----------

SageDataSet TwoTissueData() {
  SageDataSet data;
  data.AddLibrary(MakeLib(1, "brain_c1", TissueType::kBrain,
                          NeoplasticState::kCancer, {{10, 4.0}, {20, 1.0}}));
  data.AddLibrary(MakeLib(2, "brain_n1", TissueType::kBrain,
                          NeoplasticState::kNormal, {{10, 2.0}, {30, 5.0}}));
  data.AddLibrary(MakeLib(3, "breast_c1", TissueType::kBreast,
                          NeoplasticState::kCancer, {{40, 9.0}}));
  return data;
}

TEST(DataSetTest, FindByIdAndName) {
  SageDataSet data = TwoTissueData();
  ASSERT_TRUE(data.FindById(2).ok());
  EXPECT_EQ((*data.FindById(2))->name(), "brain_n1");
  ASSERT_TRUE(data.FindByName("breast_c1").ok());
  EXPECT_TRUE(data.FindById(99).status().IsNotFound());
  EXPECT_TRUE(data.FindByName("nope").status().IsNotFound());
}

TEST(DataSetTest, TagUniverseIsSortedUnion) {
  SageDataSet data = TwoTissueData();
  EXPECT_EQ(data.TagUniverse(), (std::vector<TagId>{10, 20, 30, 40}));
  EXPECT_EQ(data.UniverseSize(), 4u);
}

TEST(DataSetTest, Filters) {
  SageDataSet data = TwoTissueData();
  EXPECT_EQ(data.FilterByTissue(TissueType::kBrain).NumLibraries(), 2u);
  EXPECT_EQ(data.FilterByState(NeoplasticState::kCancer).NumLibraries(), 2u);
}

TEST(DataSetTest, SelectAndExcludeIds) {
  SageDataSet data = TwoTissueData();
  Result<SageDataSet> selected = data.SelectByIds({3, 1});
  ASSERT_TRUE(selected.ok());
  EXPECT_EQ(selected->NumLibraries(), 2u);
  EXPECT_EQ(selected->library(0).id(), 3);  // requested order
  EXPECT_TRUE(data.SelectByIds({99}).status().IsNotFound());
  EXPECT_EQ(data.ExcludeIds({1, 3}).NumLibraries(), 1u);
}

// ---------- ExpressionMatrix (rotated layout, Section 4.6.1) ----------

TEST(MatrixTest, ValuesLandInRightCells) {
  SageDataSet data = TwoTissueData();
  ExpressionMatrix m = ExpressionMatrix::FromDataSet(data);
  EXPECT_EQ(m.NumTags(), 4u);
  EXPECT_EQ(m.NumLibraries(), 3u);
  // Tag 10 row: lib1=4, lib2=2, lib3=0.
  size_t row = *m.FindTagRow(10);
  EXPECT_DOUBLE_EQ(m.ValueAt(row, 0), 4.0);
  EXPECT_DOUBLE_EQ(m.ValueAt(row, 1), 2.0);
  EXPECT_DOUBLE_EQ(m.ValueAt(row, 2), 0.0);
}

TEST(MatrixTest, TagRowIsContiguousAndMatches) {
  SageDataSet data = TwoTissueData();
  ExpressionMatrix m = ExpressionMatrix::FromDataSet(data);
  size_t row = *m.FindTagRow(30);
  std::span<const double> r = m.TagRow(row);
  ASSERT_EQ(r.size(), 3u);
  EXPECT_DOUBLE_EQ(r[1], 5.0);
}

TEST(MatrixTest, LibraryColumnIsConceptualRow) {
  SageDataSet data = TwoTissueData();
  ExpressionMatrix m = ExpressionMatrix::FromDataSet(data);
  std::vector<double> col = m.LibraryColumn(0);  // brain_c1
  // Tags sorted: 10, 20, 30, 40 -> 4, 1, 0, 0.
  EXPECT_EQ(col, (std::vector<double>{4.0, 1.0, 0.0, 0.0}));
}

TEST(MatrixTest, RestrictedTagSet) {
  SageDataSet data = TwoTissueData();
  ExpressionMatrix m = ExpressionMatrix::FromDataSet(data, {10, 40});
  EXPECT_EQ(m.NumTags(), 2u);
  EXPECT_FALSE(m.FindTagRow(20).has_value());
  EXPECT_DOUBLE_EQ(m.ValueAt(*m.FindTagRow(40), 2), 9.0);
}

TEST(MatrixTest, LibraryMetadataPreserved) {
  SageDataSet data = TwoTissueData();
  ExpressionMatrix m = ExpressionMatrix::FromDataSet(data);
  EXPECT_EQ(m.library(2).name, "breast_c1");
  EXPECT_EQ(m.library(2).state, NeoplasticState::kCancer);
  EXPECT_EQ(*m.FindLibraryColumn(2), 1u);
  EXPECT_FALSE(m.FindLibraryColumn(42).has_value());
}

// ---------- Relational stat builders (Appendix IV schemas) ----------

TEST(StatsTest, LibraryInfoTable) {
  SageDataSet data = TwoTissueData();
  rel::Table t = BuildLibraryInfoTable(data);
  EXPECT_EQ(t.NumRows(), 3u);
  EXPECT_EQ(t.Get(0, "Lib_Name")->AsString(), "brain_c1");
  EXPECT_EQ(t.Get(0, "CAN_NOR")->AsString(), "cancer");
  EXPECT_EQ(t.Get(0, "Utag")->AsInt(), 2);
  EXPECT_DOUBLE_EQ(t.Get(0, "Tag")->AsDouble(), 5.0);
}

TEST(StatsTest, TissueTypeTableGroupsAndOrders) {
  SageDataSet data = TwoTissueData();
  rel::Table t = BuildTissueTypeTable(data);
  EXPECT_EQ(t.NumRows(), 3u);
  // brain rows come first (enum order) with LibOrder 0,1.
  EXPECT_EQ(t.Get(0, "Type")->AsString(), "brain");
  EXPECT_EQ(t.Get(1, "LibOrder")->AsInt(), 1);
  EXPECT_EQ(t.Get(2, "Type")->AsString(), "breast");
}

TEST(StatsTest, TagsTableIsRotated) {
  SageDataSet data = TwoTissueData();
  rel::Table t = BuildTagsTable(data);
  // Rows = tags, columns = TagName, TagNo + one per library.
  EXPECT_EQ(t.NumRows(), 4u);
  EXPECT_EQ(t.schema().NumColumns(), 5u);
  EXPECT_EQ(t.Get(0, "TagNo")->AsInt(), 10);
  EXPECT_DOUBLE_EQ(t.Get(0, "brain_c1")->AsDouble(), 4.0);
}

TEST(StatsTest, SageInfoTable) {
  SageDataSet data = TwoTissueData();
  rel::Table t = BuildSageInfoTable(data);
  ASSERT_EQ(t.NumRows(), 1u);
  EXPECT_EQ(t.Get(0, "Totag")->AsInt(), 4);
  EXPECT_EQ(t.Get(0, "ToLib")->AsInt(), 3);
}

TEST(StatsTest, LibraryInfoComposesWithRelationalAlgebra) {
  // The Section 4.3.1 step-1 selection: sigma_{Type='brain'}(Libraries).
  SageDataSet data = TwoTissueData();
  rel::Table t = BuildLibraryInfoTable(data);
  Result<rel::Table> brains = rel::Select(
      t, rel::Compare("Type", rel::CompareOp::kEq, rel::Value::String("brain")),
      "brains");
  ASSERT_TRUE(brains.ok());
  EXPECT_EQ(brains->NumRows(), 2u);
}

}  // namespace
}  // namespace gea::sage
