// Property and round-trip tests for the columnar table codec
// (store/format.h): null-bitmap edge cases, dictionary-coded tag ids
// through snapshot and wire transport, and the checked-in PR-4-era
// row-format snapshot fixture that must keep decoding (and re-encoding
// byte-identically under the legacy codec) forever.

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "rel/table.h"
#include "rel/value.h"
#include "store/format.h"
#include "store/snapshot.h"

namespace gea::store {
namespace {

using rel::ColumnDef;
using rel::Row;
using rel::Schema;
using rel::Table;
using rel::Value;
using rel::ValueType;

// Logical equality: the row codec is deterministic and type-preserving,
// so byte-equal row encodings mean cell-for-cell equal tables.
void ExpectTablesEqual(const Table& a, const Table& b) {
  EXPECT_EQ(EncodeTable(a), EncodeTable(b));
}

// Columnar round trip plus the canonical-form property: null slots are
// zero-filled on decode, so decode(encode(t)) re-encodes to the exact
// same bytes.
void ExpectColumnarRoundTrip(const Table& table) {
  const std::string encoded = EncodeTableColumnar(table);
  Result<Table> back = DecodeTable(encoded);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ExpectTablesEqual(*back, table);
  EXPECT_EQ(EncodeTableColumnar(*back), encoded);
}

Schema FourColumnSchema() {
  return Schema({{"TagName", ValueType::kString},
                 {"TagNo", ValueType::kInt},
                 {"Mean", ValueType::kDouble},
                 {"Note", ValueType::kString}});
}

TEST(ColumnarCodecTest, NullBitmapAllNullColumns) {
  Table t("allnull", FourColumnSchema());
  for (int i = 0; i < 70; ++i) {  // >64 rows: the bitmap spans two words
    ASSERT_TRUE(
        t.AppendRow({Value::Null(), Value::Null(), Value::Null(),
                     Value::Null()})
            .ok());
  }
  ExpectColumnarRoundTrip(t);
}

TEST(ColumnarCodecTest, NullBitmapNoNulls) {
  Table t("nonull", FourColumnSchema());
  for (int i = 0; i < 70; ++i) {
    ASSERT_TRUE(t.AppendRow({Value::String("T" + std::to_string(i % 5)),
                             Value::Int(i), Value::Double(i * 0.5),
                             Value::String("note")})
                    .ok());
  }
  ExpectColumnarRoundTrip(t);
}

TEST(ColumnarCodecTest, NullBitmapSingleRow) {
  {
    Table t("one", FourColumnSchema());
    ASSERT_TRUE(t.AppendRow({Value::String("AATCGG"), Value::Int(7),
                             Value::Double(1.5), Value::Null()})
                    .ok());
    ExpectColumnarRoundTrip(t);
  }
  {
    Table t("one_all_null", FourColumnSchema());
    ASSERT_TRUE(t.AppendRow({Value::Null(), Value::Null(), Value::Null(),
                             Value::Null()})
                    .ok());
    ExpectColumnarRoundTrip(t);
  }
}

TEST(ColumnarCodecTest, ZeroRowsAndDeclaredNullColumn) {
  Table empty("empty", Schema({{"OnlyCol", ValueType::kDouble}}));
  ExpectColumnarRoundTrip(empty);

  Table declared("declared_null", Schema({{"Void", ValueType::kNull},
                                          {"N", ValueType::kInt}}));
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(declared.AppendRow({Value::Null(), Value::Int(i)}).ok());
  }
  ExpectColumnarRoundTrip(declared);
}

TEST(ColumnarCodecTest, RandomizedTablesRoundTrip) {
  std::mt19937 rng(20260809);
  for (int iter = 0; iter < 20; ++iter) {
    Table t("rand" + std::to_string(iter), FourColumnSchema());
    const size_t rows = rng() % 200;
    const int null_percent = static_cast<int>(rng() % 101);
    for (size_t r = 0; r < rows; ++r) {
      auto maybe_null = [&](Value v) {
        return static_cast<int>(rng() % 100) < null_percent ? Value::Null()
                                                            : v;
      };
      ASSERT_TRUE(
          t.AppendRow(
               {maybe_null(Value::String("TAG" + std::to_string(rng() % 7))),
                maybe_null(
                    Value::Int(static_cast<int64_t>(rng()) - (1ll << 31))),
                maybe_null(Value::Double(static_cast<double>(rng()) / 997.0)),
                maybe_null(Value::String(std::string(rng() % 30, 'x')))})
              .ok());
    }
    ExpectColumnarRoundTrip(t);
  }
}

TEST(ColumnarCodecTest, DictionaryCodesOutOfRangeRejected) {
  // A corrupted dictionary code on a non-null row must be caught, not
  // indexed blindly.
  Table t("dict", Schema({{"S", ValueType::kString}}));
  ASSERT_TRUE(t.AppendRow({Value::String("a")}).ok());
  ASSERT_TRUE(t.AppendRow({Value::String("b")}).ok());
  std::string encoded = EncodeTableColumnar(t);
  ASSERT_TRUE(DecodeTable(encoded).ok());
  // The last u32 of the buffer is row 1's code; overwrite with 999.
  std::string bad = encoded;
  bad[bad.size() - 4] = char(0xE7);
  bad[bad.size() - 3] = 3;
  bad[bad.size() - 2] = 0;
  bad[bad.size() - 1] = 0;
  Result<Table> r = DecodeTable(bad);
  EXPECT_FALSE(r.ok());
}

TEST(ColumnarCodecTest, DictionaryTagIdsSurviveSnapshotAndWire) {
  // Tag names repeat heavily (low cardinality); the column should store
  // each distinct string once and the round trips must preserve values.
  Table t("tags", FourColumnSchema());
  const std::vector<std::string> names = {"AATCGG", "TTAGCC", "GGCATA"};
  for (int i = 0; i < 90; ++i) {
    ASSERT_TRUE(t.AppendRow({Value::String(names[i % names.size()]),
                             Value::Int(i % names.size()),
                             Value::Double(i * 0.25),
                             i % 4 == 0 ? Value::Null()
                                        : Value::String("liver")})
                    .ok());
  }
  EXPECT_EQ(t.column(0).dict().size(), names.size());

  // Snapshot save/load (columnar payload inside the section).
  SnapshotImage image;
  image.sections.push_back(SnapshotSection::Table("relation", t));
  Result<SnapshotImage> back = DecodeSnapshot(EncodeSnapshot(image));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  const SnapshotSection* section = back->Find("relation", "tags");
  ASSERT_NE(section, nullptr);
  ASSERT_TRUE(section->table.has_value());
  ExpectTablesEqual(*section->table, t);
  // The decoded column re-interns into an identical dictionary.
  EXPECT_EQ(section->table->column(0).dict().size(), names.size());

  // Wire transport: get_table responses still use the row codec.
  Result<Table> wire = DecodeTable(EncodeTable(t));
  ASSERT_TRUE(wire.ok());
  ExpectTablesEqual(*wire, t);
  EXPECT_EQ(wire->column(0).dict().size(), names.size());
}

// ---- PR-4 backward compatibility ----

std::string ReadFixture() {
  std::ifstream in(std::string(GEA_TESTDATA_DIR) +
                       "/snapshot_pr4_rowformat.bin",
                   std::ios::binary);
  EXPECT_TRUE(in.good()) << "fixture file missing";
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

TEST(Pr4CompatTest, RowFormatSnapshotFixtureStillDecodes) {
  const std::string bytes = ReadFixture();
  ASSERT_FALSE(bytes.empty());
  Result<SnapshotImage> image = DecodeSnapshot(bytes);
  ASSERT_TRUE(image.ok()) << image.status().ToString();
  ASSERT_EQ(image->sections.size(), 3u);

  const SnapshotSection* expr = image->Find("table", "expression");
  ASSERT_NE(expr, nullptr);
  ASSERT_TRUE(expr->table.has_value());
  const Table& t = *expr->table;
  ASSERT_EQ(t.NumRows(), 5u);
  ASSERT_EQ(t.NumColumns(), 4u);
  EXPECT_EQ(t.schema().column(0).name, "TagName");
  EXPECT_EQ(t.Get(0, "TagName")->AsString(), "AATCGG");
  EXPECT_EQ(t.Get(0, "TagNo")->AsInt(), 7);
  EXPECT_DOUBLE_EQ(t.Get(0, "Mean")->AsDouble(), 1.5);
  EXPECT_EQ(t.Get(0, "Note")->AsString(), "liver");
  EXPECT_DOUBLE_EQ(t.Get(1, "Mean")->AsDouble(), -0.25);
  EXPECT_TRUE(t.At(1, 3).is_null());
  EXPECT_TRUE(t.At(2, 2).is_null());
  for (size_t c = 0; c < 4; ++c) EXPECT_TRUE(t.At(3, c).is_null());
  EXPECT_EQ(t.Get(4, "TagNo")->AsInt(), -3);
  // "AATCGG" appears twice but interns once: the dictionary holds exactly
  // the distinct non-null strings.
  EXPECT_EQ(t.column(0).dict().size(), 3u);

  const SnapshotSection* empty = image->Find("table", "empty_rows");
  ASSERT_NE(empty, nullptr);
  ASSERT_TRUE(empty->table.has_value());
  EXPECT_EQ(empty->table->NumRows(), 0u);
  EXPECT_EQ(empty->table->NumColumns(), 1u);

  const SnapshotSection* blob = image->Find("wal_meta", "meta");
  ASSERT_NE(blob, nullptr);
  EXPECT_EQ(blob->type, SnapshotSection::Type::kBlob);
  EXPECT_EQ(blob->blob, "pr4-fixture-blob");
}

TEST(Pr4CompatTest, RowFormatPayloadsReencodeByteIdentically) {
  // Walk the snapshot framing by hand to reach the raw section payloads:
  // header (magic, u32 version, u32 count, u64 payload bytes, u32 crc),
  // then per section u32 length + u32 crc + body, body = u8 type,
  // string kind, string name, string payload.
  const std::string bytes = ReadFixture();
  const std::string_view view(bytes);
  ASSERT_GE(bytes.size(), 28u);
  ByteReader header(view.substr(8, 20));  // skip magic
  ASSERT_EQ(*header.ReadU32(), kSnapshotVersion);
  const uint32_t sections = *header.ReadU32();
  (void)*header.ReadU64();  // payload byte count
  (void)*header.ReadU32();  // header crc
  size_t offset = 28;
  size_t tables_checked = 0;
  for (uint32_t s = 0; s < sections; ++s) {
    ByteReader frame(view.substr(offset, 8));
    const uint32_t body_len = *frame.ReadU32();
    (void)*frame.ReadU32();  // body crc
    offset += 8;
    ASSERT_LE(offset + body_len, bytes.size());
    ByteReader section(view.substr(offset, body_len));
    offset += body_len;
    const uint8_t type = *section.ReadU8();
    (void)*section.ReadString();  // kind
    (void)*section.ReadString();  // name
    const std::string payload = *section.ReadString();
    if (type == static_cast<uint8_t>(SnapshotSection::Type::kTable)) {
      // The fixture predates the columnar sentinel.
      ByteReader lead(payload);
      EXPECT_NE(*lead.ReadU32(), 0xFFFFFFFFu);
      Result<rel::Table> decoded = DecodeTable(payload);
      ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
      // Byte-identical legacy re-encode: nothing about a decoded PR-4
      // table is lossy.
      EXPECT_EQ(EncodeTable(*decoded), payload);
      ++tables_checked;
    }
  }
  EXPECT_EQ(offset, bytes.size());
  EXPECT_EQ(tables_checked, 2u);
}

}  // namespace
}  // namespace gea::store
