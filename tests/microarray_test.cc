// Tests for the microarray simulation and for Section 2.4's claim that
// the GEA pipeline consumes microarray data unchanged.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/enum_table.h"
#include "core/gap.h"
#include "core/operators.h"
#include "sage/microarray.h"

namespace gea::sage {
namespace {

class MicroarrayTest : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    GeneratorConfig config;
    config.seed = 42;
    config.panels = SyntheticSageGenerator::SmallPanels();
    synth_ = new SyntheticSage(SyntheticSageGenerator(config).Generate());
    chip_ = new MicroarrayChip(DesignChip(synth_->truth, {}));
  }
  static void TearDownTestSuite() {
    delete chip_;
    delete synth_;
    chip_ = nullptr;
    synth_ = nullptr;
  }
  static SyntheticSage* synth_;
  static MicroarrayChip* chip_;
};

SyntheticSage* MicroarrayTest::synth_ = nullptr;
MicroarrayChip* MicroarrayTest::chip_ = nullptr;

TEST_F(MicroarrayTest, ChipDesignIsDeterministicAndSorted) {
  MicroarrayChip again = DesignChip(synth_->truth, {});
  EXPECT_EQ(again.probes, chip_->probes);
  EXPECT_TRUE(std::is_sorted(chip_->probes.begin(), chip_->probes.end()));
  EXPECT_FALSE(chip_->probes.empty());
}

TEST_F(MicroarrayTest, ChipCoverageReflectsExperimenterKnowledge) {
  std::set<TagId> probes(chip_->probes.begin(), chip_->probes.end());
  auto coverage = [&probes](const std::vector<TagId>& group) {
    size_t hit = 0;
    for (TagId tag : group) hit += probes.count(tag);
    return static_cast<double>(hit) / static_cast<double>(group.size());
  };
  // Housekeeping genes are well known; cancer genes much less so — the
  // Section 2.2.1 bias.
  EXPECT_GT(coverage(synth_->truth.housekeeping), 0.85);
  double cancer = coverage(synth_->truth.shared_cancer_down);
  EXPECT_GT(cancer, 0.2);
  EXPECT_LT(cancer, 0.8);
  EXPECT_LT(cancer, coverage(synth_->truth.housekeeping));
}

TEST_F(MicroarrayTest, MeasurementOnlySeesProbedTags) {
  Result<SageDataSet> chip_data =
      MeasureMicroarray(synth_->dataset, *chip_, {});
  ASSERT_TRUE(chip_data.ok());
  std::set<TagId> probes(chip_->probes.begin(), chip_->probes.end());
  for (const SageLibrary& lib : chip_data->libraries()) {
    for (const SageLibrary::Entry& e : lib.entries()) {
      EXPECT_TRUE(probes.count(e.tag) > 0) << TagLabel(e.tag);
      EXPECT_GT(e.count, 0.0);
    }
  }
  // Sequencing-error singletons never show up: the tag universe is at
  // most the probe panel.
  EXPECT_LE(chip_data->UniverseSize(), chip_->probes.size());
}

TEST_F(MicroarrayTest, MeasurementValidation) {
  MicroarrayChip empty;
  EXPECT_FALSE(MeasureMicroarray(synth_->dataset, empty, {}).ok());
  MicroarrayConfig bad;
  bad.gain = 0.0;
  EXPECT_FALSE(MeasureMicroarray(synth_->dataset, *chip_, bad).ok());
}

TEST_F(MicroarrayTest, GeaPipelineRunsUnchangedOnChipData) {
  // The Section 2.4 claim, end to end: the same ENUM / aggregate / diff
  // pipeline over the chip measurements finds the probed cancer genes.
  Result<SageDataSet> chip_data =
      MeasureMicroarray(synth_->dataset, *chip_, {});
  ASSERT_TRUE(chip_data.ok());
  SageDataSet brain = chip_data->FilterByTissue(TissueType::kBrain);
  core::EnumTable table = core::EnumTable::FromDataSet("brain_chip", brain);

  core::EnumTable cancer = table.FilterLibraries(
      "cancer", [](const LibraryMeta& lib) {
        return lib.state == NeoplasticState::kCancer;
      });
  core::EnumTable normal = table.FilterLibraries(
      "normal", [](const LibraryMeta& lib) {
        return lib.state == NeoplasticState::kNormal;
      });
  core::SumyTable s1 = std::move(core::Aggregate(cancer, "s1")).value();
  core::SumyTable s2 = std::move(core::Aggregate(normal, "s2")).value();
  core::GapTable gap = std::move(core::Diff(s1, s2, "gap")).value();

  std::set<TagId> probes(chip_->probes.begin(), chip_->probes.end());
  std::set<TagId> down(
      synth_->truth.cancer_down.at(TissueType::kBrain).begin(),
      synth_->truth.cancer_down.at(TissueType::kBrain).end());

  size_t probed_down_negative = 0;
  size_t probed_down_total = 0;
  size_t unprobed_seen = 0;
  for (TagId tag : down) {
    std::optional<double> g = gap.Gap(tag);
    if (probes.count(tag) == 0) {
      // The bias: unprobed cancer genes are invisible to the analysis.
      if (gap.Find(tag).has_value()) ++unprobed_seen;
      continue;
    }
    if (g.has_value()) {
      ++probed_down_total;
      if (*g < 0) ++probed_down_negative;
    }
  }
  EXPECT_EQ(unprobed_seen, 0u);
  ASSERT_GT(probed_down_total, 5u);
  EXPECT_EQ(probed_down_negative, probed_down_total);
}

TEST_F(MicroarrayTest, BackgroundFloorsLowSignals) {
  // A tag absent from a sample must not materialize out of background:
  // background (2.0) sits below the detection floor (4.0).
  Result<SageDataSet> chip_data =
      MeasureMicroarray(synth_->dataset, *chip_, {});
  ASSERT_TRUE(chip_data.ok());
  // Find a probed brain-only signature tag; breast libraries must not
  // report it.
  std::set<TagId> probes(chip_->probes.begin(), chip_->probes.end());
  TagId brain_tag = 0;
  for (TagId tag : synth_->truth.signature.at(TissueType::kBrain)) {
    if (probes.count(tag) > 0) {
      brain_tag = tag;
      break;
    }
  }
  ASSERT_NE(brain_tag, 0u);
  for (const SageLibrary& lib : chip_data->libraries()) {
    if (lib.tissue() == TissueType::kBreast) {
      EXPECT_DOUBLE_EQ(lib.Count(brain_tag), 0.0) << lib.name();
    }
  }
}

}  // namespace
}  // namespace gea::sage
