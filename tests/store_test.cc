// Tests for the durable storage engine: the binary table codec, the
// snapshot format, the WAL framing and torn-tail handling, generation
// rotation in StorageEngine, and the fault-injection FileEnv.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "obs/statviews.h"
#include "store/engine.h"
#include "store/fault_env.h"
#include "store/file_env.h"
#include "store/format.h"
#include "store/snapshot.h"
#include "store/wal.h"

namespace gea::store {
namespace {

namespace fs = std::filesystem;

std::string FreshDir(const std::string& tag) {
  std::string dir = testing::TempDir() + "/gea_store_" + tag;
  fs::remove_all(dir);
  return dir;
}

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in), {});
}

void WriteAll(const std::string& path, const std::string& data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << data;
}

rel::Table SampleTable() {
  rel::Table table("mixed",
                   rel::Schema({{"id", rel::ValueType::kInt},
                                {"level", rel::ValueType::kDouble},
                                {"name", rel::ValueType::kString}}));
  table.AppendRowUnchecked({rel::Value::Int(1), rel::Value::Double(0.5),
                            rel::Value::String("alpha")});
  table.AppendRowUnchecked({rel::Value::Int(-7), rel::Value::Null(),
                            rel::Value::String("")});
  table.AppendRowUnchecked(
      {rel::Value::Null(), rel::Value::Double(-1.25e100), rel::Value::Null()});
  return table;
}

// ---------- format primitives ----------

TEST(FormatTest, PrimitivesRoundTrip) {
  std::string buf;
  PutU8(&buf, 0xAB);
  PutU32(&buf, 0xDEADBEEF);
  PutU64(&buf, 0x0123456789ABCDEFull);
  PutI64(&buf, -42);
  PutF64(&buf, 3.14159);
  PutString(&buf, "hello\0world");  // embedded NUL is cut by the literal,
  PutString(&buf, std::string("a\0b", 3));  // so also test an explicit one

  ByteReader reader(buf);
  EXPECT_EQ(*reader.ReadU8(), 0xAB);
  EXPECT_EQ(*reader.ReadU32(), 0xDEADBEEFu);
  EXPECT_EQ(*reader.ReadU64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(*reader.ReadI64(), -42);
  EXPECT_DOUBLE_EQ(*reader.ReadF64(), 3.14159);
  EXPECT_EQ(*reader.ReadString(), "hello");
  EXPECT_EQ(*reader.ReadString(), std::string("a\0b", 3));
  EXPECT_TRUE(reader.Done());
}

TEST(FormatTest, ReaderFailsCleanlyOnTruncation) {
  std::string buf;
  PutU64(&buf, 99);
  PutString(&buf, "payload");
  // Every strict prefix must produce OutOfRange somewhere, never UB.
  for (size_t cut = 0; cut < buf.size(); ++cut) {
    ByteReader reader(std::string_view(buf).substr(0, cut));
    Result<uint64_t> v = reader.ReadU64();
    if (!v.ok()) {
      EXPECT_EQ(v.status().code(), StatusCode::kOutOfRange);
      continue;
    }
    Result<std::string> s = reader.ReadString();
    ASSERT_FALSE(s.ok());
    EXPECT_EQ(s.status().code(), StatusCode::kOutOfRange);
  }
}

TEST(FormatTest, TableCodecRoundTripsNullsAndTypes) {
  rel::Table table = SampleTable();
  std::string encoded = EncodeTable(table);
  Result<rel::Table> back = DecodeTable(encoded);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->name(), "mixed");
  ASSERT_EQ(back->schema().NumColumns(), 3u);
  EXPECT_EQ(back->schema().column(1).name, "level");
  EXPECT_EQ(back->schema().column(1).type, rel::ValueType::kDouble);
  ASSERT_EQ(back->NumRows(), table.NumRows());
  for (size_t r = 0; r < table.NumRows(); ++r) {
    for (size_t c = 0; c < 3; ++c) {
      EXPECT_EQ(back->At(r, c), table.At(r, c))
          << "row " << r << " col " << c;
    }
  }
  // Determinism: re-encoding the decoded table is byte-identical.
  EXPECT_EQ(EncodeTable(*back), encoded);
}

TEST(FormatTest, TableCodecRejectsCorruptInput) {
  std::string encoded = EncodeTable(SampleTable());
  EXPECT_FALSE(DecodeTable("").ok());
  EXPECT_FALSE(DecodeTable(encoded + "x").ok());  // trailing garbage
  for (size_t cut = 0; cut < encoded.size(); ++cut) {
    EXPECT_FALSE(DecodeTable(std::string_view(encoded).substr(0, cut)).ok())
        << "prefix of " << cut << " bytes decoded";
  }
}

// ---------- snapshots ----------

SnapshotImage SampleImage() {
  SnapshotImage image;
  image.sections.push_back(
      SnapshotSection::Blob("sage", "dataset", std::string("\x00\x01raw", 5)));
  image.sections.push_back(SnapshotSection::Table("relation", SampleTable()));
  return image;
}

TEST(SnapshotTest, EncodeDecodeRoundTrip) {
  SnapshotImage image = SampleImage();
  std::string encoded = EncodeSnapshot(image);
  Result<SnapshotImage> back = DecodeSnapshot(encoded);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back->sections.size(), 2u);

  const SnapshotSection* blob = back->Find("sage", "dataset");
  ASSERT_NE(blob, nullptr);
  EXPECT_EQ(blob->type, SnapshotSection::Type::kBlob);
  EXPECT_EQ(blob->blob, std::string("\x00\x01raw", 5));

  const SnapshotSection* table = back->Find("relation", "mixed");
  ASSERT_NE(table, nullptr);
  ASSERT_TRUE(table->table.has_value());
  EXPECT_EQ(EncodeTable(*table->table), EncodeTable(SampleTable()));

  EXPECT_EQ(back->Find("relation", "nope"), nullptr);
}

TEST(SnapshotTest, DecodeRejectsEveryCorruption) {
  std::string encoded = EncodeSnapshot(SampleImage());
  ASSERT_TRUE(DecodeSnapshot(encoded).ok());

  // Any single flipped byte breaks the magic, a CRC, or a length check.
  for (size_t i = 0; i < encoded.size(); ++i) {
    std::string bad = encoded;
    bad[i] = static_cast<char>(bad[i] ^ 0x40);
    EXPECT_FALSE(DecodeSnapshot(bad).ok()) << "flip at byte " << i;
  }
  // Truncation at any point is rejected too.
  for (size_t cut = 0; cut < encoded.size(); ++cut) {
    EXPECT_FALSE(
        DecodeSnapshot(std::string_view(encoded).substr(0, cut)).ok());
  }
  EXPECT_FALSE(DecodeSnapshot(encoded + "tail").ok());
}

TEST(SnapshotTest, FileRoundTripIsAtomic) {
  std::string dir = FreshDir("snapfile");
  FileEnv* env = FileEnv::Default();
  ASSERT_TRUE(env->CreateDirs(dir).ok());
  std::string path = dir + "/snap-1.gea";

  ASSERT_TRUE(WriteSnapshotFile(env, path, SampleImage()).ok());
  EXPECT_FALSE(env->FileExists(path + ".tmp"));  // tmp renamed away

  Result<SnapshotImage> back = ReadSnapshotFile(env, path);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->sections.size(), 2u);

  // Overwriting goes through the same tmp+rename path.
  SnapshotImage image2;
  image2.sections.push_back(SnapshotSection::Blob("sage", "d2", "x"));
  ASSERT_TRUE(WriteSnapshotFile(env, path, image2).ok());
  back = ReadSnapshotFile(env, path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->sections.size(), 1u);

  EXPECT_FALSE(ReadSnapshotFile(env, dir + "/absent.gea").ok());
}

// ---------- WAL ----------

WalRecord SampleOp(int i) {
  return WalRecord::LogicalOp(
      "populate", {{"sumy", "s" + std::to_string(i)}, {"out", "o"}});
}

TEST(WalTest, WriteReadRoundTrip) {
  std::string dir = FreshDir("wal_rt");
  FileEnv* env = FileEnv::Default();
  ASSERT_TRUE(env->CreateDirs(dir).ok());
  std::string path = dir + "/wal-0.log";

  Result<std::unique_ptr<WalWriter>> writer =
      WalWriter::Open(env, path, /*truncate=*/true, /*sync_every_record=*/true);
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();
  ASSERT_TRUE((*writer)->Append(SampleOp(0)).ok());
  ASSERT_TRUE((*writer)->Append(WalRecord::BlobRecord("load_dataset",
                                                      "blob\0bytes")).ok());
  EXPECT_EQ((*writer)->records(), 2u);
  ASSERT_TRUE((*writer)->Close().ok());

  Result<WalReadResult> read = ReadWalFile(env, path);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_FALSE(read->torn_tail);
  EXPECT_EQ(read->dropped_bytes, 0u);
  ASSERT_EQ(read->records.size(), 2u);
  EXPECT_EQ(read->records[0].type, WalRecord::Type::kLogicalOp);
  EXPECT_EQ(read->records[0].op, "populate");
  EXPECT_EQ(read->records[0].params.at("sumy"), "s0");
  EXPECT_EQ(read->records[1].type, WalRecord::Type::kBlob);
  EXPECT_EQ(read->records[1].op, "load_dataset");

  // Reopening for append keeps the old records.
  writer = WalWriter::Open(env, path, /*truncate=*/false,
                           /*sync_every_record=*/true);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->Append(SampleOp(2)).ok());
  ASSERT_TRUE((*writer)->Close().ok());
  read = ReadWalFile(env, path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->records.size(), 3u);
}

TEST(WalTest, MissingFileIsEmptyLog) {
  Result<WalReadResult> read =
      ReadWalFile(FileEnv::Default(), FreshDir("wal_miss") + "/wal-0.log");
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(read->records.empty());
  EXPECT_FALSE(read->torn_tail);
}

TEST(WalTest, TornTailAtEveryByteKeepsDurablePrefix) {
  std::string frames[3] = {EncodeWalRecord(SampleOp(0)),
                           EncodeWalRecord(SampleOp(1)),
                           EncodeWalRecord(SampleOp(2))};
  std::string full = frames[0] + frames[1] + frames[2];
  std::string dir = FreshDir("wal_torn");
  FileEnv* env = FileEnv::Default();
  ASSERT_TRUE(env->CreateDirs(dir).ok());
  std::string path = dir + "/wal-0.log";

  size_t prefix2 = frames[0].size() + frames[1].size();
  // Tear the file anywhere inside the third frame: the first two records
  // must survive and the tail must be reported torn.
  for (size_t cut = prefix2 + 1; cut < full.size(); ++cut) {
    WriteAll(path, full.substr(0, cut));
    Result<WalReadResult> read = ReadWalFile(env, path);
    ASSERT_TRUE(read.ok()) << read.status().ToString();
    EXPECT_EQ(read->records.size(), 2u) << "cut at " << cut;
    EXPECT_TRUE(read->torn_tail);
    EXPECT_EQ(read->valid_bytes, prefix2);
    EXPECT_EQ(read->dropped_bytes, cut - prefix2);
  }

  // A corrupt byte mid-log cuts everything from that frame on.
  std::string bad = full;
  bad[frames[0].size() + 9] ^= 0x01;  // inside frame 1's body
  WriteAll(path, bad);
  Result<WalReadResult> read = ReadWalFile(env, path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->records.size(), 1u);
  EXPECT_TRUE(read->torn_tail);
  EXPECT_EQ(read->valid_bytes, frames[0].size());
}

// ---------- storage engine ----------

TEST(EngineTest, BootstrapAppendReopenReplaysRecords) {
  std::string dir = FreshDir("engine_basic");
  FileEnv* env = FileEnv::Default();
  StorageOptions options;

  Result<StorageEngine::OpenResult> open =
      StorageEngine::Open(env, dir, options);
  ASSERT_TRUE(open.ok()) << open.status().ToString();
  EXPECT_EQ(open->engine->generation(), 0u);
  EXPECT_FALSE(open->snapshot.has_value());
  EXPECT_TRUE(open->records.empty());
  EXPECT_FALSE(open->summary.snapshot_loaded);

  ASSERT_TRUE(open->engine->Append(SampleOp(0)).ok());
  ASSERT_TRUE(open->engine->Append(SampleOp(1)).ok());
  ASSERT_TRUE(open->engine->Close().ok());

  open = StorageEngine::Open(env, dir, options);
  ASSERT_TRUE(open.ok());
  EXPECT_EQ(open->engine->generation(), 0u);
  ASSERT_EQ(open->records.size(), 2u);
  EXPECT_EQ(open->records[1].params.at("sumy"), "s1");
  EXPECT_EQ(open->summary.wal_records_replayed, 2u);
  EXPECT_EQ(LastRecoverySummary().wal_records_replayed, 2u);
}

TEST(EngineTest, CheckpointRotatesGenerationAndClearsWal) {
  std::string dir = FreshDir("engine_ckpt");
  FileEnv* env = FileEnv::Default();
  StorageOptions options;

  Result<StorageEngine::OpenResult> open =
      StorageEngine::Open(env, dir, options);
  ASSERT_TRUE(open.ok());
  StorageEngine* engine = open->engine.get();
  ASSERT_TRUE(engine->Append(SampleOp(0)).ok());

  ASSERT_TRUE(engine->Checkpoint(SampleImage()).ok());
  EXPECT_EQ(engine->generation(), 1u);
  EXPECT_EQ(engine->records_since_checkpoint(), 0u);
  // Old generation files are swept, new ones exist.
  EXPECT_TRUE(env->FileExists(engine->SnapshotPath(1)));
  EXPECT_FALSE(env->FileExists(engine->WalPath(0)));

  // Records after the checkpoint land in the new WAL.
  ASSERT_TRUE(engine->Append(SampleOp(7)).ok());
  ASSERT_TRUE(engine->Close().ok());

  open = StorageEngine::Open(env, dir, options);
  ASSERT_TRUE(open.ok());
  EXPECT_EQ(open->engine->generation(), 1u);
  ASSERT_TRUE(open->snapshot.has_value());
  EXPECT_EQ(open->snapshot->sections.size(), 2u);
  ASSERT_EQ(open->records.size(), 1u);  // kCheckpoint marker filtered out
  EXPECT_EQ(open->records[0].params.at("sumy"), "s7");
  EXPECT_TRUE(open->summary.snapshot_loaded);
  EXPECT_EQ(open->summary.generation, 1u);
}

TEST(EngineTest, AutomaticCheckpointThreshold) {
  std::string dir = FreshDir("engine_auto");
  StorageOptions options;
  options.checkpoint_every_records = 3;
  Result<StorageEngine::OpenResult> open =
      StorageEngine::Open(FileEnv::Default(), dir, options);
  ASSERT_TRUE(open.ok());
  StorageEngine* engine = open->engine.get();
  EXPECT_FALSE(engine->CheckpointDue());
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(engine->Append(SampleOp(i)).ok());
  EXPECT_TRUE(engine->CheckpointDue());
  ASSERT_TRUE(engine->Checkpoint(SampleImage()).ok());
  EXPECT_FALSE(engine->CheckpointDue());
}

TEST(EngineTest, MissingCurrentFallsBackToSnapshotScan) {
  std::string dir = FreshDir("engine_fallback");
  FileEnv* env = FileEnv::Default();
  StorageOptions options;
  {
    Result<StorageEngine::OpenResult> open =
        StorageEngine::Open(env, dir, options);
    ASSERT_TRUE(open.ok());
    ASSERT_TRUE(open->engine->Append(SampleOp(0)).ok());
    ASSERT_TRUE(open->engine->Checkpoint(SampleImage()).ok());
    ASSERT_TRUE(open->engine->Append(SampleOp(1)).ok());
    ASSERT_TRUE(open->engine->Close().ok());
  }
  ASSERT_TRUE(env->RemoveFile(dir + "/CURRENT").ok());

  Result<StorageEngine::OpenResult> open =
      StorageEngine::Open(env, dir, options);
  ASSERT_TRUE(open.ok()) << open.status().ToString();
  EXPECT_TRUE(open->summary.used_fallback_scan);
  EXPECT_EQ(open->engine->generation(), 1u);
  ASSERT_TRUE(open->snapshot.has_value());
  ASSERT_EQ(open->records.size(), 1u);
  EXPECT_EQ(open->records[0].params.at("sumy"), "s1");
}

TEST(EngineTest, TornWalTailIsTruncatedOnDisk) {
  std::string dir = FreshDir("engine_torn");
  FileEnv* env = FileEnv::Default();
  StorageOptions options;
  {
    Result<StorageEngine::OpenResult> open =
        StorageEngine::Open(env, dir, options);
    ASSERT_TRUE(open.ok());
    ASSERT_TRUE(open->engine->Append(SampleOp(0)).ok());
    ASSERT_TRUE(open->engine->Close().ok());
  }
  std::string wal_path = dir + "/wal-0.log";
  std::string intact = ReadAll(wal_path);
  WriteAll(wal_path, intact + EncodeWalRecord(SampleOp(1)).substr(0, 5));

  Result<StorageEngine::OpenResult> open =
      StorageEngine::Open(env, dir, options);
  ASSERT_TRUE(open.ok()) << open.status().ToString();
  EXPECT_TRUE(open->summary.wal_torn_tail);
  EXPECT_EQ(open->summary.wal_bytes_truncated, 5u);
  ASSERT_EQ(open->records.size(), 1u);
  ASSERT_TRUE(open->engine->Close().ok());
  // The torn bytes are gone from disk, not just skipped.
  EXPECT_EQ(ReadAll(wal_path).size(), intact.size());
}

TEST(EngineTest, StaleTmpFilesAreSweptOnOpen) {
  std::string dir = FreshDir("engine_sweep");
  FileEnv* env = FileEnv::Default();
  StorageOptions options;
  {
    Result<StorageEngine::OpenResult> open =
        StorageEngine::Open(env, dir, options);
    ASSERT_TRUE(open.ok());
    ASSERT_TRUE(open->engine->Close().ok());
  }
  WriteAll(dir + "/snap-9.gea.tmp", "half a snapshot");
  Result<StorageEngine::OpenResult> open =
      StorageEngine::Open(env, dir, options);
  ASSERT_TRUE(open.ok());
  EXPECT_FALSE(env->FileExists(dir + "/snap-9.gea.tmp"));
}

// ---------- fault-injection env ----------

TEST(FaultEnvTest, UnsyncedAppendsAreLostOnKill) {
  std::string dir = FreshDir("fault_lost");
  FileEnv* base = FileEnv::Default();
  ASSERT_TRUE(base->CreateDirs(dir).ok());
  FaultInjectionEnv env(base);

  // Synced data survives; buffered-but-unsynced data must not.
  Result<std::unique_ptr<WritableFile>> file =
      env.NewWritableFile(dir + "/f", /*truncate=*/true);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append("durable").ok());
  ASSERT_TRUE((*file)->Sync().ok());
  ASSERT_TRUE((*file)->Append("volatile").ok());

  // ArmFault restarts the fault-point counter, so the next mutating
  // operation is point 0.
  env.ArmFault(0, FaultInjectionEnv::FaultKind::kKill);
  EXPECT_FALSE((*file)->Sync().ok());  // the armed point fires here
  EXPECT_TRUE(env.Killed());
  (void)(*file)->Close();
  EXPECT_EQ(ReadAll(dir + "/f"), "durable");

  // Every later mutating call fails like a dead process.
  EXPECT_FALSE(env.RenameFile(dir + "/f", dir + "/g").ok());
  EXPECT_FALSE(env.NewWritableFile(dir + "/h", true).ok());
}

TEST(FaultEnvTest, ShortWriteTearsTheTail) {
  std::string dir = FreshDir("fault_torn");
  FileEnv* base = FileEnv::Default();
  ASSERT_TRUE(base->CreateDirs(dir).ok());
  FaultInjectionEnv env(base);

  Result<std::unique_ptr<WritableFile>> file =
      env.NewWritableFile(dir + "/f", /*truncate=*/true);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append("0123456789").ok());
  env.ArmFault(0, FaultInjectionEnv::FaultKind::kShortWrite);
  EXPECT_FALSE((*file)->Sync().ok());
  EXPECT_TRUE(env.Killed());

  std::string survived = ReadAll(dir + "/f");
  EXPECT_GT(survived.size(), 0u);
  EXPECT_LT(survived.size(), 10u);
  EXPECT_EQ(survived, std::string("0123456789").substr(0, survived.size()));
}

TEST(FaultEnvTest, ResetRevivesTheEnv) {
  std::string dir = FreshDir("fault_reset");
  FileEnv* base = FileEnv::Default();
  ASSERT_TRUE(base->CreateDirs(dir).ok());
  FaultInjectionEnv env(base);
  env.ArmFault(0, FaultInjectionEnv::FaultKind::kKill);
  EXPECT_FALSE(env.RenameFile(dir + "/a", dir + "/b").ok());
  EXPECT_TRUE(env.Killed());
  env.Reset();
  EXPECT_FALSE(env.Killed());
  Result<std::unique_ptr<WritableFile>> file =
      env.NewWritableFile(dir + "/f", true);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append("x").ok());
  ASSERT_TRUE((*file)->Sync().ok());
  ASSERT_TRUE((*file)->Close().ok());
  EXPECT_EQ(ReadAll(dir + "/f"), "x");
}

TEST(FaultEnvTest, EngineRunsCleanlyThroughFaultEnvWhenDisarmed) {
  std::string dir = FreshDir("fault_engine");
  FaultInjectionEnv env(FileEnv::Default());
  StorageOptions options;
  Result<StorageEngine::OpenResult> open =
      StorageEngine::Open(&env, dir, options);
  ASSERT_TRUE(open.ok()) << open.status().ToString();
  ASSERT_TRUE(open->engine->Append(SampleOp(0)).ok());
  ASSERT_TRUE(open->engine->Checkpoint(SampleImage()).ok());
  ASSERT_TRUE(open->engine->Close().ok());
  EXPECT_GT(env.FaultPointsSeen(), 5u);  // a real matrix to iterate over

  // The directory is valid for a plain POSIX reopen.
  Result<StorageEngine::OpenResult> reopen =
      StorageEngine::Open(FileEnv::Default(), dir, options);
  ASSERT_TRUE(reopen.ok());
  EXPECT_EQ(reopen->engine->generation(), 1u);
  ASSERT_TRUE(reopen->snapshot.has_value());
}

// ---------- storage stat view ----------

TEST(StorageStatViewTest, ViewReportsLastRecovery) {
  std::string dir = FreshDir("statview");
  StorageOptions options;
  {
    Result<StorageEngine::OpenResult> open =
        StorageEngine::Open(FileEnv::Default(), dir, options);
    ASSERT_TRUE(open.ok());
    ASSERT_TRUE(open->engine->Append(SampleOp(0)).ok());
    ASSERT_TRUE(open->engine->Close().ok());
  }
  Result<StorageEngine::OpenResult> open =
      StorageEngine::Open(FileEnv::Default(), dir, options);
  ASSERT_TRUE(open.ok());

  Result<rel::Table> view = obs::BuildStatView(obs::kStatStorageView);
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  int64_t replayed = -1;
  for (size_t vr_ = 0; vr_ < view->NumRows(); ++vr_) {
    const rel::Row row = view->GetRow(vr_);
    if (row[0].AsString() == "recovery.wal_records_replayed") {
      replayed = row[1].AsInt();
    }
  }
  EXPECT_EQ(replayed, 1);
}

}  // namespace
}  // namespace gea::store
