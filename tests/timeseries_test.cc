// Tests for the telemetry history ring, the background harvester, the
// stalled-request watchdog and the gea_stat_history surfaces
// (obs/timeseries.h). "parallel" label: the concurrent-scrape test
// re-runs under TSan, where harvest vs. snapshot must come out clean.
//
// When GEA_STATS_EXPORT names a file, the harvested /statz?history=1
// payload is written there for tools/check_history.py (the CI step),
// mirroring the GEA_TRACE_EXPORT hook in serve_e2e_test.

#include "obs/timeseries.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <thread>

#include "obs/clock.h"
#include "obs/export.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/request_trace.h"
#include "obs/server.h"
#include "obs/statviews.h"
#include "obs/trace.h"

namespace gea::obs {
namespace {

const SeriesPoint* FindPoint(const HistorySample& sample,
                             const std::string& name) {
  for (const SeriesPoint& point : sample.points) {
    if (point.name == name) return &point;
  }
  return nullptr;
}

TEST(TelemetryHistoryTest, HarvestSamplesCountersGaugesAndHistograms) {
  ScopedMetricsEnable metrics(true);
  MetricsRegistry::Global().GetCounter("test.ts.flow").Add(10);
  MetricsRegistry::Global().GetGauge("test.ts.level").Set(-4);
  MetricsRegistry::Global().GetHistogram("test.ts.nanos").Record(1000);

  TelemetryHistory history(/*retention=*/8);
  history.Harvest();
  MetricsRegistry::Global().GetCounter("test.ts.flow").Add(5);
  MetricsRegistry::Global().GetGauge("test.ts.level").Set(3);
  history.Harvest();

  const std::vector<HistorySample> samples = history.Snapshot();
  ASSERT_EQ(samples.size(), 2u);
  EXPECT_EQ(samples[0].sample_id, 1u);
  EXPECT_EQ(samples[1].sample_id, 2u);
  EXPECT_GE(samples[1].nanos, samples[0].nanos);

  // First sighting of a series: value, no delta (nothing to diff).
  const SeriesPoint* first = FindPoint(samples[0], "test.ts.flow");
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->value, 10);
  EXPECT_EQ(first->delta, 0);
  EXPECT_TRUE(first->monotonic);

  // Second tick: the counter's delta and a positive per-second rate.
  const SeriesPoint* second = FindPoint(samples[1], "test.ts.flow");
  ASSERT_NE(second, nullptr);
  EXPECT_EQ(second->value, 15);
  EXPECT_EQ(second->delta, 5);
  EXPECT_GT(second->rate, 0.0);

  // Gauges carry deltas both ways but never a rate.
  const SeriesPoint* level = FindPoint(samples[1], "test.ts.level");
  ASSERT_NE(level, nullptr);
  EXPECT_EQ(level->value, 3);
  EXPECT_EQ(level->delta, 7);
  EXPECT_EQ(level->rate, 0.0);
  EXPECT_FALSE(level->monotonic);

  // Histograms expand to .count/.p50/.p99 series.
  EXPECT_NE(FindPoint(samples[1], "test.ts.nanos.count"), nullptr);
  EXPECT_NE(FindPoint(samples[1], "test.ts.nanos.p50"), nullptr);
  EXPECT_NE(FindPoint(samples[1], "test.ts.nanos.p99"), nullptr);
  const SeriesPoint* count = FindPoint(samples[1], "test.ts.nanos.count");
  EXPECT_TRUE(count->monotonic);
  EXPECT_GE(count->value, 1);

  // Points within a sample are sorted by name.
  for (size_t i = 1; i < samples[1].points.size(); ++i) {
    EXPECT_LE(samples[1].points[i - 1].name, samples[1].points[i].name);
  }
}

TEST(TelemetryHistoryTest, RetentionCapsTheRing) {
  ScopedMetricsEnable metrics(true);
  MetricsRegistry::Global().GetCounter("test.ts.ring").Add(1);

  TelemetryHistory history(/*retention=*/3);
  for (int i = 0; i < 7; ++i) history.Harvest();

  EXPECT_EQ(history.Harvests(), 7u);
  const std::vector<HistorySample> samples = history.Snapshot();
  ASSERT_EQ(samples.size(), 3u);  // oldest evicted
  EXPECT_EQ(samples[0].sample_id, 5u);
  EXPECT_EQ(samples[2].sample_id, 7u);
}

TEST(TelemetryHistoryTest, StatHistoryTableAndViewRender) {
  ScopedMetricsEnable metrics(true);
  MetricsRegistry::Global().GetCounter("test.ts.view").Add(2);

  TelemetryHistory history(/*retention=*/4);
  history.Harvest();
  history.Harvest();

  rel::Table table = StatHistoryTable(history.Snapshot());
  EXPECT_EQ(table.name(), "gea_stat_history");
  ASSERT_EQ(table.schema().NumColumns(), 6u);
  EXPECT_EQ(table.schema().column(0).name, "sample");
  EXPECT_EQ(table.schema().column(2).name, "name");
  EXPECT_EQ(table.schema().column(5).name, "rate");
  EXPECT_GT(table.NumRows(), 0u);

  // The registered view builds from the global ring.
  TelemetryHistory::Global().Harvest();
  Result<rel::Table> view = BuildStatView(kStatHistoryView);
  ASSERT_TRUE(view.ok());
  EXPECT_GT(view->NumRows(), 0u);
}

TEST(TelemetryHistoryTest, HistoryJsonIsValidAndExportable) {
  ScopedMetricsEnable metrics(true);
  MetricsRegistry::Global().GetCounter("test.ts.json").Add(3);
  TelemetryHistory::Global().Harvest();
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  TelemetryHistory::Global().Harvest();

  // Rendered exactly as /statz?history=1 serves it.
  internal::HttpResponse response =
      internal::HandlePath("/statz", "history=1");
  ASSERT_EQ(response.status, 200);
  EXPECT_EQ(response.content_type, "application/json");
  std::string error;
  ASSERT_TRUE(internal::ValidateJson(response.body, &error)) << error;
  EXPECT_NE(response.body.find("\"retention\":"), std::string::npos);
  EXPECT_NE(response.body.find("\"harvests\":"), std::string::npos);
  EXPECT_NE(response.body.find("\"samples\":["), std::string::npos);
  EXPECT_NE(response.body.find("\"test.ts.json\""), std::string::npos);

  // CI points GEA_STATS_EXPORT at a file and runs tools/check_history.py
  // over it; without the variable the in-test checks stand alone.
  if (const char* path = std::getenv("GEA_STATS_EXPORT")) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out.good()) << path;
    out << response.body;
  }
}

TEST(TelemetryHistoryTest, HarvesterRunsAtCadenceAndStops) {
  ScopedMetricsEnable metrics(true);
  const uint64_t before = TelemetryHistory::Global().Harvests();

  Harvester harvester;
  HarvesterOptions options;
  options.interval_ms = 5;
  ASSERT_TRUE(harvester.Start(options));
  EXPECT_TRUE(harvester.Running());
  EXPECT_FALSE(harvester.Start(options));  // already running

  while (TelemetryHistory::Global().Harvests() < before + 3) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  harvester.Stop();
  EXPECT_FALSE(harvester.Running());
  harvester.Stop();  // idempotent

  const uint64_t after = TelemetryHistory::Global().Harvests();
  EXPECT_GE(after, before + 3);
  // Stopped means stopped: no more ticks land.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(TelemetryHistory::Global().Harvests(), after);
}

TEST(TelemetryHistoryTest, ConcurrentScrapeDuringHarvestIsClean) {
  ScopedMetricsEnable metrics(true);
  MetricsRegistry::Global().GetCounter("test.ts.scrape").Add(1);

  Harvester harvester;
  HarvesterOptions options;
  options.interval_ms = 1;
  ASSERT_TRUE(harvester.Start(options));

  // Scrape every surface while the harvester ticks underneath: whole
  // samples only, never a torn one (TSan enforces the "clean" part).
  std::atomic<bool> stop{false};
  std::thread scraper([&stop] {
    while (!stop.load()) {
      const std::vector<HistorySample> samples =
          TelemetryHistory::Global().Snapshot();
      for (size_t i = 1; i < samples.size(); ++i) {
        EXPECT_GT(samples[i].sample_id, samples[i - 1].sample_id);
        EXPECT_GE(samples[i].nanos, samples[i - 1].nanos);
      }
      (void)HistoryJson();
    }
  });
  std::thread sql_scraper([&stop] {
    while (!stop.load()) {
      (void)BuildStatView(kStatHistoryView);
    }
  });

  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  stop.store(true);
  scraper.join();
  sql_scraper.join();
  harvester.Stop();
}

TEST(WatchdogTest, FlagsAndLogsStalledRequestsOnce) {
  ScopedLogCapture capture(LogLevel::kWarn);

  InflightRequest stalled;
  stalled.trace_id = 777;
  stalled.op = "aggregate";
  stalled.user = "admin";
  stalled.start_nanos = NowNanos() - 50'000'000ull;  // "executing" for 50ms
  stalled.mark = TraceCollector::Global().Mark();
  stalled.worker_tid = 9;
  ScopedInflightRequest scope(std::move(stalled));

  InflightRequest fresh;
  fresh.trace_id = 778;
  fresh.op = "ping";
  fresh.start_nanos = NowNanos();
  fresh.mark = TraceCollector::Global().Mark();
  ScopedInflightRequest fresh_scope(std::move(fresh));

  // Only the 50ms-old request crosses the 10ms threshold.
  EXPECT_EQ(WatchdogSweep(/*threshold_ms=*/10), 1u);
  // One log line per request, ever: a second sweep flags nothing.
  EXPECT_EQ(WatchdogSweep(/*threshold_ms=*/10), 0u);

  const std::string log = capture.str();
  EXPECT_NE(log.find("\"event\":\"stalled_request\""), std::string::npos)
      << log;
  EXPECT_NE(log.find("\"trace_id\":777"), std::string::npos) << log;
  EXPECT_NE(log.find("\"op\":\"aggregate\""), std::string::npos) << log;
  EXPECT_NE(log.find("\"spans\":["), std::string::npos) << log;
  EXPECT_EQ(log.find("\"trace_id\":778"), std::string::npos) << log;
}

TEST(WatchdogTest, HarvesterRunsTheWatchdog) {
  ScopedMetricsEnable metrics(true);
  ScopedLogCapture capture(LogLevel::kWarn);

  InflightRequest stalled;
  stalled.trace_id = 991;
  stalled.op = "mine";
  stalled.start_nanos = NowNanos() - 200'000'000ull;
  stalled.mark = TraceCollector::Global().Mark();
  ScopedInflightRequest scope(std::move(stalled));

  Harvester harvester;
  HarvesterOptions options;
  options.interval_ms = 5;
  options.watchdog_ms = 20;
  ASSERT_TRUE(harvester.Start(options));
  // The first tick flags the pre-aged request.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (capture.str().find("\"trace_id\":991") == std::string::npos) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline) << capture.str();
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  harvester.Stop();
  EXPECT_NE(capture.str().find("\"event\":\"stalled_request\""),
            std::string::npos);
}

}  // namespace
}  // namespace gea::obs
