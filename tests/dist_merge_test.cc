// The differential battery that locks the scatter-gather router to
// single-node execution: the same workload runs against one full session
// and against a router over 1/2/4 tag-sharded workers, at operator
// thread counts 1/2/8, and every fetched relation must come back
// byte-identical under the binary row codec — row order, null placement
// and string-dictionary construction included. Plus unit tests for the
// gather-side merge and the router's non-routable-command fences.

#include <gtest/gtest.h>

#include <cstddef>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "dist/merge.h"
#include "dist/partition.h"
#include "dist/router.h"
#include "rel/schema.h"
#include "rel/table.h"
#include "sage/cleaning.h"
#include "sage/generator.h"
#include "serve/client.h"
#include "serve/server.h"
#include "store/format.h"
#include "workbench/session.h"

namespace gea::dist {
namespace {

using serve::QueryClient;
using serve::QueryServer;
using serve::Response;
using workbench::AccessLevel;
using workbench::AnalysisSession;

sage::SageDataSet CleanSmallData(uint64_t seed = 42) {
  sage::GeneratorConfig config;
  config.seed = seed;
  config.panels = sage::SyntheticSageGenerator::SmallPanels();
  sage::SyntheticSage synth = sage::SyntheticSageGenerator(config).Generate();
  sage::CleanAndNormalize(synth.dataset);
  return std::move(synth.dataset);
}

std::unique_ptr<AnalysisSession> AdminSession() {
  auto session = std::make_unique<AnalysisSession>("admin", "secret");
  EXPECT_TRUE(
      session->Login("admin", "secret", AccessLevel::kAdministrator).ok());
  return session;
}

// ---------- MergeByTagNo / SelectTopGapRows units ----------

rel::Table TagTable(const std::string& name,
                    const std::vector<int64_t>& tags) {
  rel::Table table(name, rel::Schema({{"TagNo", rel::ValueType::kInt},
                                      {"Description", rel::ValueType::kString}}));
  for (int64_t tag : tags) {
    table.AppendRowUnchecked(
        {rel::Value::Int(tag), rel::Value::String("t" + std::to_string(tag))});
  }
  return table;
}

TEST(MergeByTagNoTest, InterleavesDisjointPartsInTagOrder) {
  std::vector<rel::Table> parts;
  parts.push_back(TagTable("p", {1, 4, 9}));
  parts.push_back(TagTable("p", {2, 3, 10}));
  parts.push_back(TagTable("p", {}));  // an empty shard is fine
  Result<rel::Table> merged = MergeByTagNo("m", parts);
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  ASSERT_EQ(merged->NumRows(), 6u);
  const int64_t expected[] = {1, 2, 3, 4, 9, 10};
  for (size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(merged->At(i, 0).AsInt(), expected[i]);
  }
  EXPECT_EQ(merged->name(), "m");
}

TEST(MergeByTagNoTest, DuplicateTagAcrossPartsIsNotAPartition) {
  std::vector<rel::Table> parts;
  parts.push_back(TagTable("p", {1, 5}));
  parts.push_back(TagTable("p", {5, 7}));
  Result<rel::Table> merged = MergeByTagNo("m", parts);
  ASSERT_FALSE(merged.ok());
  EXPECT_EQ(merged.status().code(), StatusCode::kInvalidArgument);
}

TEST(MergeByTagNoTest, SchemaMismatchAndMissingTagNoAreErrors) {
  std::vector<rel::Table> mismatched;
  mismatched.push_back(TagTable("p", {1}));
  mismatched.push_back(
      rel::Table("p", rel::Schema({{"TagNo", rel::ValueType::kInt}})));
  EXPECT_FALSE(MergeByTagNo("m", mismatched).ok());

  std::vector<rel::Table> keyless;
  keyless.push_back(
      rel::Table("p", rel::Schema({{"name", rel::ValueType::kString}})));
  EXPECT_FALSE(MergeByTagNo("m", keyless).ok());
}

// ---------- the battery ----------

/// One sharded deployment: N worker sessions over PartitionDataSet
/// slices, each behind its own QueryServer, with a RouterServer fanned
/// out across them.
struct ShardedCluster {
  std::vector<std::unique_ptr<AnalysisSession>> sessions;
  std::vector<std::unique_ptr<QueryServer>> servers;
  std::unique_ptr<RouterServer> router;

  static std::unique_ptr<ShardedCluster> Start(
      const sage::SageDataSet& full, size_t num_shards) {
    auto cluster = std::make_unique<ShardedCluster>();
    RouterServer::Options options;
    for (size_t shard = 0; shard < num_shards; ++shard) {
      auto session = AdminSession();
      EXPECT_TRUE(
          session->LoadDataSet(PartitionDataSet(full, shard, num_shards))
              .ok());
      auto server = std::make_unique<QueryServer>(session.get());
      EXPECT_TRUE(server->Start().ok());
      options.worker_ports.push_back(server->Port());
      cluster->sessions.push_back(std::move(session));
      cluster->servers.push_back(std::move(server));
    }
    options.worker_user = "admin";
    options.worker_password = "secret";
    cluster->router = std::make_unique<RouterServer>(options);
    EXPECT_TRUE(cluster->router->Start().ok());
    return cluster;
  }

  void Stop() {
    if (router) router->Stop();
    for (auto& server : servers) server->Stop();
  }
};

/// Runs the battery workload through `client` (a single-node server or a
/// router — same wire surface). Every op is per-tag decomposable; the
/// brain/custom pairing makes some tags null in one operand, so shards
/// whose candidate slice is all-null are exercised too.
void RunWorkload(QueryClient& client, const std::string& custom_libs) {
  auto call = [&](const std::string& op,
                  std::map<std::string, std::string> params) {
    Result<Response> response = client.Call(op, std::move(params));
    ASSERT_TRUE(response.ok()) << op << ": " << response.status().ToString();
    ASSERT_TRUE(response->ok()) << op << ": " << response->message;
  };
  call("tissue_dataset", {{"tissue", "brain"}});
  call("tissue_dataset", {{"tissue", "breast"}});
  call("custom_dataset", {{"name", "cust"}, {"libs", custom_libs}});
  call("generate_metadata",
       {{"dataset", "brain"}, {"percent", "25"}, {"meta", "meta"}});
  call("aggregate", {{"enum", "brain"}, {"out", "s_brain"}});
  call("aggregate", {{"enum", "breast"}, {"out", "s_breast"}});
  call("aggregate", {{"enum", "cust"}, {"out", "s_cust"}});
  call("diff", {{"sumy1", "s_brain"}, {"sumy2", "s_breast"}, {"gap", "g"}});
  // The sparse gap: tags missing from the two-library custom SUMY leave
  // nulls, so some shard's top-gap candidates can be entirely null.
  call("diff", {{"sumy1", "s_brain"}, {"sumy2", "s_cust"}, {"gap", "g_sparse"}});
  call("top_gap", {{"gap", "g"}, {"x", "7"}});
  call("top_gap", {{"gap", "g"}, {"x", "5"}, {"mode", "1"}});
  call("top_gap", {{"gap", "g_sparse"}, {"x", "4"}, {"mode", "2"}});
}

/// Every relation the battery compares, by catalog name. Tolerance
/// metadata ("meta") is not a fetchable relation on either side, so the
/// generate_metadata broadcast is asserted by its wire ack instead.
std::vector<std::string> ComparedTables() {
  return {"brain",    "breast", "cust", "s_brain",  "s_breast", "s_cust",
          "g",        "g_sparse", "g_7", "g_5",     "g_sparse_4"};
}

std::string FetchBytes(QueryClient& client, const std::string& name) {
  Result<Response> response = client.Call("get_table", {{"name", name}});
  EXPECT_TRUE(response.ok()) << name;
  if (!response.ok()) return "<transport>";
  EXPECT_TRUE(response->ok()) << name << ": " << response->message;
  if (!response->ok()) return "<error>";
  EXPECT_TRUE(response->table.has_value()) << name;
  if (!response->table.has_value()) return "<no table>";
  return store::EncodeTable(*response->table);
}

std::string SqlBytes(QueryClient& client, const std::string& query) {
  Result<rel::Table> table = client.Sql(query);
  EXPECT_TRUE(table.ok()) << query << ": " << table.status().ToString();
  if (!table.ok()) return "<error>";
  return store::EncodeTable(*table);
}

const char* const kTagsQuery = "SELECT * FROM TAGS";
const char* const kCountQuery = "SELECT COUNT(*) AS n FROM Libraries";

TEST(DistMergeBattery, RouterIsByteIdenticalToSingleNode) {
  const sage::SageDataSet full = CleanSmallData();
  ASSERT_GE(full.NumLibraries(), 2u);
  // A two-library custom dataset; its SUMY leaves other tags null.
  const std::string custom_libs = std::to_string(full.library(0).id()) + "," +
                                  std::to_string(full.library(1).id());

  // The single-node reference, computed once: per-tag kernels are
  // deterministic and thread-count invariant (columnar_diff_test pins
  // that), so one reference serves every (threads, shards) cell.
  std::map<std::string, std::string> reference;
  std::string reference_tags;
  std::string reference_count;
  {
    auto session = AdminSession();
    ASSERT_TRUE(session->LoadDataSet(full).ok());
    QueryServer server(session.get());
    ASSERT_TRUE(server.Start().ok());
    QueryClient client;
    ASSERT_TRUE(client.Connect(server.Port()).ok());
    ASSERT_TRUE(client.Login("admin", "secret", "admin").ok());
    RunWorkload(client, custom_libs);
    if (HasFatalFailure()) return;
    for (const std::string& name : ComparedTables()) {
      reference[name] = FetchBytes(client, name);
    }
    reference_tags = SqlBytes(client, kTagsQuery);
    reference_count = SqlBytes(client, kCountQuery);
    server.Stop();
  }

  for (size_t threads : {1u, 2u, 8u}) {
    ThreadCountOverride scope(threads);
    for (size_t shards : {1u, 2u, 4u}) {
      SCOPED_TRACE("threads=" + std::to_string(threads) +
                   " shards=" + std::to_string(shards));
      std::unique_ptr<ShardedCluster> cluster =
          ShardedCluster::Start(full, shards);
      if (HasFatalFailure()) return;
      QueryClient client;
      ASSERT_TRUE(client.Connect(cluster->router->Port()).ok());
      ASSERT_TRUE(client.Login("router", "router-secret", "admin").ok());
      RunWorkload(client, custom_libs);
      if (HasFatalFailure()) return;
      for (const std::string& name : ComparedTables()) {
        EXPECT_EQ(FetchBytes(client, name), reference.at(name)) << name;
      }
      // The TagNo-keyed SQL scan merges; the shard-invariant one passes
      // through because every worker holds every library.
      EXPECT_EQ(SqlBytes(client, kTagsQuery), reference_tags);
      EXPECT_EQ(SqlBytes(client, kCountQuery), reference_count);
      cluster->Stop();
    }
  }
}

TEST(DistRouterTest, FencesAndShardSurface) {
  const sage::SageDataSet full = CleanSmallData();
  std::unique_ptr<ShardedCluster> cluster = ShardedCluster::Start(full, 2);
  ASSERT_FALSE(HasFatalFailure());
  QueryClient client;
  ASSERT_TRUE(client.Connect(cluster->router->Port()).ok());
  ASSERT_TRUE(client.Login("router", "router-secret", "admin").ok());

  // Cross-tag conjunctions and per-store commands cannot be decomposed
  // by tag: the router fails them instead of answering wrongly.
  for (const char* op : {"populate", "mine", "checkpoint"}) {
    Result<Response> rejected =
        op == std::string("populate")
            ? client.Call(op, {{"query", "q"}, {"out", "o"}})
            : client.Call(op);
    ASSERT_TRUE(rejected.ok()) << op;
    EXPECT_EQ(rejected->code, StatusCode::kFailedPrecondition) << op;
    EXPECT_NE(rejected->message.find("not routable"), std::string::npos) << op;
  }

  // The topology is introspectable.
  Result<Response> shards = client.Call("shards");
  ASSERT_TRUE(shards.ok());
  ASSERT_TRUE(shards->ok()) << shards->message;
  ASSERT_TRUE(shards->table.has_value());
  ASSERT_EQ(shards->table->NumRows(), 2u);
  EXPECT_EQ(shards->table->At(0, 0).AsInt(), 0);
  EXPECT_EQ(shards->table->At(1, 0).AsInt(), 1);

  Result<std::map<std::string, std::string>> info = client.RoleInfo();
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->at("role"), "router");
  EXPECT_EQ(info->at("shards"), "2");

  // Router-materialized top-gap results appear in the table listing
  // alongside the union of worker catalogs.
  Result<Response> brain = client.Call("tissue_dataset",
                                       {{"tissue", "brain"}});
  ASSERT_TRUE(brain.ok());
  ASSERT_TRUE(brain->ok()) << brain->message;
  Result<Response> agg = client.Call(
      "aggregate", {{"enum", "brain"}, {"out", "FenceSumy"}});
  ASSERT_TRUE(agg.ok());
  ASSERT_TRUE(agg->ok()) << agg->message;
  Result<Response> diffed = client.Call(
      "diff", {{"sumy1", "FenceSumy"}, {"sumy2", "FenceSumy"},
               {"gap", "FenceGap"}});
  ASSERT_TRUE(diffed.ok());
  ASSERT_TRUE(diffed->ok()) << diffed->message;
  Result<Response> top = client.Call("top_gap",
                                     {{"gap", "FenceGap"}, {"x", "3"}});
  ASSERT_TRUE(top.ok());
  ASSERT_TRUE(top->ok()) << top->message;
  Result<Response> tables = client.Call("tables");
  ASSERT_TRUE(tables.ok());
  ASSERT_TRUE(tables->ok());
  ASSERT_TRUE(tables->table.has_value());
  std::set<std::string> names;
  for (size_t i = 0; i < tables->table->NumRows(); ++i) {
    names.insert(tables->table->At(i, 0).AsString());
  }
  EXPECT_TRUE(names.count("FenceSumy"));
  EXPECT_TRUE(names.count(top->text)) << top->text;

  cluster->Stop();
}

}  // namespace
}  // namespace gea::dist
