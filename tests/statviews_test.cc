// Tests for the relational stat views: the TelemetryHub, the per-view
// table builders, computed-table registration in a catalog, and the
// acceptance path — SQL over live telemetry through an AnalysisSession.

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/statviews.h"
#include "rel/catalog.h"
#include "rel/sql.h"
#include "sage/cleaning.h"
#include "sage/generator.h"
#include "txn/epoch.h"
#include "workbench/session.h"

namespace gea::obs {
namespace {

// ---------- TelemetryHub ----------

TEST(TelemetryHubTest, SessionLifecycleAndAggregates) {
  TelemetryHub hub;
  const uint64_t a = hub.RegisterSession();
  const uint64_t b = hub.RegisterSession();
  ASSERT_NE(a, 0u);
  ASSERT_NE(b, 0u);
  EXPECT_NE(a, b);
  hub.SetSessionUser(a, "ann");

  hub.RecordOperation(a, "populate", 2'000'000, /*ok=*/true, /*slow=*/false);
  hub.RecordOperation(a, "populate", 4'000'000, /*ok=*/false, /*slow=*/true);
  hub.RecordOperation(b, "create_gap", 1'000'000, /*ok=*/true, /*slow=*/false);

  std::vector<OperatorStat> operators = hub.OperatorStats();
  ASSERT_EQ(operators.size(), 2u);  // sorted by operation name
  EXPECT_EQ(operators[0].operation, "create_gap");
  EXPECT_EQ(operators[1].operation, "populate");
  EXPECT_EQ(operators[1].calls, 2u);
  EXPECT_EQ(operators[1].errors, 1u);
  EXPECT_EQ(operators[1].slow_queries, 1u);
  EXPECT_EQ(operators[1].total_nanos, 6'000'000u);
  EXPECT_EQ(operators[1].max_nanos, 4'000'000u);

  std::vector<SessionStat> sessions = hub.SessionStats();
  ASSERT_EQ(sessions.size(), 2u);
  EXPECT_EQ(sessions[0].session_id, a);
  EXPECT_EQ(sessions[0].user, "ann");
  EXPECT_EQ(sessions[0].operations, 2u);
  EXPECT_EQ(sessions[0].errors, 1u);
  EXPECT_EQ(sessions[0].last_operation, "populate");
  EXPECT_EQ(sessions[1].user, "");

  // Deregistering removes the session but keeps operator aggregates.
  hub.DeregisterSession(a);
  EXPECT_EQ(hub.SessionStats().size(), 1u);
  EXPECT_EQ(hub.OperatorStats().size(), 2u);

  // Records against a departed session still fold into operator stats.
  hub.RecordOperation(a, "populate", 1'000'000, true, false);
  EXPECT_EQ(hub.OperatorStats()[1].calls, 3u);
}

TEST(TelemetryHubTest, HandleIsMoveAware) {
  TelemetryHub& hub = TelemetryHub::Global();
  const size_t before = hub.SessionStats().size();
  {
    SessionTelemetryHandle handle;
    EXPECT_NE(handle.id(), 0u);
    EXPECT_EQ(hub.SessionStats().size(), before + 1);

    SessionTelemetryHandle moved = std::move(handle);
    EXPECT_EQ(handle.id(), 0u);  // NOLINT(bugprone-use-after-move)
    EXPECT_NE(moved.id(), 0u);
    // The move transferred the registration, not duplicated it.
    EXPECT_EQ(hub.SessionStats().size(), before + 1);

    // A moved-from handle records nowhere; the live one still works.
    handle.RecordOperation("noop", 1, true, false);
    moved.SetUser("mover");
  }
  EXPECT_EQ(hub.SessionStats().size(), before);
}

// ---------- Table builders ----------

MetricsSnapshot SyntheticSnapshot() {
  ScopedMetricsEnable on(true);
  MetricsRegistry registry;
  registry.GetCounter("gea.test.small").Add(3);
  registry.GetCounter("gea.test.big").Add(1000);
  registry.GetCounter("gea.pool.tasks_submitted").Add(7);
  Histogram& h = registry.GetHistogram("gea.test.lat");
  h.Record(10);
  h.Record(1000);
  return registry.Snapshot();
}

TEST(StatViewsTest, CountersTableMirrorsSnapshot) {
  rel::Table table = StatCountersTable(SyntheticSnapshot());
  EXPECT_EQ(table.name(), "gea_stat_counters");
  ASSERT_EQ(table.NumRows(), 3u);
  ASSERT_EQ(table.schema().NumColumns(), 2u);
  // Snapshot order is sorted by name.
  EXPECT_EQ(table.At(0, 0).AsString(), "gea.pool.tasks_submitted");
  EXPECT_EQ(table.At(0, 1).AsInt(), 7);
  EXPECT_EQ(table.At(1, 0).AsString(), "gea.test.big");
  EXPECT_EQ(table.At(1, 1).AsInt(), 1000);
}

TEST(StatViewsTest, HistogramsTableReportsQuantiles) {
  rel::Table table = StatHistogramsTable(SyntheticSnapshot());
  ASSERT_EQ(table.NumRows(), 1u);
  EXPECT_EQ(table.At(0, 0).AsString(), "gea.test.lat");
  EXPECT_EQ(table.At(0, 1).AsInt(), 2);     // count
  EXPECT_EQ(table.At(0, 2).AsInt(), 1010);  // sum
  EXPECT_DOUBLE_EQ(table.At(0, 3).AsDouble(), 505.0);
  EXPECT_EQ(table.At(0, 4).AsInt(), 15);    // p50 bucket upper bound
  EXPECT_EQ(table.At(0, 5).AsInt(), 1023);  // p95
  EXPECT_EQ(table.At(0, 6).AsInt(), 1023);  // p99
}

TEST(StatViewsTest, OperatorsAndSessionsTables) {
  OperatorStat op;
  op.operation = "populate";
  op.calls = 4;
  op.errors = 1;
  op.slow_queries = 2;
  op.total_nanos = 8'000'000;
  op.max_nanos = 5'000'000;
  rel::Table operators = StatOperatorsTable({op});
  ASSERT_EQ(operators.NumRows(), 1u);
  EXPECT_EQ(operators.At(0, 0).AsString(), "populate");
  EXPECT_EQ(operators.At(0, 1).AsInt(), 4);
  EXPECT_EQ(operators.At(0, 2).AsInt(), 1);
  EXPECT_EQ(operators.At(0, 3).AsInt(), 2);
  EXPECT_DOUBLE_EQ(operators.At(0, 4).AsDouble(), 8.0);   // total_ms
  EXPECT_DOUBLE_EQ(operators.At(0, 5).AsDouble(), 2.0);   // mean_ms
  EXPECT_DOUBLE_EQ(operators.At(0, 6).AsDouble(), 5.0);   // max_ms

  SessionStat session;
  session.session_id = 9;
  session.user = "ann";
  session.operations = 3;
  session.total_nanos = 3'000'000;
  session.last_operation = "sql_query";
  rel::Table sessions = StatSessionsTable({session});
  ASSERT_EQ(sessions.NumRows(), 1u);
  EXPECT_EQ(sessions.At(0, 0).AsInt(), 9);
  EXPECT_EQ(sessions.At(0, 1).AsString(), "ann");
  EXPECT_EQ(sessions.At(0, 6).AsString(), "sql_query");
}

TEST(StatViewsTest, ThreadsTableNeverStartsThePool) {
  rel::Table table = StatThreadsTable(SyntheticSnapshot());
  bool saw_configured = false, saw_started = false, saw_pool_counter = false;
  for (size_t r = 0; r < table.NumRows(); ++r) {
    const std::string name = table.At(r, 0).AsString();
    if (name == "configured_threads") {
      saw_configured = true;
      EXPECT_GE(table.At(r, 1).AsInt(), 1);
    }
    if (name == "pool_started") saw_started = true;
    if (name == "gea.pool.tasks_submitted") {
      saw_pool_counter = true;
      EXPECT_EQ(table.At(r, 1).AsInt(), 7);
    }
    // The non-pool counters must not leak into the threads view.
    EXPECT_NE(name, "gea.test.small");
  }
  EXPECT_TRUE(saw_configured);
  EXPECT_TRUE(saw_started);
  EXPECT_TRUE(saw_pool_counter);
}

// ---------- Catalog registration ----------

TEST(StatViewsTest, RegisteredViewsAreLiveAndReadOnly) {
  ScopedMetricsEnable on(true);
  rel::Catalog catalog;
  ASSERT_TRUE(RegisterStatViews(catalog).ok());
  // Seven obs views plus gea_stat_storage registered by gea_store.
  EXPECT_EQ(catalog.NumTables(), 8u);
  EXPECT_TRUE(catalog.IsComputed("gea_stat_history"));
  EXPECT_TRUE(catalog.IsComputed("gea_stat_counters"));
  EXPECT_TRUE(catalog.IsComputed("gea_stat_storage"));
  EXPECT_TRUE(catalog.GetMutableTable("gea_stat_operators")
                  .status()
                  .IsFailedPrecondition());
  // Registering twice is fine (replace semantics).
  EXPECT_TRUE(RegisterStatViews(catalog).ok());

  // Live: a counter bumped between reads shows up in the next read.
  const std::string name = "gea.test.statviews_live";
  MetricsRegistry::Global().GetCounter(name).Add(1);
  auto value_of = [&catalog, &name]() -> int64_t {
    Result<const rel::Table*> view = catalog.GetTable("gea_stat_counters");
    EXPECT_TRUE(view.ok());
    for (size_t r = 0; r < (*view)->NumRows(); ++r) {
      if ((*view)->At(r, 0).AsString() == name) return (*view)->At(r, 1).AsInt();
    }
    return -1;
  };
  const int64_t first = value_of();
  ASSERT_GE(first, 1);
  MetricsRegistry::Global().GetCounter(name).Add(5);
  EXPECT_EQ(value_of(), first + 5);
}

// Database lifecycle operations (initialize-database, load-database)
// rebuild the session catalog; the stat views must survive them — both
// for SQL issued afterwards and for a monitoring scraper hitting the
// global JSON surfaces throughout. The scraper half re-runs under TSan.
TEST(StatViewsTest, ViewsSurviveDatabaseLifecycleUnderConcurrentScrape) {
  ScopedMetricsEnable on(true);
  MetricsRegistry::Global().GetCounter("gea.test.lifecycle_scrape").Add(3);

  workbench::AnalysisSession session("admin", "secret");
  ASSERT_TRUE(
      session.Login("admin", "secret", workbench::AccessLevel::kAdministrator)
          .ok());

  sage::GeneratorConfig config;
  config.seed = 7;
  config.panels = sage::SyntheticSageGenerator::SmallPanels();
  sage::SyntheticSage synth = sage::SyntheticSageGenerator(config).Generate();
  sage::CleanAndNormalize(synth.dataset);
  ASSERT_TRUE(session.LoadDataSet(std::move(synth.dataset)).ok());

  const std::string dir = testing::TempDir() + "/gea_statviews_lifecycle";
  std::filesystem::remove_all(dir);
  ASSERT_TRUE(session.SaveDatabase(dir).ok());

  std::atomic<bool> stop{false};
  std::thread scraper([&stop] {
    while (!stop.load()) {
      const std::string json = StatViewsJson();
      EXPECT_NE(json.find("gea_stat_counters"), std::string::npos);
      (void)BuildStatView(kStatCountersView);
      (void)BuildStatView(kStatHistoryView);
    }
  });

  auto counters_alive = [&session]() {
    Result<rel::Table> counters = session.Query(
        "SELECT name, value FROM gea_stat_counters "
        "WHERE name = 'gea.test.lifecycle_scrape'");
    ASSERT_TRUE(counters.ok()) << counters.status().ToString();
    ASSERT_EQ(counters->NumRows(), 1u);
    EXPECT_GE(counters->At(0, 1).AsInt(), 3);
  };

  // Wipe the analysis state, then restore it, scraping all the while:
  // the computed views must be queryable after each transition.
  counters_alive();
  ASSERT_TRUE(session.InitializeDatabase().ok());
  counters_alive();
  ASSERT_TRUE(session.LoadDatabase(dir).ok());
  counters_alive();
  EXPECT_TRUE(session.Query("SELECT COUNT(*) FROM Libraries").ok());

  stop.store(true);
  scraper.join();
  std::filesystem::remove_all(dir);
}

TEST(StatViewsTest, BuildStatViewRejectsUnknownName) {
  // gea_stat_transactions registers lazily from the first EpochManager;
  // anchor it so the count does not depend on test order.
  txn::RegisterTransactionStatView();
  EXPECT_TRUE(BuildStatView("gea_stat_nope").status().IsNotFound());
  EXPECT_EQ(AllStatViews().size(), 9u);
}

TEST(StatViewsTest, RequestsTableRollsUpTheTraceRing) {
  std::vector<RequestTraceRecord> records;
  for (int i = 0; i < 4; ++i) {
    RequestTraceRecord r;
    r.op = "sql";
    r.user = "admin";
    r.status_code = 0;  // OK
    r.total_nanos = 2'000'000;  // 2 ms
    r.slow = (i == 0);
    records.push_back(std::move(r));
  }
  RequestTraceRecord denied;
  denied.op = "sql";
  denied.user = "reader";
  denied.status_code = static_cast<int>(StatusCode::kPermissionDenied);
  denied.total_nanos = 1'000'000;
  records.push_back(std::move(denied));

  rel::Table table = StatRequestsTable(records);
  EXPECT_EQ(table.name(), "gea_stat_requests");
  ASSERT_EQ(table.NumRows(), 2u);  // (sql, OK, admin) and (sql, denied, reader)
  ASSERT_EQ(table.schema().NumColumns(), 12u);

  // Rows sort by (op, status, user): "OK" < "PermissionDenied".
  EXPECT_EQ(table.At(0, 0).AsString(), "sql");
  EXPECT_EQ(table.At(0, 1).AsString(), "OK");
  EXPECT_EQ(table.At(0, 2).AsString(), "admin");
  EXPECT_EQ(table.At(0, 3).AsInt(), 4);  // count
  EXPECT_EQ(table.At(0, 4).AsInt(), 1);  // slow
  EXPECT_DOUBLE_EQ(table.At(0, 5).AsDouble(), 2.0);  // mean_ms
  // Quantiles are power-of-two bucket upper bounds covering 2 ms.
  EXPECT_GE(table.At(0, 6).AsDouble(), 2.0);  // p50_ms
  EXPECT_LE(table.At(0, 6).AsDouble(), 4.2);
  EXPECT_DOUBLE_EQ(table.At(0, 6).AsDouble(), table.At(0, 8).AsDouble());

  EXPECT_EQ(table.At(1, 1).AsString(), "PermissionDenied");
  EXPECT_EQ(table.At(1, 2).AsString(), "reader");
  EXPECT_EQ(table.At(1, 3).AsInt(), 1);
}

// ---------- JSON rendering ----------

TEST(StatViewsTest, TableJsonAndStatViewsJsonAreValid) {
  rel::Table table("t", rel::Schema({{"s", rel::ValueType::kString},
                                     {"i", rel::ValueType::kInt},
                                     {"d", rel::ValueType::kDouble},
                                     {"n", rel::ValueType::kNull}}));
  table.AppendRowUnchecked({rel::Value::String("a\"b"), rel::Value::Int(-3),
                            rel::Value::Double(1.5), rel::Value::Null()});
  const std::string json = TableJson(table);
  std::string error;
  EXPECT_TRUE(internal::ValidateJson(json, &error)) << error;
  EXPECT_NE(json.find("\"s\":\"a\\\"b\""), std::string::npos);
  EXPECT_NE(json.find("\"i\":-3"), std::string::npos);
  EXPECT_NE(json.find("\"n\":null"), std::string::npos);

  const std::string all = StatViewsJson();
  EXPECT_TRUE(internal::ValidateJson(all, &error)) << error;
  EXPECT_NE(all.find("\"gea_stat_counters\":["), std::string::npos);
  EXPECT_NE(all.find("\"gea_stat_threads\":["), std::string::npos);
}

// ---------- Acceptance: SQL over live telemetry via a session ----------

TEST(StatViewsTest, SqlOverLiveCountersThroughSession) {
  ScopedMetricsEnable on(true);
  MetricsRegistry::Global().GetCounter("gea.test.sql_counter").Add(11);

  workbench::AnalysisSession session("admin", "secret");
  ASSERT_TRUE(
      session.Login("admin", "secret", workbench::AccessLevel::kAdministrator)
          .ok());

  Result<rel::Table> result = session.Query(
      "SELECT name, value FROM gea_stat_counters ORDER BY value DESC");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_GT(result->NumRows(), 0u);
  // Ordered by value, descending.
  for (size_t r = 1; r < result->NumRows(); ++r) {
    EXPECT_GE(result->At(r - 1, 1).AsInt(), result->At(r, 1).AsInt());
  }
  bool found = false;
  for (size_t r = 0; r < result->NumRows(); ++r) {
    if (result->At(r, 0).AsString() == "gea.test.sql_counter") {
      found = true;
      EXPECT_GE(result->At(r, 1).AsInt(), 11);
    }
  }
  EXPECT_TRUE(found);

  // The session itself shows up in gea_stat_sessions (the Query() above
  // was recorded), and the operator aggregate is queryable too.
  Result<rel::Table> sessions = session.Query(
      "SELECT user, operations FROM gea_stat_sessions WHERE user = 'admin'");
  ASSERT_TRUE(sessions.ok()) << sessions.status().ToString();
  ASSERT_GE(sessions->NumRows(), 1u);
  EXPECT_GE(sessions->At(0, 1).AsInt(), 1);

  Result<rel::Table> operators = session.Query(
      "SELECT operation, calls FROM gea_stat_operators "
      "WHERE operation = 'sql_query'");
  ASSERT_TRUE(operators.ok()) << operators.status().ToString();
  ASSERT_EQ(operators->NumRows(), 1u);
  EXPECT_GE(operators->At(0, 1).AsInt(), 1);
}

}  // namespace
}  // namespace gea::obs
