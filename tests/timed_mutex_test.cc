// Tests for the instrumented mutex wrappers (common/timed_mutex.h):
// standard-lockable semantics, wait-time attribution into the registry
// histograms and the per-request lock_wait stage, and the zero-clock
// uncontended fast path. The "parallel" ctest label re-runs this under
// TSan, where the reader/writer stampede below must come out clean.

#include "common/timed_mutex.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/request_trace.h"

namespace gea {
namespace {

using obs::MetricsRegistry;
using obs::RequestStage;

TEST(TimedMutexTest, SatisfiesStandardLockableConcepts) {
  SharedTimedMutex shared_mu("test.lock.concepts_shared");
  {
    std::unique_lock<SharedTimedMutex> write(shared_mu);
    EXPECT_TRUE(write.owns_lock());
  }
  {
    std::shared_lock<SharedTimedMutex> read_a(shared_mu);
    std::shared_lock<SharedTimedMutex> read_b(shared_mu);  // readers share
    EXPECT_TRUE(read_a.owns_lock());
    EXPECT_TRUE(read_b.owns_lock());
  }

  TimedMutex mu("test.lock.concepts_plain");
  {
    std::lock_guard<TimedMutex> guard(mu);
  }
  // condition_variable_any works over the wrapper, the way the server's
  // admission queue uses it.
  std::condition_variable_any cv;
  bool ready = false;
  std::thread signaller([&] {
    std::lock_guard<TimedMutex> guard(mu);
    ready = true;
    cv.notify_one();
  });
  {
    std::unique_lock<TimedMutex> lock(mu);
    cv.wait(lock, [&] { return ready; });
  }
  signaller.join();
}

TEST(TimedMutexTest, ContendedWriteRecordsHistogramAndStage) {
  obs::ScopedMetricsEnable metrics(true);
  obs::Histogram& write_waits = MetricsRegistry::Global().GetHistogram(
      "test.lock.contended.write_wait_nanos");
  obs::Histogram& read_waits = MetricsRegistry::Global().GetHistogram(
      "test.lock.contended.read_wait_nanos");
  const uint64_t writes_before = write_waits.Count();
  const uint64_t reads_before = read_waits.Count();

  SharedTimedMutex mu("test.lock.contended");
  std::mutex state_mu;
  std::condition_variable cv;
  bool held = false;

  std::thread holder([&] {
    std::shared_lock<SharedTimedMutex> read(mu);
    {
      std::lock_guard<std::mutex> lock(state_mu);
      held = true;
    }
    cv.notify_one();
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
  });
  {
    std::unique_lock<std::mutex> lock(state_mu);
    cv.wait(lock, [&] { return held; });
  }

  // The writer blocks behind the sleeping reader: the wait lands in the
  // write histogram AND in the thread's lock_wait stage accumulator.
  obs::StageCollectorScope stage_scope;
  {
    std::unique_lock<SharedTimedMutex> write(mu);
  }
  holder.join();

  EXPECT_EQ(write_waits.Count(), writes_before + 1);
  EXPECT_EQ(read_waits.Count(), reads_before);
  const uint64_t waited = obs::CollectedStageNanos(RequestStage::kLockWait);
  EXPECT_GE(waited, 10'000'000u);  // slept 30ms; allow generous clock slop
}

TEST(TimedMutexTest, ContendedReadRecordsReadHistogram) {
  obs::ScopedMetricsEnable metrics(true);
  obs::Histogram& read_waits = MetricsRegistry::Global().GetHistogram(
      "test.lock.rcontended.read_wait_nanos");
  const uint64_t reads_before = read_waits.Count();

  SharedTimedMutex mu("test.lock.rcontended");
  std::mutex state_mu;
  std::condition_variable cv;
  bool held = false;

  std::thread writer([&] {
    std::unique_lock<SharedTimedMutex> write(mu);
    {
      std::lock_guard<std::mutex> lock(state_mu);
      held = true;
    }
    cv.notify_one();
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  });
  {
    std::unique_lock<std::mutex> lock(state_mu);
    cv.wait(lock, [&] { return held; });
  }
  {
    std::shared_lock<SharedTimedMutex> read(mu);
  }
  writer.join();

  EXPECT_EQ(read_waits.Count(), reads_before + 1);
}

TEST(TimedMutexTest, UncontendedAcquisitionRecordsNothing) {
  obs::ScopedMetricsEnable metrics(true);
  obs::Histogram& write_waits = MetricsRegistry::Global().GetHistogram(
      "test.lock.quiet.write_wait_nanos");
  obs::Histogram& read_waits = MetricsRegistry::Global().GetHistogram(
      "test.lock.quiet.read_wait_nanos");
  obs::Histogram& plain_waits =
      MetricsRegistry::Global().GetHistogram("test.lock.quiet_plain.wait_nanos");
  const uint64_t writes_before = write_waits.Count();
  const uint64_t reads_before = read_waits.Count();
  const uint64_t plain_before = plain_waits.Count();

  SharedTimedMutex mu("test.lock.quiet");
  for (int i = 0; i < 100; ++i) {
    std::unique_lock<SharedTimedMutex> write(mu);
  }
  for (int i = 0; i < 100; ++i) {
    std::shared_lock<SharedTimedMutex> read(mu);
  }
  TimedMutex plain("test.lock.quiet_plain");
  for (int i = 0; i < 100; ++i) {
    std::lock_guard<TimedMutex> guard(plain);
  }

  // The try-lock fast path succeeded every time: no waits recorded.
  EXPECT_EQ(write_waits.Count(), writes_before);
  EXPECT_EQ(read_waits.Count(), reads_before);
  EXPECT_EQ(plain_waits.Count(), plain_before);
}

TEST(TimedMutexTest, ReaderWriterStampedeStaysConsistent) {
  obs::ScopedMetricsEnable metrics(true);
  SharedTimedMutex mu("test.lock.stampede");
  int64_t protected_value = 0;
  std::atomic<bool> mismatch{false};

  constexpr int kWriters = 2;
  constexpr int kReaders = 6;
  constexpr int kIterations = 400;

  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIterations; ++i) {
        std::unique_lock<SharedTimedMutex> write(mu);
        // Two increments with a gap: a reader seeing an odd value means
        // the exclusive lock failed.
        ++protected_value;
        ++protected_value;
      }
    });
  }
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIterations; ++i) {
        std::shared_lock<SharedTimedMutex> read(mu);
        if (protected_value % 2 != 0) mismatch.store(true);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_FALSE(mismatch.load());
  EXPECT_EQ(protected_value, kWriters * kIterations * 2);
}

}  // namespace
}  // namespace gea
