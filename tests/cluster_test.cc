// Tests for the clustering substrate: distances, k-means, hierarchical
// clustering, OPTICS, and the external quality metrics.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "cluster/distance.h"
#include "cluster/hierarchical.h"
#include "cluster/kmeans.h"
#include "cluster/metrics.h"
#include "cluster/optics.h"
#include "common/rng.h"

namespace gea::cluster {
namespace {

// Two well-separated Gaussian blobs plus labels.
struct Blobs {
  std::vector<std::vector<double>> points;
  std::vector<int> labels;
};

Blobs MakeBlobs(size_t per_blob, double separation, uint64_t seed) {
  gea::Rng rng(seed);
  Blobs out;
  for (int blob = 0; blob < 2; ++blob) {
    for (size_t i = 0; i < per_blob; ++i) {
      out.points.push_back({rng.Normal(blob * separation, 1.0),
                            rng.Normal(blob * separation, 1.0)});
      out.labels.push_back(blob);
    }
  }
  return out;
}

// ---------- distances ----------

TEST(DistanceTest, Euclidean) {
  std::vector<double> a = {0, 0};
  std::vector<double> b = {3, 4};
  EXPECT_DOUBLE_EQ(EuclideanDistance(a, b), 5.0);
  EXPECT_DOUBLE_EQ(EuclideanDistance(a, a), 0.0);
}

TEST(DistanceTest, PearsonPerfectCorrelation) {
  std::vector<double> a = {1, 2, 3, 4};
  std::vector<double> b = {2, 4, 6, 8};  // perfectly correlated
  EXPECT_NEAR(PearsonCorrelation(a, b), 1.0, 1e-12);
  EXPECT_NEAR(PearsonDistance(a, b), 0.0, 1e-12);
}

TEST(DistanceTest, PearsonAntiCorrelation) {
  std::vector<double> a = {1, 2, 3, 4};
  std::vector<double> b = {4, 3, 2, 1};
  EXPECT_NEAR(PearsonCorrelation(a, b), -1.0, 1e-12);
  EXPECT_NEAR(PearsonDistance(a, b), 2.0, 1e-12);
}

TEST(DistanceTest, PearsonZeroVarianceIsZero) {
  std::vector<double> a = {5, 5, 5};
  std::vector<double> b = {1, 2, 3};
  EXPECT_DOUBLE_EQ(PearsonCorrelation(a, b), 0.0);
}

TEST(DistanceTest, MatrixIsSymmetricWithZeroDiagonal) {
  Blobs blobs = MakeBlobs(5, 10.0, 3);
  std::vector<double> m =
      DistanceMatrix(DistanceKind::kEuclidean, blobs.points);
  size_t n = blobs.points.size();
  for (size_t i = 0; i < n; ++i) {
    EXPECT_DOUBLE_EQ(m[i * n + i], 0.0);
    for (size_t j = 0; j < n; ++j) {
      EXPECT_DOUBLE_EQ(m[i * n + j], m[j * n + i]);
    }
  }
}

// ---------- k-means ----------

TEST(KMeansTest, SeparatesTwoBlobs) {
  Blobs blobs = MakeBlobs(20, 20.0, 11);
  KMeansParams params;
  params.k = 2;
  params.seed = 5;
  Result<KMeansResult> result = KMeans(blobs.points, params);
  ASSERT_TRUE(result.ok());
  Result<double> purity = Purity(result->assignments, blobs.labels);
  ASSERT_TRUE(purity.ok());
  EXPECT_DOUBLE_EQ(*purity, 1.0);
}

TEST(KMeansTest, InertiaDecreasesWithMoreClusters) {
  Blobs blobs = MakeBlobs(20, 5.0, 11);
  KMeansParams k1;
  k1.k = 1;
  KMeansParams k4;
  k4.k = 4;
  double inertia1 = KMeans(blobs.points, k1)->inertia;
  double inertia4 = KMeans(blobs.points, k4)->inertia;
  EXPECT_LT(inertia4, inertia1);
}

TEST(KMeansTest, KEqualsNGivesZeroInertia) {
  Blobs blobs = MakeBlobs(3, 10.0, 2);
  KMeansParams params;
  params.k = static_cast<int>(blobs.points.size());
  Result<KMeansResult> result = KMeans(blobs.points, params);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->inertia, 0.0, 1e-9);
}

TEST(KMeansTest, RejectsBadK) {
  Blobs blobs = MakeBlobs(3, 10.0, 2);
  KMeansParams params;
  params.k = 0;
  EXPECT_FALSE(KMeans(blobs.points, params).ok());
  params.k = 100;
  EXPECT_FALSE(KMeans(blobs.points, params).ok());
}

TEST(KMeansTest, RejectsMixedDimensions) {
  std::vector<std::vector<double>> points = {{1, 2}, {1, 2, 3}};
  KMeansParams params;
  params.k = 1;
  EXPECT_FALSE(KMeans(points, params).ok());
}

TEST(KMeansTest, DeterministicForSeed) {
  Blobs blobs = MakeBlobs(15, 8.0, 4);
  KMeansParams params;
  params.k = 2;
  params.seed = 77;
  Result<KMeansResult> a = KMeans(blobs.points, params);
  Result<KMeansResult> b = KMeans(blobs.points, params);
  EXPECT_EQ(a->assignments, b->assignments);
}

// ---------- hierarchical ----------

TEST(HierarchicalTest, CutRecoversBlobs) {
  Blobs blobs = MakeBlobs(15, 20.0, 21);
  Result<Dendrogram> dendro = HierarchicalCluster(
      blobs.points, DistanceKind::kEuclidean, Linkage::kAverage);
  ASSERT_TRUE(dendro.ok());
  EXPECT_EQ(dendro->merges.size(), blobs.points.size() - 1);
  Result<std::vector<int>> cut = dendro->Cut(2);
  ASSERT_TRUE(cut.ok());
  EXPECT_DOUBLE_EQ(*Purity(*cut, blobs.labels), 1.0);
}

TEST(HierarchicalTest, CutBoundaries) {
  Blobs blobs = MakeBlobs(5, 10.0, 9);
  Result<Dendrogram> dendro = HierarchicalCluster(
      blobs.points, DistanceKind::kEuclidean, Linkage::kAverage);
  ASSERT_TRUE(dendro.ok());
  // k = n: every point its own cluster.
  Result<std::vector<int>> all = dendro->Cut(blobs.points.size());
  ASSERT_TRUE(all.ok());
  std::set<int> distinct(all->begin(), all->end());
  EXPECT_EQ(distinct.size(), blobs.points.size());
  // k = 1: one cluster.
  Result<std::vector<int>> one = dendro->Cut(1);
  ASSERT_TRUE(one.ok());
  for (int label : *one) EXPECT_EQ(label, 0);
  // invalid cuts
  EXPECT_FALSE(dendro->Cut(0).ok());
  EXPECT_FALSE(dendro->Cut(blobs.points.size() + 1).ok());
}

TEST(HierarchicalTest, SingleLinkageHeightsAreMonotone) {
  Blobs blobs = MakeBlobs(10, 6.0, 31);
  Result<Dendrogram> dendro = HierarchicalCluster(
      blobs.points, DistanceKind::kEuclidean, Linkage::kSingle);
  ASSERT_TRUE(dendro.ok());
  for (size_t i = 1; i < dendro->merges.size(); ++i) {
    EXPECT_GE(dendro->merges[i].height, dendro->merges[i - 1].height);
  }
}

TEST(HierarchicalTest, SinglePoint) {
  Result<Dendrogram> dendro = HierarchicalCluster(
      {{1.0, 2.0}}, DistanceKind::kEuclidean, Linkage::kAverage);
  ASSERT_TRUE(dendro.ok());
  EXPECT_TRUE(dendro->merges.empty());
  EXPECT_EQ(dendro->Cut(1)->size(), 1u);
}

TEST(HierarchicalTest, PearsonDistanceClustersByProfileShape) {
  // Two shape families regardless of magnitude: rising and falling —
  // the property that makes correlation distance the tool of choice for
  // expression profiles (Section 2.3.2).
  std::vector<std::vector<double>> points = {
      {1, 2, 3, 4},  {10, 20, 30, 40}, {0.5, 1, 1.5, 2},
      {4, 3, 2, 1},  {40, 30, 20, 10}, {2, 1.5, 1, 0.5},
  };
  std::vector<int> truth = {0, 0, 0, 1, 1, 1};
  Result<Dendrogram> dendro = HierarchicalCluster(
      points, DistanceKind::kPearson, Linkage::kAverage);
  ASSERT_TRUE(dendro.ok());
  EXPECT_DOUBLE_EQ(*Purity(*dendro->Cut(2), truth), 1.0);
}

TEST(HierarchicalTest, NewickExport) {
  // Three points where 0 and 1 merge first.
  std::vector<std::vector<double>> points = {{0.0}, {1.0}, {10.0}};
  Result<Dendrogram> dendro = HierarchicalCluster(
      points, DistanceKind::kEuclidean, Linkage::kAverage);
  ASSERT_TRUE(dendro.ok());
  Result<std::string> newick = dendro->ToNewick({"a", "b", "c"});
  ASSERT_TRUE(newick.ok());
  // (a,b) nest together; c joins at the root.
  EXPECT_NE(newick->find("(a:"), std::string::npos);
  EXPECT_NE(newick->find("b:"), std::string::npos);
  EXPECT_NE(newick->find("c:"), std::string::npos);
  EXPECT_EQ(newick->back(), ';');
  // Balanced parentheses.
  int depth = 0;
  for (char ch : *newick) {
    if (ch == '(') ++depth;
    if (ch == ')') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(HierarchicalTest, NewickValidation) {
  std::vector<std::vector<double>> points = {{0.0}, {1.0}};
  Result<Dendrogram> dendro = HierarchicalCluster(
      points, DistanceKind::kEuclidean, Linkage::kAverage);
  ASSERT_TRUE(dendro.ok());
  EXPECT_FALSE(dendro->ToNewick({"only_one"}).ok());
  // Default labels.
  Result<std::string> newick = dendro->ToNewick();
  ASSERT_TRUE(newick.ok());
  EXPECT_NE(newick->find("p0"), std::string::npos);
  // Single point.
  Result<Dendrogram> single = HierarchicalCluster(
      {{1.0}}, DistanceKind::kEuclidean, Linkage::kAverage);
  EXPECT_EQ(*single->ToNewick(), "p0;");
}

TEST(HierarchicalTest, LinkageNames) {
  EXPECT_STREQ(LinkageName(Linkage::kAverage), "average");
  EXPECT_STREQ(DistanceKindName(DistanceKind::kPearson), "pearson");
}

// ---------- OPTICS ----------

TEST(OpticsTest, RecoverBlobsViaExtraction) {
  Blobs blobs = MakeBlobs(20, 25.0, 41);
  OpticsParams params;
  params.epsilon = 10.0;
  params.min_pts = 4;
  params.distance = DistanceKind::kEuclidean;
  Result<OpticsResult> result = Optics(blobs.points, params);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->ordering.size(), blobs.points.size());
  std::vector<int> clusters = result->ExtractClusters(6.0);
  EXPECT_GE(*Purity(clusters, blobs.labels), 0.95);
}

TEST(OpticsTest, OrderingIsAPermutation) {
  Blobs blobs = MakeBlobs(10, 5.0, 51);
  OpticsParams params;
  params.epsilon = 100.0;
  params.min_pts = 3;
  params.distance = DistanceKind::kEuclidean;
  Result<OpticsResult> result = Optics(blobs.points, params);
  ASSERT_TRUE(result.ok());
  std::vector<size_t> sorted = result->ordering;
  std::sort(sorted.begin(), sorted.end());
  for (size_t i = 0; i < sorted.size(); ++i) EXPECT_EQ(sorted[i], i);
}

TEST(OpticsTest, IsolatedPointIsNoise) {
  std::vector<std::vector<double>> points = {
      {0, 0}, {0.1, 0}, {0, 0.1}, {0.1, 0.1}, {100, 100},
  };
  OpticsParams params;
  params.epsilon = 1.0;
  params.min_pts = 3;
  params.distance = DistanceKind::kEuclidean;
  Result<OpticsResult> result = Optics(points, params);
  ASSERT_TRUE(result.ok());
  std::vector<int> clusters = result->ExtractClusters(1.0);
  EXPECT_EQ(clusters[4], -1);
  EXPECT_GE(clusters[0], 0);
}

TEST(OpticsTest, RejectsBadParams) {
  OpticsParams params;
  params.min_pts = 0;
  EXPECT_FALSE(Optics({{0.0}}, params).ok());
  params.min_pts = 2;
  params.epsilon = 0.0;
  EXPECT_FALSE(Optics({{0.0}}, params).ok());
}

// ---------- metrics ----------

TEST(MetricsTest, PurityPerfectAndWorst) {
  EXPECT_DOUBLE_EQ(*Purity({0, 0, 1, 1}, {5, 5, 9, 9}), 1.0);
  // One cluster holding two labels evenly -> 0.5.
  EXPECT_DOUBLE_EQ(*Purity({0, 0, 0, 0}, {1, 1, 2, 2}), 0.5);
}

TEST(MetricsTest, PurityTreatsNoiseAsSingletons) {
  // Noise points each count as their own (pure) cluster.
  EXPECT_DOUBLE_EQ(*Purity({-1, -1, 0, 0}, {1, 2, 3, 3}), 1.0);
}

TEST(MetricsTest, RandIndexKnownValue) {
  // a={0,0,1,1}, b={0,1,1,1}: the pairs (0,1), (2,3) disagree/agree such
  // that 3 of 6 pairs agree.
  EXPECT_NEAR(*RandIndex({0, 0, 1, 1}, {0, 1, 1, 1}), 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(*RandIndex({0, 0, 1}, {5, 5, 7}), 1.0);
}

TEST(MetricsTest, AdjustedRandIdenticalIsOne) {
  EXPECT_DOUBLE_EQ(*AdjustedRandIndex({0, 0, 1, 1}, {3, 3, 4, 4}), 1.0);
}

TEST(MetricsTest, AdjustedRandOrthogonalNearZero) {
  std::vector<int> a = {0, 0, 0, 0, 1, 1, 1, 1};
  std::vector<int> b = {0, 1, 0, 1, 0, 1, 0, 1};
  EXPECT_NEAR(*AdjustedRandIndex(a, b), 0.0, 0.35);
}

TEST(MetricsTest, LengthValidation) {
  EXPECT_FALSE(Purity({0}, {0, 1}).ok());
  EXPECT_FALSE(RandIndex({}, {}).ok());
  EXPECT_FALSE(AdjustedRandIndex({0}, {0, 1}).ok());
}

}  // namespace
}  // namespace gea::cluster
