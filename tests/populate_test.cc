// Tests for populate(): correctness against a brute-force oracle, the
// index plan, and the absent-tag convention.

#include <gtest/gtest.h>

#include "core/enum_table.h"
#include "core/index_advisor.h"
#include "core/operators.h"
#include "core/populate.h"
#include "sage/generator.h"

namespace gea::core {
namespace {

using sage::TagId;

sage::SageDataSet ToyData() {
  sage::SageDataSet data;
  auto lib = [](int id, std::vector<std::pair<TagId, double>> counts) {
    sage::SageLibrary l(id, "L" + std::to_string(id),
                        sage::TissueType::kBrain,
                        sage::NeoplasticState::kNormal,
                        sage::TissueSource::kBulkTissue);
    for (const auto& [tag, count] : counts) l.SetCount(tag, count);
    return l;
  };
  data.AddLibrary(lib(1, {{10, 5.0}, {20, 1.0}, {30, 9.0}}));
  data.AddLibrary(lib(2, {{10, 6.0}, {20, 2.0}, {30, 1.0}}));
  data.AddLibrary(lib(3, {{10, 5.5}, {20, 8.0}, {30, 9.5}}));
  data.AddLibrary(lib(4, {{10, 50.0}, {20, 1.5}, {30, 9.2}}));
  return data;
}

SumyTable RangeSumy(std::vector<std::tuple<TagId, double, double>> ranges) {
  std::vector<SumyEntry> entries;
  for (const auto& [tag, lo, hi] : ranges) {
    entries.push_back({tag, lo, hi, (lo + hi) / 2, 0.0});
  }
  return *SumyTable::Create("query", std::move(entries));
}

TEST(PopulateTest, SequentialScanFindsSatisfyingLibraries) {
  EnumTable base = EnumTable::FromDataSet("base", ToyData());
  PopulateEngine engine(base);
  // 10 in [5, 6], 20 in [1, 2]: libraries 1 and 2 qualify (3 fails tag
  // 20, 4 fails tag 10).
  SumyTable sumy = RangeSumy({{10, 5.0, 6.0}, {20, 1.0, 2.0}});
  PopulateEngine::Stats stats;
  Result<EnumTable> out = engine.Populate(sumy, "out", &stats);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->NumLibraries(), 2u);
  EXPECT_EQ(out->library(0).id, 1);
  EXPECT_EQ(out->library(1).id, 2);
  EXPECT_EQ(stats.conditions, 2u);
  EXPECT_EQ(stats.index_hits, 0u);
}

TEST(PopulateTest, OutputColumnsAreTheSumyTags) {
  EnumTable base = EnumTable::FromDataSet("base", ToyData());
  PopulateEngine engine(base);
  SumyTable sumy = RangeSumy({{10, 0.0, 100.0}, {30, 0.0, 100.0}});
  Result<EnumTable> out = engine.Populate(sumy, "out");
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->tags(), (std::vector<TagId>{10, 30}));
  EXPECT_DOUBLE_EQ(out->ValueAt(0, 1), 9.0);  // lib1, tag 30
}

TEST(PopulateTest, AbsentTagTreatedAsZero) {
  EnumTable base = EnumTable::FromDataSet("base", ToyData());
  PopulateEngine engine(base);
  // Tag 999 exists nowhere: a range including 0 keeps everyone, one
  // excluding 0 keeps no one.
  SumyTable inclusive = RangeSumy({{999, 0.0, 10.0}});
  EXPECT_EQ(engine.Populate(inclusive, "out")->NumLibraries(), 4u);
  SumyTable exclusive = RangeSumy({{999, 1.0, 10.0}});
  EXPECT_EQ(engine.Populate(exclusive, "out")->NumLibraries(), 0u);
}

TEST(PopulateTest, IndexedPlanMatchesSequential) {
  EnumTable base = EnumTable::FromDataSet("base", ToyData());
  PopulateEngine indexed(base);
  ASSERT_TRUE(indexed.BuildIndexes({10, 20}).ok());
  PopulateEngine sequential(base);

  SumyTable sumy =
      RangeSumy({{10, 5.0, 6.0}, {20, 1.0, 2.0}, {30, 0.0, 9.0}});
  PopulateEngine::Stats stats;
  Result<EnumTable> fast = indexed.Populate(sumy, "fast", &stats);
  Result<EnumTable> slow = sequential.Populate(sumy, "slow");
  ASSERT_TRUE(fast.ok());
  ASSERT_TRUE(slow.ok());
  ASSERT_EQ(fast->NumLibraries(), slow->NumLibraries());
  for (size_t i = 0; i < fast->NumLibraries(); ++i) {
    EXPECT_EQ(fast->library(i).id, slow->library(i).id);
  }
  EXPECT_EQ(stats.index_hits, 2u);
  // Index intersection narrowed the candidates before scanning.
  EXPECT_LE(stats.candidates_after_index, 2u);
}

TEST(PopulateTest, BuildIndexesRejectsUnknownTags) {
  EnumTable base = EnumTable::FromDataSet("base", ToyData());
  PopulateEngine engine(base);
  EXPECT_TRUE(engine.BuildIndexes({999}).IsNotFound());
  EXPECT_EQ(engine.NumIndexes(), 0u);
}

TEST(PopulateTest, MembersOfAMinedFascicleAlwaysQualify) {
  // populate(SUMY_f, base) must return at least the fascicle's members —
  // the macro-operation invariant of Section 4.1.
  sage::GeneratorConfig config;
  config.seed = 19;
  config.panels = sage::SyntheticSageGenerator::SmallPanels();
  sage::SyntheticSage synth = sage::SyntheticSageGenerator(config).Generate();
  sage::SageDataSet brain =
      synth.dataset.FilterByTissue(sage::TissueType::kBrain);
  EnumTable base = EnumTable::FromDataSet("brain", brain);

  cluster::FascicleParams params;
  params.min_compact_tags = base.NumTags() / 2;
  params.tolerances = MakeToleranceMetadata(base, 20.0);
  params.min_size = 3;
  Result<std::vector<MinedFascicle>> mined = Mine(base, params, "fas");
  ASSERT_TRUE(mined.ok());
  ASSERT_FALSE(mined->empty());

  PopulateEngine engine(base);
  for (const MinedFascicle& m : *mined) {
    Result<EnumTable> populated = engine.Populate(m.sumy, "p");
    ASSERT_TRUE(populated.ok());
    // Every member id appears in the populated ENUM.
    for (const sage::LibraryMeta& member : m.members.libraries()) {
      EXPECT_TRUE(populated->FindLibraryRow(member.id).has_value())
          << "member " << member.name << " missing from populate output";
    }
  }
}

// Property sweep: on synthetic data, indexed populate with the top-m
// entropy tags returns exactly the sequential answer for various m.
class IndexedPopulateTest : public testing::TestWithParam<size_t> {};

TEST_P(IndexedPopulateTest, PlanEquivalence) {
  sage::GeneratorConfig config;
  config.seed = 23;
  config.panels = sage::SyntheticSageGenerator::SmallPanels();
  sage::SyntheticSage synth = sage::SyntheticSageGenerator(config).Generate();
  sage::SageDataSet brain =
      synth.dataset.FilterByTissue(sage::TissueType::kBrain);
  EnumTable base = EnumTable::FromDataSet("brain", brain);

  // A SUMY over a slice of the universe with generous ranges.
  std::vector<SumyEntry> entries;
  for (size_t col = 0; col < base.NumTags(); col += 7) {
    double lo = base.ValueAt(0, col);
    double hi = lo;
    for (size_t row = 0; row < base.NumLibraries(); ++row) {
      lo = std::min(lo, base.ValueAt(row, col));
      hi = std::max(hi, base.ValueAt(row, col));
    }
    entries.push_back({base.tag(col), lo, (lo + hi) / 2, 0.0, 0.0});
  }
  for (SumyEntry& e : entries) {
    e.mean = (e.min + e.max) / 2;
  }
  SumyTable sumy = *SumyTable::Create("q", std::move(entries));

  PopulateEngine sequential(base);
  Result<EnumTable> expected = sequential.Populate(sumy, "seq");
  ASSERT_TRUE(expected.ok());

  PopulateEngine indexed(base);
  std::vector<TagId> index_tags = TopEntropyTags(base, GetParam());
  ASSERT_TRUE(indexed.BuildIndexes(index_tags).ok());
  PopulateEngine::Stats stats;
  Result<EnumTable> got = indexed.Populate(sumy, "idx", &stats);
  ASSERT_TRUE(got.ok());

  ASSERT_EQ(got->NumLibraries(), expected->NumLibraries());
  for (size_t i = 0; i < got->NumLibraries(); ++i) {
    EXPECT_EQ(got->library(i).id, expected->library(i).id);
  }
}

INSTANTIATE_TEST_SUITE_P(VariousIndexCounts, IndexedPopulateTest,
                         testing::Values(1u, 4u, 16u, 64u, 256u));

}  // namespace
}  // namespace gea::core
