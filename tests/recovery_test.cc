// Crash-recovery tests for the session-level durable storage: WAL replay
// across clean restarts, checkpoint rotation, and the kill-point matrix —
// the same workload interrupted at every fault-injection point with every
// fault kind, asserting the recovered catalog is byte-identical to the
// state produced by exactly the committed (acknowledged) prefix of
// operations.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "sage/cleaning.h"
#include "sage/generator.h"
#include "sage/io.h"
#include "store/fault_env.h"
#include "store/file_env.h"
#include "workbench/session.h"

namespace gea {
namespace {

namespace fs = std::filesystem;

using store::FaultInjectionEnv;
using workbench::AccessLevel;
using workbench::AnalysisSession;

std::string FreshDir(const std::string& tag) {
  std::string dir = testing::TempDir() + "/gea_recover_" + tag;
  fs::remove_all(dir);
  return dir;
}

const sage::SageDataSet& TestDataSet() {
  static const sage::SageDataSet* dataset = [] {
    sage::GeneratorConfig config;
    config.seed = 42;
    config.panels = sage::SyntheticSageGenerator::SmallPanels();
    sage::SyntheticSage synth = sage::SyntheticSageGenerator(config).Generate();
    sage::CleanAndNormalize(synth.dataset);
    // Round-trip through the library text codec once so the dataset is a
    // fixed point of it: the WAL persists datasets in that format, and the
    // byte-identical assertions below need replayed computations to see
    // exactly the same doubles as the reference session.
    auto* fixed = new sage::SageDataSet();
    for (size_t i = 0; i < synth.dataset.NumLibraries(); ++i) {
      const sage::SageLibrary& lib = synth.dataset.library(i);
      Result<sage::SageLibrary> back =
          sage::ReadLibraryText(lib.name(), sage::WriteLibraryText(lib));
      EXPECT_TRUE(back.ok()) << back.status().ToString();
      fixed->AddLibrary(std::move(*back));
    }
    return fixed;
  }();
  return *dataset;
}

std::unique_ptr<AnalysisSession> NewAdminSession() {
  auto session = std::make_unique<AnalysisSession>("admin", "secret");
  EXPECT_TRUE(
      session->Login("admin", "secret", AccessLevel::kAdministrator).ok());
  return session;
}

/// The workload the kill-point matrix interrupts. Every step is a logical
/// operation the WAL must make durable; the mid-workload checkpoint step
/// exercises the snapshot rotation fault points too (it is a no-op for
/// the storage-less reference sessions — checkpoints do not change the
/// logical catalog).
std::vector<std::function<Status(AnalysisSession&)>> WorkloadSteps() {
  return {
      [](AnalysisSession& s) { return s.LoadDataSet(TestDataSet()); },
      [](AnalysisSession& s) {
        return s.CreateTissueDataSet(sage::TissueType::kBrain);
      },
      [](AnalysisSession& s) {
        return s.GenerateMetadata("brain", 25.0, "meta");
      },
      [](AnalysisSession& s) { return s.Aggregate("brain", "brain_sumy"); },
      [](AnalysisSession& s) {
        return s.CreateTissueDataSet(sage::TissueType::kBreast);
      },
      [](AnalysisSession& s) { return s.Aggregate("breast", "breast_sumy"); },
      [](AnalysisSession& s) {
        return s.CreateGap("brain_sumy", "breast_sumy", "bb_gap");
      },
      [](AnalysisSession& s) {
        return s.StorageAttached() ? s.Checkpoint() : Status::OK();
      },
      [](AnalysisSession& s) {
        return s.CalculateTopGap("bb_gap", 5).status();
      },
      [](AnalysisSession& s) { return s.CommentOn("bb_gap", "crash test"); },
      [](AnalysisSession& s) {
        return s.DeleteTable("breast_sumy", /*cascade=*/false);
      },
  };
}

/// Canonical byte-level state of a session: every file SaveDatabase
/// emits, keyed by relative path. SaveDatabase is deterministic, so two
/// sessions holding the same catalog fingerprint identically.
std::map<std::string, std::string> Fingerprint(const AnalysisSession& session,
                                               const std::string& tag) {
  std::string dir = FreshDir("fp_" + tag);
  Status saved = session.SaveDatabase(dir);
  EXPECT_TRUE(saved.ok()) << saved.ToString();
  std::map<std::string, std::string> files;
  for (const auto& entry : fs::recursive_directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    std::ifstream in(entry.path(), std::ios::binary);
    files[fs::relative(entry.path(), dir).string()] =
        std::string(std::istreambuf_iterator<char>(in), {});
  }
  fs::remove_all(dir);
  return files;
}

/// Runs the workload against a session with storage at `dir` through
/// `env`, stopping at the first failed step. Returns how many steps were
/// acknowledged (returned OK) — with sync-every-record, exactly the
/// committed prefix.
size_t RunWorkload(const std::string& dir, store::FileEnv* env) {
  std::unique_ptr<AnalysisSession> session = NewAdminSession();
  if (!session->OpenStorage(dir, store::StorageOptions{}, env).ok()) return 0;
  size_t committed = 0;
  for (const auto& step : WorkloadSteps()) {
    if (!step(*session).ok()) break;
    ++committed;
  }
  return committed;
}

// ---------- clean restarts ----------

TEST(RecoveryTest, WalReplayAcrossCleanRestart) {
  std::string dir = FreshDir("clean");
  size_t committed = RunWorkload(dir, store::FileEnv::Default());
  EXPECT_EQ(committed, WorkloadSteps().size());

  std::unique_ptr<AnalysisSession> reference = NewAdminSession();
  for (const auto& step : WorkloadSteps()) ASSERT_TRUE(step(*reference).ok());

  std::unique_ptr<AnalysisSession> recovered = NewAdminSession();
  ASSERT_TRUE(recovered->OpenStorage(dir).ok());
  EXPECT_EQ(Fingerprint(*recovered, "clean_rec"),
            Fingerprint(*reference, "clean_ref"));

  Result<store::RecoverySummary> summary = recovered->StorageRecovery();
  ASSERT_TRUE(summary.ok());
  // The mid-workload checkpoint rotated to generation 1 with a snapshot;
  // only the post-checkpoint operations were replayed from the WAL.
  EXPECT_EQ(summary->generation, 1u);
  EXPECT_TRUE(summary->snapshot_loaded);
  EXPECT_EQ(summary->wal_records_replayed, 3u);
  EXPECT_FALSE(summary->wal_torn_tail);
}

TEST(RecoveryTest, CheckpointThenRestartLoadsSnapshotOnly) {
  std::string dir = FreshDir("ckpt");
  {
    std::unique_ptr<AnalysisSession> session = NewAdminSession();
    ASSERT_TRUE(session->OpenStorage(dir).ok());
    for (const auto& step : WorkloadSteps()) ASSERT_TRUE(step(*session).ok());
    ASSERT_TRUE(session->Checkpoint().ok());
  }
  std::unique_ptr<AnalysisSession> recovered = NewAdminSession();
  ASSERT_TRUE(recovered->OpenStorage(dir).ok());
  Result<store::RecoverySummary> summary = recovered->StorageRecovery();
  ASSERT_TRUE(summary.ok());
  EXPECT_EQ(summary->wal_records_replayed, 0u);
  EXPECT_TRUE(summary->snapshot_loaded);
  EXPECT_EQ(summary->generation, 2u);

  std::unique_ptr<AnalysisSession> reference = NewAdminSession();
  for (const auto& step : WorkloadSteps()) ASSERT_TRUE(step(*reference).ok());
  EXPECT_EQ(Fingerprint(*recovered, "ckpt_rec"),
            Fingerprint(*reference, "ckpt_ref"));

  // The recovered session keeps working and logging.
  ASSERT_TRUE(recovered->Aggregate("brain", "post_sumy").ok());
  ASSERT_TRUE(recovered->CloseStorage().ok());
}

TEST(RecoveryTest, OpenStorageRequiresAdmin) {
  AnalysisSession session("admin", "secret");
  EXPECT_TRUE(session.OpenStorage(FreshDir("noadmin")).IsPermissionDenied());
}

TEST(RecoveryTest, DoubleAttachFails) {
  std::unique_ptr<AnalysisSession> session = NewAdminSession();
  ASSERT_TRUE(session->OpenStorage(FreshDir("attach1")).ok());
  EXPECT_TRUE(
      session->OpenStorage(FreshDir("attach2")).IsFailedPrecondition());
}

// ---------- the kill-point matrix ----------

class KillPointMatrixTest
    : public testing::TestWithParam<FaultInjectionEnv::FaultKind> {};

TEST_P(KillPointMatrixTest, RecoversToCommittedPrefix) {
  const FaultInjectionEnv::FaultKind kind = GetParam();

  // Dry run: count the mutating file-system operations the workload
  // performs — that is the matrix dimension.
  FaultInjectionEnv probe(store::FileEnv::Default());
  {
    std::string dir = FreshDir("probe");
    size_t committed = RunWorkload(dir, &probe);
    ASSERT_EQ(committed, WorkloadSteps().size());
  }
  const uint64_t points = probe.FaultPointsSeen();
  ASSERT_GT(points, 10u);

  // Reference fingerprints for every possible committed prefix, built
  // lazily — most kill points land on a handful of prefixes.
  std::map<size_t, std::map<std::string, std::string>> references;
  auto reference_for = [&](size_t committed) {
    auto it = references.find(committed);
    if (it != references.end()) return it->second;
    std::unique_ptr<AnalysisSession> session = NewAdminSession();
    std::vector<std::function<Status(AnalysisSession&)>> steps =
        WorkloadSteps();
    for (size_t i = 0; i < committed; ++i) {
      EXPECT_TRUE(steps[i](*session).ok()) << "reference step " << i;
    }
    return references
        .emplace(committed,
                 Fingerprint(*session, "ref" + std::to_string(committed)))
        .first->second;
  };

  for (uint64_t point = 0; point < points; ++point) {
    SCOPED_TRACE("fault point " + std::to_string(point));
    std::string dir = FreshDir("matrix");

    FaultInjectionEnv env(store::FileEnv::Default());
    env.ArmFault(point, kind);
    size_t committed = RunWorkload(dir, &env);
    ASSERT_TRUE(env.Killed());  // every point in the matrix actually fires
    ASSERT_LT(committed, WorkloadSteps().size());

    // Reboot: recover with the real file system.
    std::unique_ptr<AnalysisSession> recovered = NewAdminSession();
    Status opened = recovered->OpenStorage(dir);
    ASSERT_TRUE(opened.ok()) << opened.ToString();
    ASSERT_EQ(Fingerprint(*recovered, "rec"), reference_for(committed));
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllFaultKinds, KillPointMatrixTest,
    testing::Values(FaultInjectionEnv::FaultKind::kKill,
                    FaultInjectionEnv::FaultKind::kShortWrite,
                    FaultInjectionEnv::FaultKind::kFailSync),
    [](const testing::TestParamInfo<FaultInjectionEnv::FaultKind>& info) {
      switch (info.param) {
        case FaultInjectionEnv::FaultKind::kKill:
          return "Kill";
        case FaultInjectionEnv::FaultKind::kShortWrite:
          return "ShortWrite";
        case FaultInjectionEnv::FaultKind::kFailSync:
          return "FailSync";
      }
      return "Unknown";
    });

}  // namespace
}  // namespace gea
