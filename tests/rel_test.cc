// Tests for the relational substrate: schema/table, predicates, operators,
// indexes, catalog and CSV persistence.

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>

#include "rel/catalog.h"
#include "rel/expr.h"
#include "rel/index.h"
#include "rel/ops.h"
#include "rel/table.h"
#include "rel/table_io.h"

namespace gea::rel {
namespace {

Schema PeopleSchema() {
  return Schema({{"name", ValueType::kString},
                 {"age", ValueType::kInt},
                 {"score", ValueType::kDouble}});
}

Table People() {
  Table t("people", PeopleSchema());
  t.AppendRowUnchecked({Value::String("ann"), Value::Int(30),
                        Value::Double(1.5)});
  t.AppendRowUnchecked({Value::String("bob"), Value::Int(25),
                        Value::Double(2.5)});
  t.AppendRowUnchecked({Value::String("cid"), Value::Int(35),
                        Value::Double(0.5)});
  t.AppendRowUnchecked({Value::String("dee"), Value::Int(25),
                        Value::Null()});
  return t;
}

// ---------- Schema / Table ----------

TEST(SchemaTest, CreateRejectsDuplicates) {
  EXPECT_FALSE(Schema::Create({{"a", ValueType::kInt},
                               {"a", ValueType::kInt}})
                   .ok());
  EXPECT_FALSE(Schema::Create({{"", ValueType::kInt}}).ok());
  EXPECT_TRUE(Schema::Create({{"a", ValueType::kInt}}).ok());
}

TEST(SchemaTest, FindColumn) {
  Schema s = PeopleSchema();
  EXPECT_EQ(*s.FindColumn("age"), 1u);
  EXPECT_FALSE(s.FindColumn("nope").has_value());
  EXPECT_TRUE(s.ColumnIndex("nope").status().IsNotFound());
}

TEST(TableTest, AppendRowValidatesArityAndTypes) {
  Table t("t", PeopleSchema());
  EXPECT_TRUE(t.AppendRow({Value::String("x"), Value::Int(1),
                           Value::Double(1)})
                  .ok());
  EXPECT_FALSE(t.AppendRow({Value::String("x"), Value::Int(1)}).ok());
  EXPECT_FALSE(t.AppendRow({Value::Int(1), Value::Int(1), Value::Double(1)})
                   .ok());
  // NULL allowed anywhere.
  EXPECT_TRUE(
      t.AppendRow({Value::Null(), Value::Null(), Value::Null()}).ok());
  EXPECT_EQ(t.NumRows(), 2u);
}

TEST(TableTest, GetByName) {
  Table t = People();
  EXPECT_EQ(t.Get(0, "name")->AsString(), "ann");
  EXPECT_TRUE(t.Get(99, "name").status().code() == StatusCode::kOutOfRange);
  EXPECT_TRUE(t.Get(0, "bogus").status().IsNotFound());
}

// ---------- Predicates / Select ----------

TEST(SelectTest, CompareLiteral) {
  Table t = People();
  Result<Table> out = Select(t, Compare("age", CompareOp::kGt,
                                        Value::Int(26)), "old");
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->NumRows(), 2u);
}

TEST(SelectTest, NullNeverMatchesComparisons) {
  Table t = People();
  // dee has NULL score; she matches neither < nor >= filters.
  Result<Table> lt = Select(t, Compare("score", CompareOp::kLt,
                                       Value::Double(100.0)), "lt");
  ASSERT_TRUE(lt.ok());
  EXPECT_EQ(lt->NumRows(), 3u);
  Result<Table> ge = Select(t, Compare("score", CompareOp::kGe,
                                       Value::Double(-100.0)), "ge");
  EXPECT_EQ(ge->NumRows(), 3u);
}

TEST(SelectTest, IsNullPredicates) {
  Table t = People();
  EXPECT_EQ(Select(t, IsNull("score"), "n")->NumRows(), 1u);
  EXPECT_EQ(Select(t, IsNotNull("score"), "nn")->NumRows(), 3u);
}

TEST(SelectTest, BetweenInclusive) {
  Table t = People();
  Result<Table> out =
      Select(t, Between("age", Value::Int(25), Value::Int(30)), "mid");
  EXPECT_EQ(out->NumRows(), 3u);
}

TEST(SelectTest, BooleanCombinators) {
  Table t = People();
  std::vector<PredicatePtr> both;
  both.push_back(Compare("age", CompareOp::kEq, Value::Int(25)));
  both.push_back(IsNotNull("score"));
  EXPECT_EQ(Select(t, And(std::move(both)), "a")->NumRows(), 1u);

  std::vector<PredicatePtr> either;
  either.push_back(Compare("name", CompareOp::kEq, Value::String("ann")));
  either.push_back(Compare("name", CompareOp::kEq, Value::String("cid")));
  EXPECT_EQ(Select(t, Or(std::move(either)), "o")->NumRows(), 2u);

  EXPECT_EQ(Select(t, Not(IsNull("score")), "not")->NumRows(), 3u);
  EXPECT_EQ(Select(t, True(), "all")->NumRows(), 4u);
}

TEST(SelectTest, CompareColumns) {
  Schema s({{"a", ValueType::kInt}, {"b", ValueType::kInt}});
  Table t("t", s);
  t.AppendRowUnchecked({Value::Int(1), Value::Int(2)});
  t.AppendRowUnchecked({Value::Int(3), Value::Int(3)});
  t.AppendRowUnchecked({Value::Int(5), Value::Int(4)});
  EXPECT_EQ(Select(t, CompareColumns("a", CompareOp::kLt, "b"), "lt")
                ->NumRows(),
            1u);
  EXPECT_EQ(Select(t, CompareColumns("a", CompareOp::kEq, "b"), "eq")
                ->NumRows(),
            1u);
}

TEST(SelectTest, UnknownColumnFailsAtBind) {
  Table t = People();
  EXPECT_TRUE(Select(t, Compare("bogus", CompareOp::kEq, Value::Int(1)), "x")
                  .status()
                  .IsNotFound());
}

// ---------- Project / Distinct / Rename / Sort / Limit ----------

TEST(ProjectTest, ReordersColumns) {
  Table t = People();
  Result<Table> out = Project(t, {"age", "name"}, "p");
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->schema().column(0).name, "age");
  EXPECT_EQ(out->At(0, 1).AsString(), "ann");
}

TEST(ProjectTest, UnknownColumnFails) {
  EXPECT_FALSE(Project(People(), {"nope"}, "p").ok());
}

TEST(DistinctTest, RemovesDuplicates) {
  Schema s({{"x", ValueType::kInt}});
  Table t("t", s);
  for (int v : {1, 2, 1, 3, 2, 1}) {
    t.AppendRowUnchecked({Value::Int(v)});
  }
  EXPECT_EQ(Distinct(t, "d")->NumRows(), 3u);
}

TEST(RenameTest, RenamesColumn) {
  Result<Table> out = RenameColumn(People(), "age", "years", "r");
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->schema().FindColumn("years").has_value());
  EXPECT_FALSE(out->schema().FindColumn("age").has_value());
}

TEST(SortTest, MultiKeyWithDirections) {
  Table t = People();
  Result<Table> out = Sort(t, {{"age", true}, {"name", false}}, "s");
  ASSERT_TRUE(out.ok());
  // age 25 first (bob, dee -> desc name: dee then bob), then 30, 35.
  EXPECT_EQ(out->At(0, 0).AsString(), "dee");
  EXPECT_EQ(out->At(1, 0).AsString(), "bob");
  EXPECT_EQ(out->At(2, 0).AsString(), "ann");
  EXPECT_EQ(out->At(3, 0).AsString(), "cid");
}

TEST(SortTest, NullsSortFirst) {
  Table t = People();
  Result<Table> out = Sort(t, {{"score", true}}, "s");
  EXPECT_TRUE(out->At(0, 2).is_null());
}

TEST(LimitTest, TruncatesAndHandlesOverrun) {
  EXPECT_EQ(Limit(People(), 2, "l")->NumRows(), 2u);
  EXPECT_EQ(Limit(People(), 99, "l")->NumRows(), 4u);
}

// ---------- Join ----------

TEST(JoinTest, BasicEquiJoin) {
  Schema left_schema({{"id", ValueType::kInt}, {"name", ValueType::kString}});
  Table left("left", left_schema);
  left.AppendRowUnchecked({Value::Int(1), Value::String("a")});
  left.AppendRowUnchecked({Value::Int(2), Value::String("b")});
  left.AppendRowUnchecked({Value::Int(3), Value::String("c")});

  Schema right_schema({{"key", ValueType::kInt}, {"val", ValueType::kString}});
  Table right("right", right_schema);
  right.AppendRowUnchecked({Value::Int(2), Value::String("x")});
  right.AppendRowUnchecked({Value::Int(2), Value::String("y")});
  right.AppendRowUnchecked({Value::Int(4), Value::String("z")});

  Result<Table> out = HashJoin(left, right, "id", "key", "j");
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->NumRows(), 2u);  // id=2 joins twice
  EXPECT_EQ(out->schema().NumColumns(), 3u);  // id, name, val
}

TEST(JoinTest, NullKeysNeverJoin) {
  Schema s({{"k", ValueType::kInt}});
  Table a("a", s);
  a.AppendRowUnchecked({Value::Null()});
  Table b("b", s);
  b.AppendRowUnchecked({Value::Null()});
  EXPECT_EQ(HashJoin(a, b, "k", "k", "j")->NumRows(), 0u);
}

TEST(JoinTest, ClashingColumnNamesGetPrefixed) {
  Schema s({{"k", ValueType::kInt}, {"name", ValueType::kString}});
  Table a("a", s);
  a.AppendRowUnchecked({Value::Int(1), Value::String("l")});
  Table b("b", s);
  b.AppendRowUnchecked({Value::Int(1), Value::String("r")});
  Result<Table> out = HashJoin(a, b, "k", "k", "j");
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->schema().FindColumn("r_name").has_value());
}

// ---------- GroupAggregate ----------

TEST(AggregateTest, GroupedAggregates) {
  Table t = People();
  Result<Table> out = GroupAggregate(
      t, {"age"},
      {{AggFn::kCount, "", "n"}, {AggFn::kAvg, "score", "avg_score"}},
      "g");
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->NumRows(), 3u);
  // age 25 group: bob (2.5) + dee (NULL) -> count 2, avg over non-null 2.5.
  bool found = false;
  for (size_t r = 0; r < out->NumRows(); ++r) {
    if (out->At(r, 0).AsInt() == 25) {
      EXPECT_EQ(out->At(r, 1).AsInt(), 2);
      EXPECT_DOUBLE_EQ(out->At(r, 2).AsDouble(), 2.5);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(AggregateTest, GlobalAggregatesOnEmptyGroupList) {
  Table t = People();
  Result<Table> out = GroupAggregate(
      t, {},
      {{AggFn::kCount, "", "n"},
       {AggFn::kMin, "age", "min_age"},
       {AggFn::kMax, "age", "max_age"},
       {AggFn::kSum, "score", "total"}},
      "g");
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->NumRows(), 1u);
  EXPECT_EQ(out->At(0, 0).AsInt(), 4);
  EXPECT_EQ(out->At(0, 1).AsInt(), 25);
  EXPECT_EQ(out->At(0, 2).AsInt(), 35);
  EXPECT_DOUBLE_EQ(out->At(0, 3).AsDouble(), 4.5);
}

TEST(AggregateTest, StdDevMatchesPopulationFormula) {
  Schema s({{"x", ValueType::kDouble}});
  Table t("t", s);
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    t.AppendRowUnchecked({Value::Double(v)});
  }
  Result<Table> out =
      GroupAggregate(t, {}, {{AggFn::kStdDev, "x", "sd"}}, "g");
  ASSERT_TRUE(out.ok());
  EXPECT_NEAR(out->At(0, 0).AsDouble(), 2.0, 1e-9);  // classic example
}

TEST(AggregateTest, NumericFnOnStringColumnFails) {
  EXPECT_FALSE(
      GroupAggregate(People(), {}, {{AggFn::kSum, "name", "s"}}, "g").ok());
}

TEST(AggregateTest, EmptyInputGlobalGroupEmitsOneRow) {
  Table t("t", PeopleSchema());
  Result<Table> out = GroupAggregate(
      t, {}, {{AggFn::kCount, "", "n"}, {AggFn::kAvg, "score", "a"}}, "g");
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->NumRows(), 1u);
  EXPECT_EQ(out->At(0, 0).AsInt(), 0);
  EXPECT_TRUE(out->At(0, 1).is_null());
}

// ---------- Set operations ----------

Table Numbers(const std::string& name, std::vector<int> xs) {
  Schema s({{"x", ValueType::kInt}});
  Table t(name, s);
  for (int x : xs) t.AppendRowUnchecked({Value::Int(x)});
  return t;
}

TEST(SetOpsTest, UnionDeduplicates) {
  Result<Table> out =
      Union(Numbers("a", {1, 2, 2}), Numbers("b", {2, 3}), "u");
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->NumRows(), 3u);
}

TEST(SetOpsTest, IntersectAndMinus) {
  Table a = Numbers("a", {1, 2, 3, 3});
  Table b = Numbers("b", {2, 3, 4});
  EXPECT_EQ(Intersect(a, b, "i")->NumRows(), 2u);
  EXPECT_EQ(Minus(a, b, "m")->NumRows(), 1u);
  EXPECT_EQ(Minus(a, b, "m")->At(0, 0).AsInt(), 1);
}

TEST(SetOpsTest, SchemaMismatchFails) {
  Table a = Numbers("a", {1});
  Table b("b", Schema({{"y", ValueType::kInt}}));
  EXPECT_FALSE(Union(a, b, "u").ok());
}

// ---------- SortedIndex ----------

TEST(IndexTest, RangeLookupAndCount) {
  Table t = People();
  Result<SortedIndex> idx = SortedIndex::Build(t, "age");
  ASSERT_TRUE(idx.ok());
  std::vector<size_t> rows = idx->RangeLookup(Value::Int(25), Value::Int(30));
  EXPECT_EQ(rows.size(), 3u);
  EXPECT_EQ(idx->RangeCount(Value::Int(25), Value::Int(30)), 3u);
  EXPECT_EQ(idx->RangeCount(Value::Int(100), Value::Int(200)), 0u);
}

TEST(IndexTest, ExcludesNulls) {
  Table t = People();
  Result<SortedIndex> idx = SortedIndex::Build(t, "score");
  ASSERT_TRUE(idx.ok());
  EXPECT_EQ(idx->NumEntries(), 3u);
}

TEST(IndexTest, UnknownColumnFails) {
  EXPECT_FALSE(SortedIndex::Build(People(), "bogus").ok());
}

// ---------- Catalog ----------

TEST(CatalogTest, CreateGetDrop) {
  Catalog catalog;
  ASSERT_TRUE(catalog.CreateTable(People()).ok());
  EXPECT_TRUE(catalog.HasTable("people"));
  ASSERT_TRUE(catalog.GetTable("people").ok());
  EXPECT_TRUE(catalog.DropTable("people").ok());
  EXPECT_FALSE(catalog.HasTable("people"));
  EXPECT_TRUE(catalog.DropTable("people").IsNotFound());
}

TEST(CatalogTest, RedundancyCheck) {
  Catalog catalog;
  ASSERT_TRUE(catalog.CreateTable(People()).ok());
  // Section 4.4.5.2: re-creating without replace is refused.
  EXPECT_TRUE(catalog.CreateTable(People()).IsAlreadyExists());
  EXPECT_TRUE(catalog.CreateTable(People(), /*replace=*/true).ok());
}

TEST(CatalogTest, InitializeDropsEverything) {
  Catalog catalog;
  ASSERT_TRUE(catalog.CreateTable(People()).ok());
  ASSERT_TRUE(catalog.RegisterComputed("view", [] {
    return Table("view", Schema({{"n", ValueType::kInt}}));
  }).ok());
  catalog.Initialize();
  EXPECT_EQ(catalog.NumTables(), 0u);
  EXPECT_FALSE(catalog.HasTable("view"));
}

// ---------- Computed (view-style) tables ----------

Catalog::TableBuilder CountingBuilder(int* builds) {
  return [builds] {
    ++*builds;
    Table t("view", Schema({{"n", ValueType::kInt}}));
    t.AppendRowUnchecked({Value::Int(*builds)});
    return t;
  };
}

TEST(CatalogTest, ComputedTableRematerializesOnEveryRead) {
  Catalog catalog;
  int builds = 0;
  ASSERT_TRUE(catalog.RegisterComputed("view", CountingBuilder(&builds)).ok());
  EXPECT_TRUE(catalog.HasTable("view"));
  EXPECT_TRUE(catalog.IsComputed("view"));
  EXPECT_FALSE(catalog.IsComputed("people"));

  Result<const Table*> first = catalog.GetTable("view");
  ASSERT_TRUE(first.ok());
  EXPECT_EQ((*first)->At(0, 0).AsInt(), 1);
  Result<const Table*> second = catalog.GetTable("view");
  ASSERT_TRUE(second.ok());
  EXPECT_EQ((*second)->At(0, 0).AsInt(), 2);  // builder ran again
  EXPECT_EQ(builds, 2);
}

TEST(CatalogTest, ComputedTableIsReadOnly) {
  Catalog catalog;
  int builds = 0;
  ASSERT_TRUE(catalog.RegisterComputed("view", CountingBuilder(&builds)).ok());
  EXPECT_TRUE(catalog.GetMutableTable("view").status().IsFailedPrecondition());
}

TEST(CatalogTest, ComputedTableNameConflicts) {
  Catalog catalog;
  int builds = 0;
  ASSERT_TRUE(catalog.CreateTable(People()).ok());
  // Stored name blocks a computed registration (and vice versa) without
  // replace; with replace the older object is gone.
  EXPECT_TRUE(catalog.RegisterComputed("people", CountingBuilder(&builds))
                  .IsAlreadyExists());
  ASSERT_TRUE(catalog
                  .RegisterComputed("people", CountingBuilder(&builds),
                                    /*replace=*/true)
                  .ok());
  EXPECT_TRUE(catalog.IsComputed("people"));
  EXPECT_EQ(catalog.NumTables(), 1u);

  Table stored("people", PeopleSchema());
  EXPECT_TRUE(catalog.CreateTable(stored).IsAlreadyExists());
  ASSERT_TRUE(catalog.CreateTable(std::move(stored), /*replace=*/true).ok());
  EXPECT_FALSE(catalog.IsComputed("people"));
}

TEST(CatalogTest, ComputedTableDropAndRejects) {
  Catalog catalog;
  int builds = 0;
  EXPECT_TRUE(catalog.RegisterComputed("", CountingBuilder(&builds))
                  .IsInvalidArgument());
  EXPECT_TRUE(
      catalog.RegisterComputed("view", nullptr).IsInvalidArgument());
  ASSERT_TRUE(catalog.RegisterComputed("view", CountingBuilder(&builds)).ok());
  EXPECT_TRUE(catalog.DropTable("view").ok());
  EXPECT_FALSE(catalog.HasTable("view"));
  EXPECT_TRUE(catalog.DropTable("view").IsNotFound());
}

// ---------- Table IO ----------

TEST(TableIoTest, CsvRoundTripPreservesTypesAndNulls) {
  Table t = People();
  Result<Table> back = TableFromCsv("people", TableToCsv(t));
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->NumRows(), t.NumRows());
  EXPECT_TRUE(back->schema() == t.schema());
  EXPECT_TRUE(back->At(3, 2).is_null());
  EXPECT_EQ(back->At(0, 1).AsInt(), 30);
}

TEST(TableIoTest, FileRoundTrip) {
  const std::string path = testing::TempDir() + "/gea_table.csv";
  ASSERT_TRUE(SaveTable(People(), path).ok());
  Result<Table> back = LoadTable("people", path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->NumRows(), 4u);
}

TEST(TableIoTest, BadHeaderFails) {
  EXPECT_FALSE(TableFromCsv("t", "noType\n1\n").ok());
  EXPECT_FALSE(TableFromCsv("t", "a:varchar\nx\n").ok());
}

TEST(TableIoTest, MalformedFileCorpusFailsCleanly) {
  // Every corpus entry is a damaged table file a crashed or hostile
  // writer could leave behind; LoadTable must return an error for each —
  // never crash, never hand back a half-parsed table.
  const struct {
    const char* label;
    const char* text;
  } corpus[] = {
      {"empty header", "\n1,2\n"},
      {"untyped column", "id:int,name\n1,x\n"},
      {"unknown type", "id:int,len:float\n1,2\n"},
      {"duplicate columns", "id:int,id:int\n1,2\n"},
      {"row too short", "id:int,name:string\n1\n"},
      {"row too long", "id:int,name:string\n1,x,extra\n"},
      {"non-numeric int cell", "id:int\nforty-two\n"},
      {"float in int column", "id:int\n4.2\n"},
      {"non-numeric double cell", "score:double\n--\n"},
      {"int overflow", "id:int\n99999999999999999999999\n"},
      {"int underflow", "id:int\n-99999999999999999999999\n"},
      {"double overflow", "score:double\n1e999\n"},
      {"truncated quoted field", "name:string\n\"unterminated\n"},
      {"truncated final row",
       "id:int,name:string,score:double\n1,ok,2.5\n2,tor"},
  };
  for (const auto& bad : corpus) {
    const std::string path = testing::TempDir() + "/gea_bad_table.csv";
    {
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      out << bad.text;
    }
    Result<Table> loaded = LoadTable("t", path);
    EXPECT_FALSE(loaded.ok()) << "corpus entry accepted: " << bad.label;
  }
}

TEST(TableIoTest, ExtremeButValidNumbersLoad) {
  const std::string path = testing::TempDir() + "/gea_extreme_table.csv";
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << "id:int,score:double\n"
        << "9223372036854775807,1e308\n"
        << "-9223372036854775808,1e-320\n";  // denormal underflow is fine
  }
  Result<Table> loaded = LoadTable("t", path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->At(0, 0).AsInt(), INT64_MAX);
  EXPECT_EQ(loaded->At(1, 0).AsInt(), INT64_MIN);
  EXPECT_GT(loaded->At(1, 1).AsDouble(), 0.0);
}

}  // namespace
}  // namespace gea::rel
