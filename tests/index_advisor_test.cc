// Tests for the Section 3.3.2 index-selection analysis, including the
// exact reproduction of Table 3.1.

#include <gtest/gtest.h>

#include "core/enum_table.h"
#include "core/index_advisor.h"
#include "sage/dataset.h"

namespace gea::core {
namespace {

// ---- Table 3.1: n = 60,000, p = 25,000, P >= 0.999 ----

struct Table31Row {
  int64_t w;
  int64_t expected_m;
};

class Table31Test : public testing::TestWithParam<Table31Row> {};

TEST_P(Table31Test, RequiredIndexCountMatchesThesis) {
  const Table31Row& row = GetParam();
  Result<int64_t> m = RequiredIndexCount(60000, 25000, row.w, 0.999);
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(*m, row.expected_m) << "w = " << row.w;
}

INSTANTIATE_TEST_SUITE_P(ThesisValues, Table31Test,
                         testing::Values(Table31Row{1, 17},   //
                                         Table31Row{2, 23},   //
                                         Table31Row{3, 27},   //
                                         Table31Row{4, 32},   //
                                         Table31Row{5, 36},   //
                                         Table31Row{6, 40},   //
                                         Table31Row{7, 44},   //
                                         Table31Row{8, 48},   //
                                         Table31Row{9, 51},   //
                                         Table31Row{10, 55}));

// ---- Probability model properties ----

TEST(ProbabilityTest, ExactHitsSumToOne) {
  // Small enough to sum completely.
  double total = 0.0;
  for (int64_t w = 0; w <= 20; ++w) {
    total += ProbExactlyWIndexHits(100, 20, 10, w);
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ProbabilityTest, EdgeCases) {
  EXPECT_DOUBLE_EQ(ProbExactlyWIndexHits(100, 20, 0, 0), 1.0);
  EXPECT_DOUBLE_EQ(ProbExactlyWIndexHits(100, 20, 0, 1), 0.0);
  EXPECT_DOUBLE_EQ(ProbExactlyWIndexHits(100, 20, 100, 20), 1.0);
  EXPECT_DOUBLE_EQ(ProbExactlyWIndexHits(100, 20, 100, 19), 0.0);
  EXPECT_DOUBLE_EQ(ProbExactlyWIndexHits(100, 20, 10, -1), 0.0);
  EXPECT_DOUBLE_EQ(ProbExactlyWIndexHits(100, 20, 10, 21), 0.0);
}

TEST(ProbabilityTest, AtLeastIsMonotoneInM) {
  for (int64_t m = 1; m < 50; ++m) {
    EXPECT_LE(ProbAtLeastWIndexHits(1000, 100, m, 2),
              ProbAtLeastWIndexHits(1000, 100, m + 1, 2) + 1e-12);
  }
}

TEST(ProbabilityTest, AtLeastIsAntitoneInW) {
  for (int64_t w = 1; w < 10; ++w) {
    EXPECT_GE(ProbAtLeastWIndexHits(1000, 100, 50, w),
              ProbAtLeastWIndexHits(1000, 100, 50, w + 1) - 1e-12);
  }
}

TEST(RequiredIndexCountTest, Validation) {
  EXPECT_FALSE(RequiredIndexCount(0, 10, 1).ok());
  EXPECT_FALSE(RequiredIndexCount(100, 0, 1).ok());
  EXPECT_FALSE(RequiredIndexCount(100, 200, 1).ok());
  EXPECT_FALSE(RequiredIndexCount(100, 10, 0).ok());
  EXPECT_FALSE(RequiredIndexCount(100, 10, 11).ok());
  EXPECT_FALSE(RequiredIndexCount(100, 10, 1, 0.0).ok());
  EXPECT_FALSE(RequiredIndexCount(100, 10, 1, 1.0).ok());
}

TEST(RequiredIndexCountTest, HigherConfidenceNeedsMoreIndexes) {
  int64_t low = *RequiredIndexCount(60000, 25000, 4, 0.9);
  int64_t high = *RequiredIndexCount(60000, 25000, 4, 0.999);
  EXPECT_LT(low, high);
}

// ---- Entropy heuristic ----

sage::SageDataSet EntropyData() {
  sage::SageDataSet data;
  for (int id = 1; id <= 8; ++id) {
    sage::SageLibrary lib(id, "L" + std::to_string(id),
                          sage::TissueType::kBrain,
                          sage::NeoplasticState::kNormal,
                          sage::TissueSource::kBulkTissue);
    // Tag 1: constant. Tag 2: two levels. Tag 3: all distinct (highest
    // variation).
    lib.SetCount(1, 5.0);
    lib.SetCount(2, id % 2 == 0 ? 10.0 : 20.0);
    lib.SetCount(3, 10.0 * id);
    data.AddLibrary(lib);
  }
  return data;
}

TEST(EntropyTest, ConstantColumnHasZeroEntropy) {
  EnumTable e = EnumTable::FromDataSet("e", EntropyData());
  size_t col = *e.FindTagColumn(1);
  EXPECT_DOUBLE_EQ(TagEntropy(e, col), 0.0);
}

TEST(EntropyTest, MoreVariationMeansMoreEntropy) {
  EnumTable e = EnumTable::FromDataSet("e", EntropyData());
  double two_level = TagEntropy(e, *e.FindTagColumn(2));
  double all_distinct = TagEntropy(e, *e.FindTagColumn(3));
  EXPECT_GT(two_level, 0.0);
  EXPECT_GT(all_distinct, two_level);
}

TEST(EntropyTest, TopEntropyTagsOrdering) {
  EnumTable e = EnumTable::FromDataSet("e", EntropyData());
  std::vector<sage::TagId> top = TopEntropyTags(e, 2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0], 3u);
  EXPECT_EQ(top[1], 2u);
  // Asking for more than available clamps.
  EXPECT_EQ(TopEntropyTags(e, 99).size(), 3u);
}

}  // namespace
}  // namespace gea::core
