// Tests for the lineage feature of Section 4.4.2.

#include <gtest/gtest.h>

#include "lineage/lineage.h"

namespace gea::lineage {
namespace {

using NodeId = LineageGraph::NodeId;

// Builds the Fig. 4.18 shape: a brain data set, a fascicle, its SUMY
// tables, and a GAP derived from two SUMYs.
struct Fixture {
  LineageGraph graph;
  NodeId dataset;
  NodeId fascicle;
  NodeId sumy_cancer;
  NodeId sumy_not_in_fas;
  NodeId gap;

  Fixture() {
    dataset = *graph.AddNode("brain", NodeKind::kDataSet, "tissue_dataset",
                             {{"tissue", "brain"}}, {});
    fascicle = *graph.AddNode(
        "brain25k_3", NodeKind::kFascicle, "fascicles",
        {{"compact_dimension", "25000"},
         {"binary_file", "brainfile.b"},
         {"metadata_file", "brainfile.meta"},
         {"batch", "6"},
         {"min_frequency", "3"}},
        {dataset});
    sumy_cancer = *graph.AddNode("brain25k_3CancerFasTbl", NodeKind::kSumy,
                                 "aggregate", {}, {fascicle});
    sumy_not_in_fas = *graph.AddNode("brain25k_3CanNotInFasTbl",
                                     NodeKind::kSumy, "aggregate", {},
                                     {fascicle});
    gap = *graph.AddNode("b25canvscnif_gap1", NodeKind::kGap, "diff", {},
                         {sumy_cancer, sumy_not_in_fas});
  }
};

TEST(LineageTest, AddNodeRecordsMetadata) {
  Fixture f;
  Result<const LineageGraph::Node*> node = f.graph.GetNode(f.fascicle);
  ASSERT_TRUE(node.ok());
  EXPECT_EQ((*node)->name, "brain25k_3");
  EXPECT_EQ((*node)->kind, NodeKind::kFascicle);
  EXPECT_EQ((*node)->operation, "fascicles");
  EXPECT_EQ((*node)->parameters.at("compact_dimension"), "25000");
  EXPECT_EQ((*node)->parents, (std::vector<NodeId>{f.dataset}));
}

TEST(LineageTest, FindByName) {
  Fixture f;
  EXPECT_EQ(*f.graph.FindByName("brain25k_3"), f.fascicle);
  EXPECT_TRUE(f.graph.FindByName("nope").status().IsNotFound());
}

TEST(LineageTest, RejectsDuplicatesAndBadParents) {
  Fixture f;
  EXPECT_TRUE(f.graph.AddNode("brain", NodeKind::kDataSet, "x", {}, {})
                  .status()
                  .IsAlreadyExists());
  EXPECT_TRUE(
      f.graph.AddNode("y", NodeKind::kGap, "diff", {}, {999}).status()
          .IsNotFound());
  EXPECT_FALSE(f.graph.AddNode("", NodeKind::kGap, "diff", {}, {}).ok());
}

TEST(LineageTest, GapHasTwoParents) {
  // A GAP table appears under both of its SUMY parents.
  Fixture f;
  EXPECT_EQ((*f.graph.GetNode(f.gap))->parents.size(), 2u);
  EXPECT_EQ((*f.graph.Children(f.sumy_cancer)).size(), 1u);
  EXPECT_EQ((*f.graph.Children(f.sumy_not_in_fas)).size(), 1u);
}

TEST(LineageTest, Comments) {
  Fixture f;
  ASSERT_TRUE(f.graph
                  .SetComment(f.fascicle,
                              "The compact tags in this fascicle are very "
                              "interesting")
                  .ok());
  EXPECT_EQ((*f.graph.GetNode(f.fascicle))->comment,
            "The compact tags in this fascicle are very interesting");
  EXPECT_TRUE(f.graph.SetComment(999, "x").IsNotFound());
}

TEST(LineageTest, DeleteContentsKeepsMetadata) {
  Fixture f;
  std::vector<std::string> dropped;
  ASSERT_TRUE(f.graph
                  .DeleteContents(f.sumy_cancer,
                                  [&](const std::string& name) {
                                    dropped.push_back(name);
                                  })
                  .ok());
  EXPECT_EQ(dropped, (std::vector<std::string>{"brain25k_3CancerFasTbl"}));
  Result<const LineageGraph::Node*> node = f.graph.GetNode(f.sumy_cancer);
  ASSERT_TRUE(node.ok());  // metadata survives
  EXPECT_FALSE((*node)->has_contents);
  // Repeat deletion is a no-op for the callback.
  dropped.clear();
  ASSERT_TRUE(f.graph.DeleteContents(f.sumy_cancer, [&](const std::string& n) {
    dropped.push_back(n);
  }).ok());
  EXPECT_TRUE(dropped.empty());
}

TEST(LineageTest, DeleteCascadeRemovesSubtree) {
  Fixture f;
  std::vector<std::string> dropped;
  ASSERT_TRUE(f.graph
                  .DeleteCascade(f.fascicle,
                                 [&](const std::string& name) {
                                   dropped.push_back(name);
                                 })
                  .ok());
  // The fascicle, both SUMYs and the GAP are gone; the data set remains.
  EXPECT_EQ(dropped.size(), 4u);
  EXPECT_TRUE(f.graph.GetNode(f.fascicle).status().IsNotFound());
  EXPECT_TRUE(f.graph.GetNode(f.gap).status().IsNotFound());
  EXPECT_TRUE(f.graph.GetNode(f.dataset).ok());
  EXPECT_TRUE((*f.graph.Children(f.dataset)).empty());
  EXPECT_EQ(f.graph.NumNodes(), 1u);
}

TEST(LineageTest, CascadeVisitsDiamondOnce) {
  // gap has two parents; deleting one SUMY must remove the gap exactly
  // once and leave the sibling SUMY without the dangling child.
  Fixture f;
  std::vector<std::string> dropped;
  ASSERT_TRUE(f.graph.DeleteCascade(f.sumy_cancer,
                                    [&](const std::string& name) {
                                      dropped.push_back(name);
                                    })
                  .ok());
  EXPECT_EQ(dropped.size(), 2u);
  EXPECT_TRUE((*f.graph.Children(f.sumy_not_in_fas)).empty());
}

TEST(LineageTest, RenderTreeShowsHierarchy) {
  Fixture f;
  Result<std::string> tree = f.graph.RenderTree(f.dataset);
  ASSERT_TRUE(tree.ok());
  EXPECT_NE(tree->find("brain [dataset"), std::string::npos);
  EXPECT_NE(tree->find("  brain25k_3 [fascicle"), std::string::npos);
  EXPECT_NE(tree->find("b25canvscnif_gap1 [gap"), std::string::npos);
}

TEST(LineageTest, RootsListsParentlessNodes) {
  Fixture f;
  EXPECT_EQ(f.graph.Roots(), (std::vector<NodeId>{f.dataset}));
}

TEST(LineageTest, NodeKindNames) {
  EXPECT_STREQ(NodeKindName(NodeKind::kTopGap), "top_gap");
  EXPECT_STREQ(NodeKindName(NodeKind::kCompareGap), "compare_gap");
}

}  // namespace
}  // namespace gea::lineage
