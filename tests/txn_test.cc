// Tests for the transaction subsystem (src/txn): epoch pin/publish/
// reclaim semantics under concurrency, group-commit leader-follower
// handoff, LSN-ordered durable callbacks, and the batch crash contract
// (a batch that dies between write and fsync acknowledges nothing)
// driven through FaultInjectionEnv.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "store/engine.h"
#include "store/fault_env.h"
#include "store/file_env.h"
#include "store/wal.h"
#include "txn/epoch.h"
#include "txn/group_commit.h"
#include "txn/snapshot.h"
#include "workbench/session.h"

namespace gea::txn {
namespace {

std::string FreshDir(const std::string& tag) {
  std::string dir = testing::TempDir() + "/gea_txn_" + tag;
  std::filesystem::remove_all(dir);
  return dir;
}

std::shared_ptr<const std::vector<double>> Meta(double value) {
  return std::make_shared<const std::vector<double>>(
      std::vector<double>{value});
}

// ---------- epochs ----------

// The stat view registers from the EpochManager constructor (every
// session owns one), so plain SQL over any session reads the MVCC and
// group-commit telemetry.
TEST(EpochTest, TransactionStatViewIsQueryableViaSql) {
  workbench::AnalysisSession session("admin", "secret");
  ASSERT_TRUE(session
                  .Login("admin", "secret",
                         workbench::AccessLevel::kAdministrator)
                  .ok());
  auto out = session.Query(
      "SELECT name, value FROM gea_stat_transactions ORDER BY name");
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_GT(out->NumRows(), 0u);
  bool saw_live_managers = false;
  for (size_t i = 0; i < out->NumRows(); ++i) {
    if (out->Get(i, "name")->AsString() == "epoch.live_managers") {
      saw_live_managers = true;
      EXPECT_GE(out->Get(i, "value")->AsInt(), 1);
    }
  }
  EXPECT_TRUE(saw_live_managers);
}

TEST(EpochTest, PinHoldsItsVersionAcrossPublishes) {
  EpochManager mgr;
  EXPECT_EQ(mgr.CurrentEpoch(), 0u);

  CatalogSnapshot first;
  first.metadata.emplace("m", Meta(1.0));
  EXPECT_EQ(mgr.Publish(std::move(first)), 1u);

  SnapshotPin pin = mgr.Pin();
  EXPECT_TRUE(pin.valid());
  EXPECT_EQ(pin.epoch(), 1u);

  CatalogSnapshot second;
  second.metadata.emplace("m", Meta(2.0));
  EXPECT_EQ(mgr.Publish(std::move(second)), 2u);
  EXPECT_EQ(mgr.CurrentEpoch(), 2u);

  // The old pin still reads its own immutable version.
  EXPECT_EQ(pin.epoch(), 1u);
  EXPECT_DOUBLE_EQ((*pin->metadata.at("m"))[0], 1.0);
  EXPECT_DOUBLE_EQ((*mgr.Pin()->metadata.at("m"))[0], 2.0);
}

TEST(EpochTest, PinnedReadersGaugeCountsCopiesAndDrops) {
  EpochManager mgr;
  EXPECT_EQ(mgr.PinnedReaders(), 0);
  {
    SnapshotPin a = mgr.Pin();
    SnapshotPin b = a;  // copying a pin pins again
    SnapshotPin c = mgr.Pin();
    EXPECT_EQ(mgr.PinnedReaders(), 3);
    SnapshotPin moved = std::move(b);  // moving does not
    EXPECT_EQ(mgr.PinnedReaders(), 3);
  }
  EXPECT_EQ(mgr.PinnedReaders(), 0);
}

TEST(EpochTest, RetiredBytesAccountsReplacedTables) {
  EpochManager mgr;
  CatalogSnapshot v1;
  v1.metadata.emplace("m", Meta(1.0));
  mgr.Publish(std::move(v1));
  EXPECT_EQ(mgr.RetiredBytesTotal(), 0u);

  // Same pointer carried over: nothing retired.
  CatalogSnapshot v2 = *mgr.Pin().snapshot();
  v2.metadata.emplace("extra", Meta(9.0));
  mgr.Publish(std::move(v2));
  EXPECT_EQ(mgr.RetiredBytesTotal(), 0u);

  // Replacing "m" retires the superseded vector (8 bytes/double).
  CatalogSnapshot v3 = *mgr.Pin().snapshot();
  v3.metadata["m"] = Meta(2.0);
  mgr.Publish(std::move(v3));
  EXPECT_EQ(mgr.RetiredBytesTotal(), 8u);
  EXPECT_EQ(mgr.EpochsPublished(), 3u);
}

TEST(EpochTest, ConcurrentPinAndPublishRace) {
  EpochManager mgr;
  constexpr int kEpochs = 500;
  std::atomic<bool> stop{false};
  std::atomic<bool> consistent{true};

  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      uint64_t last = 0;
      while (!stop.load(std::memory_order_acquire)) {
        SnapshotPin pin = mgr.Pin();
        const uint64_t epoch = pin.epoch();
        if (epoch < last) {  // epochs must be monotone per reader
          consistent.store(false);
          return;
        }
        last = epoch;
        if (epoch > 0) {
          // Each published version carries its own epoch as the value:
          // a torn read would show a mismatch.
          auto it = pin->metadata.find("v");
          if (it == pin->metadata.end() ||
              (*it->second)[0] != static_cast<double>(epoch)) {
            consistent.store(false);
            return;
          }
        }
      }
    });
  }

  for (int i = 1; i <= kEpochs; ++i) {
    CatalogSnapshot snap;
    snap.metadata.emplace("v", Meta(static_cast<double>(i)));
    mgr.Publish(std::move(snap));
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& r : readers) r.join();

  EXPECT_TRUE(consistent.load());
  EXPECT_EQ(mgr.CurrentEpoch(), static_cast<uint64_t>(kEpochs));
  EXPECT_EQ(mgr.PinnedReaders(), 0);
}

// ---------- group commit ----------

store::WalRecord Op(const std::string& name) {
  return store::WalRecord::LogicalOp(name, {});
}

TEST(GroupCommitTest, SingleWriterCommitsDurably) {
  const std::string dir = FreshDir("single");
  auto opened =
      store::StorageEngine::Open(store::FileEnv::Default(), dir, {});
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  std::unique_ptr<store::StorageEngine> engine = std::move(opened->engine);

  GroupCommitter committer(engine.get());
  std::vector<uint64_t> acked;
  committer.set_durable_callback(
      [&](uint64_t lsn, const store::WalRecord&) { acked.push_back(lsn); });

  std::shared_ptr<CommitTicket> ticket = committer.Submit(Op("alpha"));
  EXPECT_EQ(ticket->lsn(), 1u);
  ASSERT_TRUE(ticket->Wait().ok());
  EXPECT_TRUE(ticket->Wait().ok());  // idempotent
  EXPECT_EQ(engine->last_lsn(), 1u);
  EXPECT_EQ(acked, std::vector<uint64_t>({1}));
  EXPECT_EQ(committer.QueueDepth(), 0u);
  ASSERT_TRUE(engine->Close().ok());

  auto reopened =
      store::StorageEngine::Open(store::FileEnv::Default(), dir, {});
  ASSERT_TRUE(reopened.ok());
  ASSERT_EQ(reopened->records.size(), 1u);
  EXPECT_EQ(reopened->records[0].op, "alpha");
}

TEST(GroupCommitTest, ConcurrentWritersCoalesceAndAckInLsnOrder) {
  const std::string dir = FreshDir("coalesce");
  auto opened =
      store::StorageEngine::Open(store::FileEnv::Default(), dir, {});
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  std::unique_ptr<store::StorageEngine> engine = std::move(opened->engine);

  GroupCommitter committer(engine.get());
  std::mutex acked_mu;
  std::vector<uint64_t> acked;
  committer.set_durable_callback([&](uint64_t lsn, const store::WalRecord&) {
    std::lock_guard<std::mutex> lock(acked_mu);
    acked.push_back(lsn);
  });

  constexpr int kThreads = 8;
  constexpr int kPerThread = 25;
  std::atomic<int> failures{0};
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        std::shared_ptr<CommitTicket> ticket = committer.Submit(
            Op("w" + std::to_string(t) + "_" + std::to_string(i)));
        if (!ticket->Wait().ok()) failures.fetch_add(1);
      }
    });
  }
  for (std::thread& w : writers) w.join();

  constexpr uint64_t kTotal = kThreads * kPerThread;
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(engine->last_lsn(), kTotal);
  // The durable callback saw every record exactly once, in LSN order —
  // batching must not reorder or drop replication shipping.
  ASSERT_EQ(acked.size(), kTotal);
  for (uint64_t i = 0; i < kTotal; ++i) {
    EXPECT_EQ(acked[i], i + 1);
  }
  ASSERT_TRUE(engine->Close().ok());

  auto reopened =
      store::StorageEngine::Open(store::FileEnv::Default(), dir, {});
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(reopened->records.size(), kTotal);
}

TEST(GroupCommitTest, KillBetweenBatchWriteAndFsyncAcksNothing) {
  const std::string dir = FreshDir("kill");
  store::FaultInjectionEnv env(store::FileEnv::Default());
  auto opened = store::StorageEngine::Open(&env, dir, {});
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  std::unique_ptr<store::StorageEngine> engine = std::move(opened->engine);

  GroupCommitter committer(engine.get());
  std::vector<uint64_t> acked;
  committer.set_durable_callback(
      [&](uint64_t lsn, const store::WalRecord&) { acked.push_back(lsn); });

  // Batch 1 commits cleanly.
  std::shared_ptr<CommitTicket> alpha = committer.Submit(Op("alpha"));
  ASSERT_TRUE(alpha->Wait().ok());
  ASSERT_EQ(acked, std::vector<uint64_t>({1}));

  // Batch 2 = two appends + one shared fsync. Kill the fsync: the batch
  // is written into the page cache but never reaches the platter.
  // ArmFault zeroes the point counter, so the appends are points 0 and 1
  // and the shared fsync is point 2.
  env.ArmFault(2, store::FaultInjectionEnv::FaultKind::kKill);
  std::shared_ptr<CommitTicket> beta = committer.Submit(Op("beta"));
  std::shared_ptr<CommitTicket> gamma = committer.Submit(Op("gamma"));
  EXPECT_FALSE(committer.Drain().ok());

  // Nothing in the torn batch is acknowledged: both waiters get the
  // error, no frame was shipped, the engine's LSN never advanced.
  EXPECT_FALSE(beta->Wait().ok());
  EXPECT_FALSE(gamma->Wait().ok());
  EXPECT_EQ(acked, std::vector<uint64_t>({1}));
  EXPECT_EQ(engine->last_lsn(), 1u);

  // The WAL tail is indeterminate, so the committer is sticky-failed.
  std::shared_ptr<CommitTicket> delta = committer.Submit(Op("delta"));
  EXPECT_FALSE(delta->Wait().ok());

  (void)engine->Close();  // dead env; recovery decides what survived

  // Recovery replays exactly the acked prefix.
  auto reopened =
      store::StorageEngine::Open(store::FileEnv::Default(), dir, {});
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  ASSERT_EQ(reopened->records.size(), 1u);
  EXPECT_EQ(reopened->records[0].op, "alpha");
  EXPECT_EQ(reopened->engine->last_lsn(), 1u);
}

TEST(GroupCommitTest, FailedSyncAcksNothingToo) {
  const std::string dir = FreshDir("failsync");
  store::FaultInjectionEnv env(store::FileEnv::Default());
  auto opened = store::StorageEngine::Open(&env, dir, {});
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  std::unique_ptr<store::StorageEngine> engine = std::move(opened->engine);

  GroupCommitter committer(engine.get());
  std::vector<uint64_t> acked;
  committer.set_durable_callback(
      [&](uint64_t lsn, const store::WalRecord&) { acked.push_back(lsn); });

  // ArmFault zeroes the point counter: the batch's single append is
  // point 0, its fsync is point 1.
  env.ArmFault(1, store::FaultInjectionEnv::FaultKind::kFailSync);
  std::shared_ptr<CommitTicket> ticket = committer.Submit(Op("alpha"));
  EXPECT_FALSE(ticket->Wait().ok());
  EXPECT_TRUE(acked.empty());
  EXPECT_EQ(engine->last_lsn(), 0u);
  (void)engine->Close();

  auto reopened =
      store::StorageEngine::Open(store::FileEnv::Default(), dir, {});
  ASSERT_TRUE(reopened.ok());
  EXPECT_TRUE(reopened->records.empty());
}

}  // namespace
}  // namespace gea::txn
