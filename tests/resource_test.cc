// Tests for per-query memory accounting (obs/resource.h): the account's
// alloc/free/peak arithmetic, the thread-local binding scope, the
// ParallelFor propagation, and the producer hooks in rel::Column and the
// core SUMY/GAP builders. "parallel" label: the fan-out test re-runs
// under TSan.

#include "obs/resource.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/thread_pool.h"
#include "core/gap.h"
#include "core/sumy.h"
#include "rel/column.h"

namespace gea::obs {
namespace {

TEST(MemoryAccountTest, TracksAllocatedLiveAndPeak) {
  MemoryAccount account;
  EXPECT_EQ(account.AllocatedBytes(), 0u);
  EXPECT_EQ(account.PeakBytes(), 0u);

  account.OnAlloc(100);
  account.OnAlloc(50);
  EXPECT_EQ(account.AllocatedBytes(), 150u);
  EXPECT_EQ(account.LiveBytes(), 150u);
  EXPECT_EQ(account.PeakBytes(), 150u);

  account.OnFree(120);
  EXPECT_EQ(account.AllocatedBytes(), 150u);  // cumulative, never shrinks
  EXPECT_EQ(account.LiveBytes(), 30u);
  EXPECT_EQ(account.PeakBytes(), 150u);  // high-water mark sticks

  account.OnAlloc(40);
  EXPECT_EQ(account.LiveBytes(), 70u);
  EXPECT_EQ(account.PeakBytes(), 150u);  // still below the old peak

  account.Reset();
  EXPECT_EQ(account.AllocatedBytes(), 0u);
  EXPECT_EQ(account.PeakBytes(), 0u);
}

TEST(MemoryAccountTest, ScopeBindsAndNestsAndSuspends) {
  EXPECT_EQ(CurrentMemoryAccount(), nullptr);
  EXPECT_FALSE(MemoryAccountingActive());
  AccountAllocation(1000);  // unbound: a no-op, not a crash

  MemoryAccount outer;
  {
    MemoryAccountScope bind_outer(&outer);
    EXPECT_EQ(CurrentMemoryAccount(), &outer);
    EXPECT_TRUE(MemoryAccountingActive());
    AccountAllocation(10);

    MemoryAccount inner;
    {
      MemoryAccountScope bind_inner(&inner);
      EXPECT_EQ(CurrentMemoryAccount(), &inner);
      AccountAllocation(5);
    }
    EXPECT_EQ(CurrentMemoryAccount(), &outer);  // restored

    {
      MemoryAccountScope suspend(nullptr);
      EXPECT_FALSE(MemoryAccountingActive());
      AccountAllocation(999);  // charged to nobody
    }
    AccountAllocation(7);
    EXPECT_EQ(inner.AllocatedBytes(), 5u);
  }
  EXPECT_EQ(CurrentMemoryAccount(), nullptr);
  EXPECT_EQ(outer.AllocatedBytes(), 17u);
}

TEST(MemoryAccountTest, ColumnAppendsChargePayloadBytesSymmetrically) {
  MemoryAccount account;
  MemoryAccountScope bind(&account);

  rel::Column ints(rel::ValueType::kInt);
  rel::Column strings(rel::ValueType::kString);
  for (int i = 0; i < 100; ++i) ints.AppendInt(i);
  ints.AppendNull();
  strings.AppendString("alpha");
  strings.AppendString("beta");
  strings.AppendString("alpha");  // interned: the dict grows once

  // The account charged exactly the logical payload both columns report.
  EXPECT_EQ(account.LiveBytes(), ints.PayloadBytes() + strings.PayloadBytes());
  EXPECT_EQ(account.PeakBytes(), account.LiveBytes());

  // Clear releases what was charged: live returns to zero, peak sticks.
  const uint64_t peak = account.PeakBytes();
  ints.Clear();
  strings.Clear();
  EXPECT_EQ(account.LiveBytes(), 0u);
  EXPECT_EQ(account.PeakBytes(), peak);
}

TEST(MemoryAccountTest, SumyAndGapBuildersCharge) {
  MemoryAccount account;
  MemoryAccountScope bind(&account);

  std::vector<core::SumyEntry> entries;
  for (uint32_t i = 0; i < 8; ++i) {
    core::SumyEntry e;
    e.tag = static_cast<sage::TagId>(i + 1);
    e.min = 0.0;
    e.max = 1.0;
    e.mean = 0.5;
    e.stddev = 0.1;
    entries.push_back(e);
  }
  Result<core::SumyTable> sumy = core::SumyTable::Create("S", entries);
  ASSERT_TRUE(sumy.ok());
  const uint64_t after_sumy = account.AllocatedBytes();
  EXPECT_EQ(after_sumy, entries.size() * sizeof(core::SumyEntry));

  Result<core::GapTable> gap = core::Diff(*sumy, *sumy, "G", "Gap");
  ASSERT_TRUE(gap.ok());
  // The GAP build charged its columnar arrays on top of the SUMY bytes.
  EXPECT_GT(account.AllocatedBytes(), after_sumy);
}

TEST(MemoryAccountTest, ParallelForPropagatesTheBinding) {
  // Force chunks onto pool workers so propagation (not same-thread
  // execution) is what's under test, even on a one-core host.
  ForceParallelHelpersScope force_parallel;
  MemoryAccount account;
  MemoryAccountScope bind(&account);

  constexpr size_t kItems = 10'000;
  std::atomic<uint64_t> observed_bound{0};
  ParallelFor(0, kItems, 64, [&](size_t begin, size_t end) {
    if (MemoryAccountingActive()) {
      observed_bound.fetch_add(1, std::memory_order_relaxed);
    }
    AccountAllocation(end - begin);
  });

  // Every chunk saw the binding and every byte landed in the account.
  EXPECT_GT(observed_bound.load(), 0u);
  EXPECT_EQ(account.AllocatedBytes(), kItems);
  // The binding did not leak onto pool workers past the scope.
  std::atomic<int> leaked{0};
  ParallelFor(0, 4, 1, [&](size_t, size_t) {
    if (CurrentMemoryAccount() != nullptr &&
        CurrentMemoryAccount() != &account) {
      leaked.fetch_add(1);
    }
  });
  EXPECT_EQ(leaked.load(), 0);
}

}  // namespace
}  // namespace gea::obs
