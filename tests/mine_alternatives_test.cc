// Tests for the alternative mine() back ends (Section 2.6: the model
// supports clusters produced by algorithms other than fascicles) and the
// library range search of Section 4.4.4.2.

#include <gtest/gtest.h>

#include <set>

#include "core/gap.h"
#include "core/mine_alternatives.h"
#include "core/operators.h"
#include "core/populate.h"
#include "sage/cleaning.h"
#include "sage/generator.h"
#include "workbench/session.h"

namespace gea::core {
namespace {

class MineAlternativesTest : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    sage::GeneratorConfig config;
    config.seed = 42;
    config.panels = sage::SyntheticSageGenerator::SmallPanels();
    synth_ = new sage::SyntheticSage(
        sage::SyntheticSageGenerator(config).Generate());
    sage::CleanAndNormalize(synth_->dataset);
    brain_ = new EnumTable(EnumTable::FromDataSet(
        "brain", synth_->dataset.FilterByTissue(sage::TissueType::kBrain)));
  }
  static void TearDownTestSuite() {
    delete brain_;
    delete synth_;
    brain_ = nullptr;
    synth_ = nullptr;
  }
  static sage::SyntheticSage* synth_;
  static EnumTable* brain_;
};

sage::SyntheticSage* MineAlternativesTest::synth_ = nullptr;
EnumTable* MineAlternativesTest::brain_ = nullptr;

TEST_F(MineAlternativesTest, KMeansClustersPartitionTheLibraries) {
  Result<std::vector<MinedCluster>> mined =
      MineKMeans(*brain_, 2, /*seed=*/3, "km");
  ASSERT_TRUE(mined.ok()) << mined.status().ToString();
  ASSERT_GE(mined->size(), 1u);
  ASSERT_LE(mined->size(), 2u);
  std::set<size_t> seen;
  size_t total = 0;
  for (const MinedCluster& c : *mined) {
    EXPECT_EQ(c.members.size(), c.enum_table.NumLibraries());
    total += c.members.size();
    for (size_t row : c.members) {
      EXPECT_TRUE(seen.insert(row).second) << "library in two clusters";
    }
  }
  EXPECT_EQ(total, brain_->NumLibraries());
}

TEST_F(MineAlternativesTest, HierarchicalSeparatesCancerFromNormal) {
  // With k = 2 under correlation distance the dominant structure in the
  // brain slice is cancer vs normal; each cluster is pure by state
  // (k-means under Euclidean distance is notably weaker on expression
  // magnitudes — the same comparison bench_clustering quantifies).
  Result<std::vector<MinedCluster>> mined = MineHierarchical(
      *brain_, 2, cluster::DistanceKind::kPearson, "hc2");
  ASSERT_TRUE(mined.ok());
  ASSERT_EQ(mined->size(), 2u);
  for (const MinedCluster& c : *mined) {
    size_t cancer = 0;
    for (const sage::LibraryMeta& lib : c.enum_table.libraries()) {
      if (lib.state == sage::NeoplasticState::kCancer) ++cancer;
    }
    double purity =
        std::max(cancer, c.enum_table.NumLibraries() - cancer) /
        static_cast<double>(c.enum_table.NumLibraries());
    EXPECT_DOUBLE_EQ(purity, 1.0) << c.sumy.name();
  }
}

TEST_F(MineAlternativesTest, HierarchicalClustersCover) {
  Result<std::vector<MinedCluster>> mined = MineHierarchical(
      *brain_, 3, cluster::DistanceKind::kPearson, "hc");
  ASSERT_TRUE(mined.ok()) << mined.status().ToString();
  EXPECT_EQ(mined->size(), 3u);
  size_t total = 0;
  for (const MinedCluster& c : *mined) total += c.members.size();
  EXPECT_EQ(total, brain_->NumLibraries());
}

TEST_F(MineAlternativesTest, ClusterSumyMatchesAggregate) {
  Result<std::vector<MinedCluster>> mined =
      MineKMeans(*brain_, 2, /*seed=*/3, "km");
  ASSERT_TRUE(mined.ok());
  const MinedCluster& c = mined->front();
  Result<SumyTable> direct = Aggregate(c.enum_table, "direct");
  ASSERT_TRUE(direct.ok());
  ASSERT_EQ(direct->NumTags(), c.sumy.NumTags());
  for (size_t i = 0; i < c.sumy.NumTags(); i += 37) {
    EXPECT_DOUBLE_EQ(direct->entry(i).mean, c.sumy.entry(i).mean);
  }
}

TEST_F(MineAlternativesTest, ClustersComposeWithTheAlgebra) {
  // The whole point of Section 2.6: a k-means cluster's SUMY feeds the
  // same downstream operators — diff() and populate().
  Result<std::vector<MinedCluster>> mined =
      MineKMeans(*brain_, 2, /*seed=*/3, "km");
  ASSERT_TRUE(mined.ok());
  ASSERT_EQ(mined->size(), 2u);
  Result<GapTable> gap =
      Diff((*mined)[0].sumy, (*mined)[1].sumy, "km_gap");
  ASSERT_TRUE(gap.ok());
  EXPECT_EQ(gap->NumTags(), brain_->NumTags());

  PopulateEngine engine(*brain_);
  Result<EnumTable> populated =
      engine.Populate((*mined)[0].sumy, "km_populated");
  ASSERT_TRUE(populated.ok());
  // Every member satisfies its own cluster's ranges.
  for (const sage::LibraryMeta& lib : (*mined)[0].enum_table.libraries()) {
    EXPECT_TRUE(populated->FindLibraryRow(lib.id).has_value()) << lib.name;
  }
}

TEST_F(MineAlternativesTest, InvalidParamsPropagate) {
  EXPECT_FALSE(MineKMeans(*brain_, 0, 1, "km").ok());
  EXPECT_FALSE(MineKMeans(*brain_, 100, 1, "km").ok());
  EXPECT_FALSE(MineHierarchical(*brain_, 0,
                                cluster::DistanceKind::kPearson, "hc")
                   .ok());
}

// ---- the Section 4.4.4.2 library range search ----

TEST(LibraryRangeSearchTest, FindsLibrariesInRange) {
  using workbench::AccessLevel;
  using workbench::AnalysisSession;

  sage::SageDataSet data;
  sage::SageLibrary a(1, "A", sage::TissueType::kBrain,
                      sage::NeoplasticState::kNormal,
                      sage::TissueSource::kBulkTissue);
  a.SetCount(10, 5.0);
  sage::SageLibrary b(2, "B", sage::TissueType::kBrain,
                      sage::NeoplasticState::kNormal,
                      sage::TissueSource::kBulkTissue);
  b.SetCount(10, 50.0);
  sage::SageLibrary c(3, "C", sage::TissueType::kBrain,
                      sage::NeoplasticState::kNormal,
                      sage::TissueSource::kBulkTissue);
  // c does not express tag 10 at all -> level 0.
  c.SetCount(20, 9.0);
  data.AddLibrary(a);
  data.AddLibrary(b);
  data.AddLibrary(c);

  AnalysisSession session("admin", "secret");
  ASSERT_TRUE(
      session.Login("admin", "secret", AccessLevel::kAdministrator).ok());
  ASSERT_TRUE(session.LoadDataSet(data).ok());

  Result<std::vector<std::string>> hits =
      session.SearchLibrariesByTagRange(10, 1.0, 10.0);
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(*hits, (std::vector<std::string>{"A"}));

  // Swapped bounds are normalized; zero levels participate.
  hits = session.SearchLibrariesByTagRange(10, 60.0, 0.0);
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(hits->size(), 3u);

  hits = session.SearchLibrariesByTagRange(999, 1.0, 2.0);
  ASSERT_TRUE(hits.ok());
  EXPECT_TRUE(hits->empty());
}

}  // namespace
}  // namespace gea::core
