// Tests for the synthetic SAGE generator: determinism and the statistics
// the thesis states about the real data (Sections 2.2.3 and 4.2).

#include <gtest/gtest.h>

#include <set>

#include "sage/generator.h"

namespace gea::sage {
namespace {

GeneratorConfig SmallConfig(uint64_t seed = 42) {
  GeneratorConfig config;
  config.seed = seed;
  config.panels = SyntheticSageGenerator::SmallPanels();
  return config;
}

TEST(GeneratorTest, DeterministicForSameSeed) {
  SyntheticSage a = SyntheticSageGenerator(SmallConfig()).Generate();
  SyntheticSage b = SyntheticSageGenerator(SmallConfig()).Generate();
  ASSERT_EQ(a.dataset.NumLibraries(), b.dataset.NumLibraries());
  for (size_t i = 0; i < a.dataset.NumLibraries(); ++i) {
    const SageLibrary& la = a.dataset.library(i);
    const SageLibrary& lb = b.dataset.library(i);
    EXPECT_EQ(la.name(), lb.name());
    ASSERT_EQ(la.entries().size(), lb.entries().size());
    EXPECT_DOUBLE_EQ(la.TotalTagCount(), lb.TotalTagCount());
  }
}

TEST(GeneratorTest, DifferentSeedsDiffer) {
  SyntheticSage a = SyntheticSageGenerator(SmallConfig(1)).Generate();
  SyntheticSage b = SyntheticSageGenerator(SmallConfig(2)).Generate();
  // The planted pools are drawn randomly; they should differ.
  EXPECT_NE(a.truth.housekeeping, b.truth.housekeeping);
}

TEST(GeneratorTest, PanelCountsRespected) {
  SyntheticSage out = SyntheticSageGenerator(SmallConfig()).Generate();
  // SmallPanels: brain + breast, 12 libraries each.
  EXPECT_EQ(out.dataset.NumLibraries(), 24u);
  EXPECT_EQ(out.dataset.FilterByTissue(TissueType::kBrain).NumLibraries(),
            12u);
  SageDataSet brain = out.dataset.FilterByTissue(TissueType::kBrain);
  EXPECT_EQ(brain.FilterByState(NeoplasticState::kCancer).NumLibraries(),
            8u);
  EXPECT_EQ(brain.FilterByState(NeoplasticState::kNormal).NumLibraries(),
            4u);
}

TEST(GeneratorTest, DefaultPanelIsAllNineTissues) {
  EXPECT_EQ(SyntheticSageGenerator::DefaultPanels().size(), 9u);
}

TEST(GeneratorTest, DepthWithinConfiguredRange) {
  GeneratorConfig config = SmallConfig();
  SyntheticSage out = SyntheticSageGenerator(config).Generate();
  for (const SageLibrary& lib : out.dataset.libraries()) {
    // Poisson sampling scatters around the target; allow 15% slack.
    EXPECT_GT(lib.TotalTagCount(), config.min_depth * 0.85) << lib.name();
    EXPECT_LT(lib.TotalTagCount(), config.max_depth * 1.15) << lib.name();
  }
}

TEST(GeneratorTest, ErrorTagsAreFrequencyOneSingletons) {
  GeneratorConfig config = SmallConfig();
  SyntheticSage out = SyntheticSageGenerator(config).Generate();
  std::set<TagId> structured(out.truth.housekeeping.begin(),
                             out.truth.housekeeping.end());
  for (const auto& [tissue, tags] : out.truth.baseline) {
    structured.insert(tags.begin(), tags.end());
  }
  for (const auto& [tissue, tags] : out.truth.signature) {
    structured.insert(tags.begin(), tags.end());
  }
  for (const auto& [tissue, tags] : out.truth.cancer_up) {
    structured.insert(tags.begin(), tags.end());
  }
  for (const auto& [tissue, tags] : out.truth.cancer_down) {
    structured.insert(tags.begin(), tags.end());
  }
  structured.insert(out.truth.shared_cancer_up.begin(),
                    out.truth.shared_cancer_up.end());
  structured.insert(out.truth.shared_cancer_down.begin(),
                    out.truth.shared_cancer_down.end());

  for (const SageLibrary& lib : out.dataset.libraries()) {
    double error_count = 0.0;
    for (const SageLibrary::Entry& e : lib.entries()) {
      if (structured.count(e.tag) > 0) continue;
      // Non-structured tags are sequencing errors with frequency 1
      // (up to rare random collisions within one library).
      EXPECT_LE(e.count, 2.0) << TagLabel(e.tag) << " in " << lib.name();
      error_count += e.count;
    }
    // Roughly 10% of the total count is error tags (Section 4.2).
    double fraction = error_count / lib.TotalTagCount();
    EXPECT_GT(fraction, 0.05) << lib.name();
    EXPECT_LT(fraction, 0.16) << lib.name();
  }
}

TEST(GeneratorTest, MostUniqueTagsHaveFrequencyOne) {
  SyntheticSage out = SyntheticSageGenerator(SmallConfig()).Generate();
  for (const SageLibrary& lib : out.dataset.libraries()) {
    size_t freq1 = 0;
    for (const SageLibrary::Entry& e : lib.entries()) {
      if (e.count == 1.0) ++freq1;
    }
    double fraction =
        static_cast<double>(freq1) / static_cast<double>(lib.UniqueTagCount());
    // The thesis estimates >80%; the synthetic data is dominated by the
    // error singletons, so well over half of unique tags are frequency 1.
    EXPECT_GT(fraction, 0.5) << lib.name();
  }
}

TEST(GeneratorTest, CancerUpTagsAreHigherInCancer) {
  SyntheticSage out = SyntheticSageGenerator(SmallConfig()).Generate();
  SageDataSet brain = out.dataset.FilterByTissue(TissueType::kBrain);
  SageDataSet cancer = brain.FilterByState(NeoplasticState::kCancer);
  SageDataSet normal = brain.FilterByState(NeoplasticState::kNormal);
  auto mean_count = [](const SageDataSet& data, TagId tag) {
    double sum = 0.0;
    for (const SageLibrary& lib : data.libraries()) sum += lib.Count(tag);
    return sum / static_cast<double>(data.NumLibraries());
  };
  size_t higher = 0;
  const auto& up_tags = out.truth.cancer_up.at(TissueType::kBrain);
  for (TagId tag : up_tags) {
    if (mean_count(cancer, tag) > mean_count(normal, tag)) ++higher;
  }
  // Virtually all planted up-tags must actually be up in cancer (a few
  // may cross due to the lognormal abundance draws).
  EXPECT_GE(higher, up_tags.size() * 17 / 20);
}

TEST(GeneratorTest, CancerDownTagsAreLowerInCancer) {
  SyntheticSage out = SyntheticSageGenerator(SmallConfig()).Generate();
  SageDataSet brain = out.dataset.FilterByTissue(TissueType::kBrain);
  SageDataSet cancer = brain.FilterByState(NeoplasticState::kCancer);
  SageDataSet normal = brain.FilterByState(NeoplasticState::kNormal);
  auto mean_count = [](const SageDataSet& data, TagId tag) {
    double sum = 0.0;
    for (const SageLibrary& lib : data.libraries()) sum += lib.Count(tag);
    return sum / static_cast<double>(data.NumLibraries());
  };
  size_t lower = 0;
  const auto& down_tags = out.truth.cancer_down.at(TissueType::kBrain);
  for (TagId tag : down_tags) {
    if (mean_count(cancer, tag) < mean_count(normal, tag)) ++lower;
  }
  EXPECT_GT(lower, down_tags.size() * 9 / 10);
}

TEST(GeneratorTest, SharedCancerTagsRegulatedInEveryTissue) {
  SyntheticSage out = SyntheticSageGenerator(SmallConfig()).Generate();
  for (TissueType tissue : {TissueType::kBrain, TissueType::kBreast}) {
    SageDataSet slice = out.dataset.FilterByTissue(tissue);
    SageDataSet cancer = slice.FilterByState(NeoplasticState::kCancer);
    SageDataSet normal = slice.FilterByState(NeoplasticState::kNormal);
    auto mean_count = [](const SageDataSet& data, TagId tag) {
      double sum = 0.0;
      for (const SageLibrary& lib : data.libraries()) sum += lib.Count(tag);
      return sum / static_cast<double>(data.NumLibraries());
    };
    size_t down_ok = 0;
    for (TagId tag : out.truth.shared_cancer_down) {
      if (mean_count(cancer, tag) < mean_count(normal, tag)) ++down_ok;
    }
    EXPECT_GT(down_ok, out.truth.shared_cancer_down.size() * 9 / 10)
        << TissueTypeName(tissue);
  }
}

TEST(GeneratorTest, CoreCancerLibrariesRecorded) {
  GeneratorConfig config = SmallConfig();
  SyntheticSage out = SyntheticSageGenerator(config).Generate();
  const auto& core = out.truth.core_cancer_library_ids.at(TissueType::kBrain);
  // 8 cancer libraries, core fraction 0.7 -> 6 core members.
  EXPECT_EQ(core.size(), 6u);
  for (int id : core) {
    Result<const SageLibrary*> lib = out.dataset.FindById(id);
    ASSERT_TRUE(lib.ok());
    EXPECT_EQ((*lib)->state(), NeoplasticState::kCancer);
    EXPECT_EQ((*lib)->tissue(), TissueType::kBrain);
  }
}

TEST(GeneratorTest, StructuredPoolsAreDisjoint) {
  SyntheticSage out = SyntheticSageGenerator(SmallConfig()).Generate();
  std::vector<TagId> all;
  auto push = [&all](const std::vector<TagId>& tags) {
    all.insert(all.end(), tags.begin(), tags.end());
  };
  push(out.truth.housekeeping);
  push(out.truth.shared_cancer_up);
  push(out.truth.shared_cancer_down);
  for (const auto& [t, tags] : out.truth.baseline) push(tags);
  for (const auto& [t, tags] : out.truth.signature) push(tags);
  for (const auto& [t, tags] : out.truth.cancer_up) push(tags);
  for (const auto& [t, tags] : out.truth.cancer_down) push(tags);
  std::set<TagId> unique(all.begin(), all.end());
  EXPECT_EQ(unique.size(), all.size());
}

}  // namespace
}  // namespace gea::sage
