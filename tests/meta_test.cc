// Tests for the synthetic annotation databases and the Section 5.2
// integrated-genomic-analysis join pipelines.

#include <gtest/gtest.h>

#include <set>

#include "core/gap.h"
#include "meta/annotate.h"
#include "meta/annotation.h"
#include "meta/eadb.h"
#include "rel/ops.h"
#include "sage/tag_codec.h"

namespace gea::meta {
namespace {

using sage::TagId;

std::vector<TagId> SomeTags() {
  std::vector<TagId> tags;
  for (TagId t = 100; t < 160; ++t) tags.push_back(t);
  return tags;
}

AnnotationConfig PinnedConfig() {
  AnnotationConfig config;
  config.seed = 7;
  // Plant the thesis's Fig. 4.22 walkthrough: CCTTGAGTAC -> aldolase C.
  config.pinned_genes[*sage::EncodeTag("CCTTGAGTAC")] = "aldolase C";
  return config;
}

TEST(AnnotationTest, Deterministic) {
  AnnotationDatabase a = AnnotationDatabase::Generate(SomeTags(),
                                                      PinnedConfig());
  AnnotationDatabase b = AnnotationDatabase::Generate(SomeTags(),
                                                      PinnedConfig());
  EXPECT_EQ(a.unigene().NumRows(), b.unigene().NumRows());
  EXPECT_EQ(a.GeneNames(), b.GeneNames());
}

TEST(AnnotationTest, MappedFractionApproximatelyRespected) {
  AnnotationConfig config;
  config.seed = 3;
  config.mapped_fraction = 0.7;
  std::vector<TagId> tags;
  for (TagId t = 0; t < 2000; ++t) tags.push_back(t);
  AnnotationDatabase db = AnnotationDatabase::Generate(tags, config);
  double fraction = static_cast<double>(db.unigene().NumRows()) /
                    static_cast<double>(tags.size());
  EXPECT_GT(fraction, 0.6);
  EXPECT_LT(fraction, 0.8);
}

TEST(AnnotationTest, EveryGeneHasAProteinAndFamily) {
  AnnotationDatabase db = AnnotationDatabase::Generate(SomeTags(),
                                                       PinnedConfig());
  EadbSearch search(db);
  for (const std::string& gene : db.GeneNames()) {
    Result<ProteinRecord> protein = search.GeneToProtein(gene);
    ASSERT_TRUE(protein.ok()) << gene;
    EXPECT_FALSE(protein->sequence.empty());
    Result<std::string> family = search.ProteinToFamily(protein->protein);
    EXPECT_TRUE(family.ok()) << protein->protein;
  }
}

TEST(AnnotationTest, TagsMapToAtMostOneGene) {
  AnnotationDatabase db = AnnotationDatabase::Generate(SomeTags(),
                                                       PinnedConfig());
  std::set<int64_t> seen;
  size_t tagno_col = *db.unigene().schema().FindColumn("TagNo");
  for (size_t r1_ = 0; r1_ < db.unigene().NumRows(); ++r1_) {
    const rel::Row row = db.unigene().GetRow(r1_);
    EXPECT_TRUE(seen.insert(row[tagno_col].AsInt()).second);
  }
}

// ---- EADB search (Fig. 4.22) ----

TEST(EadbTest, TagToGeneWalkthrough) {
  AnnotationDatabase db = AnnotationDatabase::Generate(SomeTags(),
                                                       PinnedConfig());
  EadbSearch search(db);
  Result<std::string> gene =
      search.TagToGene(*sage::EncodeTag("CCTTGAGTAC"));
  ASSERT_TRUE(gene.ok());
  EXPECT_EQ(*gene, "aldolase C");
  Result<ProteinRecord> protein = search.GeneToProtein("aldolase C");
  ASSERT_TRUE(protein.ok());
  EXPECT_EQ(protein->protein, "aldolase C protein");
}

TEST(EadbTest, UnmappedTagReturnsNotFound) {
  AnnotationDatabase db = AnnotationDatabase::Generate(SomeTags(),
                                                       PinnedConfig());
  EadbSearch search(db);
  EXPECT_TRUE(search.TagToGene(999999).status().IsNotFound());
}

TEST(EadbTest, GeneToTagsRoundTrip) {
  AnnotationDatabase db = AnnotationDatabase::Generate(SomeTags(),
                                                       PinnedConfig());
  EadbSearch search(db);
  for (const std::string& gene : db.GeneNames()) {
    for (TagId tag : search.GeneToTags(gene)) {
      Result<std::string> back = search.TagToGene(tag);
      ASSERT_TRUE(back.ok());
      EXPECT_EQ(*back, gene);
    }
  }
}

TEST(EadbTest, PublicationsAndPathways) {
  AnnotationConfig config = PinnedConfig();
  config.min_publications = 1;
  AnnotationDatabase db = AnnotationDatabase::Generate(SomeTags(), config);
  EadbSearch search(db);
  for (const std::string& gene : db.GeneNames()) {
    EXPECT_FALSE(search.GeneToPublications(gene).empty()) << gene;
    EXPECT_FALSE(search.GeneToPathways(gene).empty()) << gene;
  }
}

TEST(EadbTest, DiseaseSearchRespectsChromosomeFilter) {
  AnnotationDatabase db = AnnotationDatabase::Generate(SomeTags(),
                                                       PinnedConfig());
  EadbSearch search(db);
  size_t gene_col = *db.omim().schema().FindColumn("Gene");
  size_t disease_col = *db.omim().schema().FindColumn("Disease");
  size_t chrom_col = *db.omim().schema().FindColumn("Chromosome");
  if (db.omim().NumRows() == 0) GTEST_SKIP() << "no OMIM rows drawn";
  const rel::Row row = db.omim().GetRow(0);
  std::string disease = row[disease_col].AsString();
  int chromosome = static_cast<int>(row[chrom_col].AsInt());
  std::vector<std::string> genes =
      search.GenesForDisease(disease, chromosome);
  EXPECT_FALSE(genes.empty());
  EXPECT_NE(std::find(genes.begin(), genes.end(),
                      row[gene_col].AsString()),
            genes.end());
  // A chromosome with no entry yields an empty result (chromosomes only
  // go up to 22 in the generator).
  EXPECT_TRUE(search.GenesForDisease(disease, 23).empty());
}

// ---- Section 5.2 join pipelines ----

TEST(JoinPipelineTest, GeneRelFromTagRel) {
  AnnotationDatabase db = AnnotationDatabase::Generate(SomeTags(),
                                                       PinnedConfig());
  // A TagRel carrying three tags (e.g. a top-gap table's relational
  // rendering).
  rel::Table tag_rel("TagRel",
                     rel::Schema({{"TagNo", rel::ValueType::kInt}}));
  tag_rel.AppendRowUnchecked({rel::Value::Int(100)});
  tag_rel.AppendRowUnchecked({rel::Value::Int(101)});
  tag_rel.AppendRowUnchecked({rel::Value::Int(102)});
  Result<rel::Table> gene_rel =
      GeneRelFromTagRel(tag_rel, db.unigene(), "GeneRel");
  ASSERT_TRUE(gene_rel.ok());
  // Every output row is a gene name; only mapped tags contribute.
  EXPECT_LE(gene_rel->NumRows(), 3u);
  for (size_t r = 0; r < gene_rel->NumRows(); ++r) {
    EXPECT_FALSE(gene_rel->At(r, 0).AsString().empty());
  }
}

TEST(JoinPipelineTest, ProtRelFromGeneRel) {
  AnnotationDatabase db = AnnotationDatabase::Generate(SomeTags(),
                                                       PinnedConfig());
  rel::Table gene_rel("GeneRel",
                      rel::Schema({{"Gene", rel::ValueType::kString}}));
  gene_rel.AppendRowUnchecked({rel::Value::String("aldolase C")});
  Result<rel::Table> prot_rel =
      ProtRelFromGeneRel(gene_rel, db.swissprot(), "ProtRel");
  ASSERT_TRUE(prot_rel.ok());
  ASSERT_EQ(prot_rel->NumRows(), 1u);
  EXPECT_EQ(prot_rel->Get(0, "Protein")->AsString(), "aldolase C protein");
  EXPECT_FALSE(prot_rel->Get(0, "Sequence")->AsString().empty());
}

TEST(AnnotateTest, GapAnnotationReport) {
  AnnotationConfig config = PinnedConfig();
  config.min_publications = 1;
  AnnotationDatabase db = AnnotationDatabase::Generate(SomeTags(), config);

  // A gap table mixing a pinned tag, a generic mapped-or-not tag and a
  // null gap.
  std::vector<core::GapEntry> entries = {
      {*sage::EncodeTag("CCTTGAGTAC"), {-42.5}},
      {100, {7.25}},
      {101, {std::nullopt}},
  };
  core::GapTable gap = std::move(core::GapTable::Create(
                                     "g", {"Gap"}, std::move(entries)))
                           .value();
  Result<rel::Table> report = AnnotateGapTable(gap, db, "annotated");
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_EQ(report->NumRows(), 3u);

  // The pinned walkthrough row.
  bool found_aldolase = false;
  size_t gene_col = *report->schema().FindColumn("Gene");
  size_t gap_col = *report->schema().FindColumn("Gap");
  size_t pubs_col = *report->schema().FindColumn("Publications");
  for (size_t rr_ = 0; rr_ < report->NumRows(); ++rr_) {
    const rel::Row row = report->GetRow(rr_);
    if (!row[gene_col].is_null() &&
        row[gene_col].AsString() == "aldolase C") {
      found_aldolase = true;
      EXPECT_DOUBLE_EQ(row[gap_col].AsDouble(), -42.5);
      EXPECT_GE(row[pubs_col].AsInt(), 1);
    }
  }
  EXPECT_TRUE(found_aldolase);
}

TEST(AnnotateTest, UnmappedTagsGetNulls) {
  AnnotationDatabase db = AnnotationDatabase::Generate(SomeTags(),
                                                       PinnedConfig());
  std::vector<core::GapEntry> entries = {{999999, {1.0}}};
  core::GapTable gap = std::move(core::GapTable::Create(
                                     "g", {"Gap"}, std::move(entries)))
                           .value();
  Result<rel::Table> report = AnnotateGapTable(gap, db, "annotated");
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->NumRows(), 1u);
  EXPECT_TRUE(report->Get(0, "Gene")->is_null());
  EXPECT_EQ(report->Get(0, "Publications")->AsInt(), 0);
}

TEST(JoinPipelineTest, FullTagToProteinChain) {
  // The complete Section 5.2.1 + 5.2.2 chain.
  AnnotationDatabase db = AnnotationDatabase::Generate(SomeTags(),
                                                       PinnedConfig());
  rel::Table tag_rel("TagRel",
                     rel::Schema({{"TagNo", rel::ValueType::kInt}}));
  tag_rel.AppendRowUnchecked(
      {rel::Value::Int(*sage::EncodeTag("CCTTGAGTAC"))});
  rel::Table gene_rel = *GeneRelFromTagRel(tag_rel, db.unigene(), "g");
  rel::Table prot_rel = *ProtRelFromGeneRel(gene_rel, db.swissprot(), "p");
  ASSERT_EQ(prot_rel.NumRows(), 1u);
  EXPECT_EQ(prot_rel.Get(0, "Protein")->AsString(), "aldolase C protein");
}

}  // namespace
}  // namespace gea::meta
