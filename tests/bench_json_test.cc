// End-to-end check of `bench_operators --json=<path>`: the machine
// consumer contract is one syntactically valid JSON object per line with
// the timing and counter keys the tooling expects.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/export.h"

#ifndef GEA_BENCH_OPERATORS_PATH
#error "GEA_BENCH_OPERATORS_PATH must point at the bench_operators binary"
#endif

namespace gea {
namespace {

std::vector<std::string> Lines(const std::string& text) {
  std::vector<std::string> out;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) out.push_back(line);
  }
  return out;
}

TEST(BenchJsonTest, ProducesOneValidObjectPerBenchmark) {
  const std::string json_path = ::testing::TempDir() + "bench_out.json";
  const std::string command =
      std::string(GEA_BENCH_OPERATORS_PATH) +
      " --threads=2 --json=" + json_path +
      " --benchmark_filter='BM_Aggregate/1000$'" +
      " --benchmark_min_time=0.01 > /dev/null 2>&1";
  ASSERT_EQ(std::system(command.c_str()), 0) << command;

  std::ifstream in(json_path);
  ASSERT_TRUE(in.is_open()) << json_path;
  std::ostringstream buffer;
  buffer << in.rdbuf();

  const std::vector<std::string> lines = Lines(buffer.str());
  ASSERT_EQ(lines.size(), 1u);
  const std::string& line = lines[0];

  std::string error;
  EXPECT_TRUE(obs::internal::ValidateJson(line, &error)) << error << "\n"
                                                         << line;
  for (const char* key :
       {"\"name\":\"BM_Aggregate/1000\"", "\"threads\":2", "\"iterations\":",
        "\"repetitions\":", "\"mean_ms\":", "\"min_ms\":", "\"counters\":{"}) {
    EXPECT_NE(line.find(key), std::string::npos) << key << "\n" << line;
  }
  // --json implies metrics, so the aggregate counters must have moved.
  EXPECT_NE(line.find("\"gea.aggregate.calls\":"), std::string::npos) << line;

  std::remove(json_path.c_str());
}

}  // namespace
}  // namespace gea
