// Tests for the query service: wire-protocol codecs and framing (torn
// frames, CRC corruption, oversized payloads), per-connection
// authentication, admission control (queue-full backpressure, deadline
// expiry) and the gea_stat_serve view.

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/net.h"
#include "obs/metrics.h"
#include "sage/cleaning.h"
#include "sage/generator.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "store/format.h"
#include "workbench/session.h"

namespace gea::serve {
namespace {

// ---------- Protocol codecs ----------

TEST(ProtocolTest, RequestRoundTrip) {
  Request request;
  request.request_id = 42;
  request.deadline_ms = 250;
  request.op = "populate";
  request.params = {{"sumy", "Brain_SUMY"}, {"base", "Brain"}, {"out", "P"}};

  Result<Request> decoded = DecodeRequest(EncodeRequest(request));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->request_id, 42u);
  EXPECT_EQ(decoded->deadline_ms, 250u);
  EXPECT_EQ(decoded->op, "populate");
  EXPECT_EQ(decoded->params, request.params);
}

TEST(ProtocolTest, ResponseRoundTripWithTable) {
  Response response;
  response.request_id = 7;
  response.code = StatusCode::kOk;
  response.text = "hello";
  rel::Table table("query", rel::Schema({{"name", rel::ValueType::kString},
                                         {"n", rel::ValueType::kInt}}));
  table.AppendRowUnchecked({rel::Value::String("a"), rel::Value::Int(1)});
  response.table = std::move(table);

  Result<Response> decoded = DecodeResponse(EncodeResponse(response));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->request_id, 7u);
  EXPECT_TRUE(decoded->ok());
  EXPECT_EQ(decoded->text, "hello");
  ASSERT_TRUE(decoded->table.has_value());
  EXPECT_EQ(decoded->table->NumRows(), 1u);
}

TEST(ProtocolTest, ErrorResponseCarriesCodeAndMessage) {
  Response response =
      ErrorResponse(9, Status::ResourceExhausted("queue full"));
  Result<Response> decoded = DecodeResponse(EncodeResponse(response));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->code, StatusCode::kResourceExhausted);
  EXPECT_EQ(decoded->message, "queue full");
  EXPECT_TRUE(decoded->ToStatus().IsResourceExhausted());
}

TEST(ProtocolTest, DecodeRejectsGarbage) {
  EXPECT_FALSE(DecodeRequest("not a request").ok());
  EXPECT_FALSE(DecodeResponse("").ok());
  // Wrong version byte.
  std::string payload = EncodeRequest(Request{});
  payload[0] = 99;
  EXPECT_FALSE(DecodeRequest(payload).ok());
}

TEST(ProtocolTest, UnknownWireStatusCodeRejected) {
  EXPECT_FALSE(StatusCodeFromWire(200).ok());
  Result<StatusCode> deadline = StatusCodeFromWire(
      static_cast<uint8_t>(StatusCode::kDeadlineExceeded));
  ASSERT_TRUE(deadline.ok());
  EXPECT_EQ(*deadline, StatusCode::kDeadlineExceeded);
}

// ---------- Trace context & stage timing (protocol v2) ----------

TEST(ProtocolTest, RequestTraceContextRoundTrip) {
  Request request;
  request.request_id = 5;
  request.op = "ping";
  TraceContext trace;
  trace.trace_id = 0xdeadbeefcafe;
  trace.sampled = true;
  request.trace = trace;

  Result<Request> decoded = DecodeRequest(EncodeRequest(request));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->wire_version, kProtocolVersion);
  ASSERT_TRUE(decoded->trace.has_value());
  EXPECT_EQ(decoded->trace->trace_id, 0xdeadbeefcafeu);
  EXPECT_TRUE(decoded->trace->sampled);

  // Absent context stays absent.
  request.trace.reset();
  decoded = DecodeRequest(EncodeRequest(request));
  ASSERT_TRUE(decoded.ok());
  EXPECT_FALSE(decoded->trace.has_value());
}

TEST(ProtocolTest, Version1RequestStillDecodes) {
  // A v1 frame hand-rolled byte by byte: it ends right after the params
  // block, with no trace flag.
  std::string payload;
  store::PutU8(&payload, 1);
  store::PutU64(&payload, 77);   // request_id
  store::PutU32(&payload, 125);  // deadline_ms
  store::PutString(&payload, "aggregate");
  store::PutU32(&payload, 1);  // nparams
  store::PutString(&payload, "enum");
  store::PutString(&payload, "Brain");

  Result<Request> decoded = DecodeRequest(payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->wire_version, 1);
  EXPECT_EQ(decoded->request_id, 77u);
  EXPECT_EQ(decoded->deadline_ms, 125u);
  EXPECT_EQ(decoded->op, "aggregate");
  EXPECT_FALSE(decoded->trace.has_value());
}

TEST(ProtocolTest, Version1ResponseStillDecodes) {
  // v1 responses end right after the table block.
  std::string payload;
  store::PutU8(&payload, 1);
  store::PutU64(&payload, 77);  // request_id
  store::PutU8(&payload, 0);    // status: OK
  store::PutString(&payload, "");
  store::PutString(&payload, "pong");
  store::PutU8(&payload, 0);  // has_table

  Result<Response> decoded = DecodeResponse(payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->wire_version, 1);
  EXPECT_EQ(decoded->text, "pong");
  EXPECT_EQ(decoded->trace_id, 0u);
  EXPECT_FALSE(decoded->timing.has_value());
}

TEST(ProtocolTest, ServerEncodesInRequestersVersion) {
  Response response;
  response.request_id = 9;
  response.text = "pong";
  response.trace_id = 1234;
  response.wire_version = 1;
  // v1 encoding drops the trace/timing tail entirely.
  std::string payload = EncodeResponse(response);
  EXPECT_EQ(static_cast<uint8_t>(payload[0]), 1);
  Result<Response> decoded = DecodeResponse(payload);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->wire_version, 1);
  EXPECT_EQ(decoded->trace_id, 0u);
  EXPECT_FALSE(decoded->timing.has_value());
}

TEST(ProtocolTest, PatchResponseTimingStampsTrailingBlock) {
  Response response;
  response.request_id = 3;
  response.trace_id = 42;
  response.timing.emplace();  // encoded as zeros, patched below

  std::string payload = EncodeResponse(response);
  StageBreakdown timing;
  timing.decode_nanos = 1000;
  timing.queue_nanos = 2000;
  timing.execute_nanos = 3000;
  timing.wal_append_nanos = 400;
  timing.wal_fsync_nanos = 500;
  timing.encode_nanos = 6000;
  ASSERT_TRUE(PatchResponseTiming(&payload, timing));

  Result<Response> decoded = DecodeResponse(payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->trace_id, 42u);
  ASSERT_TRUE(decoded->timing.has_value());
  EXPECT_EQ(decoded->timing->decode_nanos, 1000u);
  EXPECT_EQ(decoded->timing->queue_nanos, 2000u);
  EXPECT_EQ(decoded->timing->execute_nanos, 3000u);
  EXPECT_EQ(decoded->timing->wal_append_nanos, 400u);
  EXPECT_EQ(decoded->timing->wal_fsync_nanos, 500u);
  EXPECT_EQ(decoded->timing->encode_nanos, 6000u);
  EXPECT_EQ(decoded->timing->TotalNanos(), 1000u + 2000u + 3000u + 6000u);
}

TEST(ProtocolTest, PatchResponseTimingRefusesNonTimingPayloads) {
  StageBreakdown timing;
  // No timing block present.
  Response bare;
  bare.request_id = 1;
  std::string payload = EncodeResponse(bare);
  std::string before = payload;
  EXPECT_FALSE(PatchResponseTiming(&payload, timing));
  EXPECT_EQ(payload, before);

  // v1 payloads never carry one.
  Response v1;
  v1.wire_version = 1;
  v1.timing.emplace();
  payload = EncodeResponse(v1);
  before = payload;
  EXPECT_FALSE(PatchResponseTiming(&payload, timing));
  EXPECT_EQ(payload, before);

  // Too short to hold the block at all.
  std::string tiny = "\x02";
  EXPECT_FALSE(PatchResponseTiming(&tiny, timing));
}

TEST(ProtocolTest, MalformedTraceFlagsRejected) {
  Request request;
  request.op = "ping";
  TraceContext trace;
  trace.sampled = true;
  request.trace = trace;
  std::string payload = EncodeRequest(request);
  // Corrupt the trailing sampled flag (must be 0/1).
  payload[payload.size() - 1] = 7;
  EXPECT_FALSE(DecodeRequest(payload).ok());
}

// ---------- Framing over a socketpair ----------

class FramingTest : public testing::Test {
 protected:
  void SetUp() override {
    ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds_), 0);
  }
  void TearDown() override {
    net::CloseFd(fds_[0]);
    net::CloseFd(fds_[1]);
  }
  int fds_[2];
};

TEST_F(FramingTest, FrameRoundTrip) {
  ASSERT_TRUE(WriteFrame(fds_[0], "payload bytes").ok());
  Result<std::optional<std::string>> frame = ReadFrame(fds_[1]);
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  ASSERT_TRUE(frame->has_value());
  EXPECT_EQ(**frame, "payload bytes");
}

TEST_F(FramingTest, CleanEofBetweenFramesIsNotAnError) {
  net::CloseFd(fds_[0]);
  fds_[0] = -1;
  Result<std::optional<std::string>> frame = ReadFrame(fds_[1]);
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  EXPECT_FALSE(frame->has_value());
}

TEST_F(FramingTest, TornFrameIsAnError) {
  // A header promising 100 bytes, then the peer dies after 3.
  std::string wire = Frame(std::string(100, 'x')).substr(0, 8 + 3);
  ASSERT_TRUE(net::SendAll(fds_[0], wire).ok());
  net::CloseFd(fds_[0]);
  fds_[0] = -1;
  Result<std::optional<std::string>> frame = ReadFrame(fds_[1]);
  EXPECT_FALSE(frame.ok());
}

TEST_F(FramingTest, CrcMismatchIsAnError) {
  std::string wire = Frame("payload bytes");
  wire[wire.size() - 1] ^= 0x5a;  // flip bits in the payload tail
  ASSERT_TRUE(net::SendAll(fds_[0], wire).ok());
  Result<std::optional<std::string>> frame = ReadFrame(fds_[1]);
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kIoError);
}

TEST_F(FramingTest, OversizedFrameRejectedBeforeAllocation) {
  std::string header;
  store::PutU32(&header, 64u << 20);  // 64 MiB, over the 16 MiB cap
  store::PutU32(&header, 0);
  ASSERT_TRUE(net::SendAll(fds_[0], header).ok());
  Result<std::optional<std::string>> frame = ReadFrame(fds_[1]);
  ASSERT_FALSE(frame.ok());
  EXPECT_TRUE(frame.status().IsInvalidArgument());

  // The writer refuses oversized payloads symmetrically.
  EXPECT_TRUE(WriteFrame(fds_[0], std::string_view("x", 1)).ok());
  std::string big(kMaxPayloadBytes + 1, 'x');
  EXPECT_TRUE(WriteFrame(fds_[0], big).IsInvalidArgument());
}

// ---------- Server fixture ----------

sage::SageDataSet CleanSmallData(uint64_t seed = 42) {
  sage::GeneratorConfig config;
  config.seed = seed;
  config.panels = sage::SyntheticSageGenerator::SmallPanels();
  sage::SyntheticSage synth = sage::SyntheticSageGenerator(config).Generate();
  sage::CleanAndNormalize(synth.dataset);
  return std::move(synth.dataset);
}

class ServeTest : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    data_ = new sage::SageDataSet(CleanSmallData());
  }
  static void TearDownTestSuite() {
    delete data_;
    data_ = nullptr;
  }

  std::unique_ptr<workbench::AnalysisSession> MakeSession() {
    auto session =
        std::make_unique<workbench::AnalysisSession>("admin", "secret");
    EXPECT_TRUE(session
                    ->Login("admin", "secret",
                            workbench::AccessLevel::kAdministrator)
                    .ok());
    EXPECT_TRUE(session->LoadDataSet(*data_).ok());
    EXPECT_TRUE(
        session->CreateTissueDataSet(sage::TissueType::kBrain).ok());
    EXPECT_TRUE(
        session->AddUser("reader", "pw", workbench::AccessLevel::kUser).ok());
    return session;
  }

  static sage::SageDataSet* data_;
};

sage::SageDataSet* ServeTest::data_ = nullptr;

TEST_F(ServeTest, StartRequiresLoggedInSession) {
  workbench::AnalysisSession session("admin", "secret");
  QueryServer server(&session);
  EXPECT_TRUE(server.Start().IsFailedPrecondition());
}

TEST_F(ServeTest, AuthGatingPerConnection) {
  auto session = MakeSession();
  QueryServer server(session.get());
  ASSERT_TRUE(server.Start().ok());

  QueryClient client;
  ASSERT_TRUE(client.Connect(server.Port()).ok());

  // Ping is open; everything else needs connection-level auth — even
  // though the embedded session itself is logged in.
  EXPECT_TRUE(client.Ping().ok());
  Result<rel::Table> denied = client.Sql("SELECT * FROM Libraries");
  EXPECT_TRUE(denied.status().IsPermissionDenied());

  EXPECT_TRUE(client.Login("reader", "wrong").IsPermissionDenied());
  ASSERT_TRUE(client.Login("reader", "pw").ok());
  Result<rel::Table> table = client.Sql("SELECT * FROM Libraries LIMIT 3");
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  EXPECT_EQ(table->NumRows(), 3u);

  // Non-admin connections cannot checkpoint.
  Result<Response> checkpoint = client.Call("checkpoint");
  ASSERT_TRUE(checkpoint.ok());
  EXPECT_EQ(checkpoint->code, StatusCode::kPermissionDenied);

  // Logout drops the connection's rights again.
  ASSERT_TRUE(client.Logout().ok());
  EXPECT_TRUE(
      client.Sql("SELECT * FROM Libraries").status().IsPermissionDenied());

  server.Stop();
  EXPECT_FALSE(server.Running());
}

TEST_F(ServeTest, UnknownCommandAndBadParams) {
  auto session = MakeSession();
  QueryServer server(session.get());
  ASSERT_TRUE(server.Start().ok());

  QueryClient client;
  ASSERT_TRUE(client.Connect(server.Port()).ok());
  ASSERT_TRUE(client.Login("admin", "secret", "admin").ok());

  Result<Response> unknown = client.Call("frobnicate");
  ASSERT_TRUE(unknown.ok());
  EXPECT_EQ(unknown->code, StatusCode::kInvalidArgument);

  Result<Response> missing = client.Call("aggregate", {{"enum", "brain"}});
  ASSERT_TRUE(missing.ok());
  EXPECT_EQ(missing->code, StatusCode::kInvalidArgument);

  Result<Response> bad_range =
      client.Call("gap_query",
                  {{"compared", "x"}, {"query", "99"}, {"out", "y"}});
  ASSERT_TRUE(bad_range.ok());
  EXPECT_EQ(bad_range->code, StatusCode::kInvalidArgument);
}

TEST_F(ServeTest, OperatorCommandsEndToEnd) {
  auto session = MakeSession();
  QueryServer server(session.get());
  ASSERT_TRUE(server.Start().ok());

  QueryClient client;
  ASSERT_TRUE(client.Connect(server.Port()).ok());
  ASSERT_TRUE(client.Login("admin", "secret", "admin").ok());

  Result<Response> agg = client.Call(
      "aggregate", {{"enum", "brain"}, {"out", "Brain_SUMY"}});
  ASSERT_TRUE(agg.ok());
  ASSERT_TRUE(agg->ok()) << agg->message;

  Result<Response> gap = client.Call(
      "diff",
      {{"sumy1", "Brain_SUMY"}, {"sumy2", "Brain_SUMY"}, {"gap", "G0"}});
  ASSERT_TRUE(gap.ok());
  ASSERT_TRUE(gap->ok()) << gap->message;

  Result<Response> table = client.Call("get_table", {{"name", "Brain_SUMY"}});
  ASSERT_TRUE(table.ok());
  ASSERT_TRUE(table->ok()) << table->message;
  ASSERT_TRUE(table->table.has_value());
  EXPECT_GT(table->table->NumRows(), 0u);

  Result<Response> tables = client.Call("tables");
  ASSERT_TRUE(tables.ok());
  ASSERT_TRUE(tables->table.has_value());
  EXPECT_GT(tables->table->NumRows(), 0u);

  // The mutations ran through Logged(): the query log saw them, and
  // EXPLAIN of the most recent operation renders.
  Result<Response> log = client.Call("query_log", {{"limit", "10"}});
  ASSERT_TRUE(log.ok());
  ASSERT_TRUE(log->table.has_value());
  EXPECT_GT(log->table->NumRows(), 0u);
  Result<Response> explain = client.Call("explain");
  ASSERT_TRUE(explain.ok());
  EXPECT_TRUE(explain->ok());
  EXPECT_FALSE(explain->text.empty());
}

TEST_F(ServeTest, QueueFullBackpressureIsExplicit) {
  auto session = MakeSession();
  ServerOptions options;
  options.num_workers = 1;
  options.queue_capacity = 1;
  QueryServer server(session.get(), options);
  ASSERT_TRUE(server.Start().ok());

  // Occupy the single worker...
  QueryClient busy;
  ASSERT_TRUE(busy.Connect(server.Port()).ok());
  std::thread busy_thread([&busy] {
    (void)busy.Call("ping", {{"sleep_ms", "400"}});
  });
  // ...wait until the worker picked it up (queue back to empty)...
  while (server.GetStats().requests < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  // ...fill the queue with a second sleeper...
  QueryClient filler;
  ASSERT_TRUE(filler.Connect(server.Port()).ok());
  std::thread filler_thread([&filler] {
    (void)filler.Call("ping", {{"sleep_ms", "100"}});
  });
  while (server.GetStats().queue_depth < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  // ...and the next request must be rejected, immediately and loudly.
  QueryClient rejected;
  ASSERT_TRUE(rejected.Connect(server.Port()).ok());
  Result<Response> response = rejected.Call("ping");
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->code, StatusCode::kResourceExhausted);

  busy_thread.join();
  filler_thread.join();
  EXPECT_GE(server.GetStats().rejected_queue_full, 1u);
  server.Stop();
}

TEST_F(ServeTest, ExpiredDeadlineRejectedBeforeExecution) {
  auto session = MakeSession();
  ServerOptions options;
  options.num_workers = 1;
  QueryServer server(session.get(), options);
  ASSERT_TRUE(server.Start().ok());

  QueryClient busy;
  ASSERT_TRUE(busy.Connect(server.Port()).ok());
  std::thread busy_thread([&busy] {
    (void)busy.Call("ping", {{"sleep_ms", "300"}});
  });
  while (server.GetStats().requests < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  // 20 ms deadline, stuck behind a 300 ms sleeper: must come back as
  // DEADLINE_EXCEEDED without running.
  QueryClient late;
  late.SetDeadlineMs(20);
  ASSERT_TRUE(late.Connect(server.Port()).ok());
  Result<Response> response = late.Call("ping");
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->code, StatusCode::kDeadlineExceeded);

  busy_thread.join();
  EXPECT_GE(server.GetStats().rejected_deadline, 1u);
  server.Stop();
}

TEST_F(ServeTest, StatViewReportsServer) {
  auto session = MakeSession();
  QueryServer server(session.get());
  ASSERT_TRUE(server.Start().ok());

  QueryClient client;
  ASSERT_TRUE(client.Connect(server.Port()).ok());
  ASSERT_TRUE(client.Login("admin", "secret", "admin").ok());
  ASSERT_TRUE(client.Ping().ok());

  // The serve view is a computed catalog table like gea_stat_storage —
  // queryable over the wire, about the server answering the query.
  Result<rel::Table> view = client.Sql(
      "SELECT port, requests FROM gea_stat_serve WHERE running = 1");
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  ASSERT_GE(view->NumRows(), 1u);
  bool found = false;
  for (size_t i = 0; i < view->NumRows(); ++i) {
    if (view->At(i, 0).AsInt() == server.Port()) found = true;
  }
  EXPECT_TRUE(found);
  server.Stop();
}

TEST_F(ServeTest, GracefulStopDeliversInFlightResponses) {
  auto session = MakeSession();
  QueryServer server(session.get());
  ASSERT_TRUE(server.Start().ok());

  QueryClient client;
  ASSERT_TRUE(client.Connect(server.Port()).ok());
  std::atomic<bool> got_response{false};
  std::thread slow([&] {
    Result<Response> response = client.Call("ping", {{"sleep_ms", "200"}});
    if (response.ok() && response->ok()) got_response = true;
  });
  // Give the request time to be admitted, then stop mid-execution.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  server.Stop();
  slow.join();
  EXPECT_TRUE(got_response.load());
  EXPECT_FALSE(server.Running());

  // Stop is idempotent and the port is released.
  server.Stop();
  EXPECT_EQ(server.Port(), 0);
}

}  // namespace
}  // namespace gea::serve
