// End-to-end test of the query service over real TCP: many concurrent
// authenticated clients mixing reads and WAL-logged mutations, the
// server stopped mid-load, then crash recovery verified to replay every
// acknowledged mutation. Also checks the gea.serve.* metrics surface
// admission-control rejections.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "obs/export.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/request_trace.h"
#include "obs/server.h"
#include "sage/cleaning.h"
#include "sage/generator.h"
#include "serve/client.h"
#include "serve/server.h"
#include "workbench/session.h"

namespace gea::serve {
namespace {

sage::SageDataSet CleanSmallData(uint64_t seed = 42) {
  sage::GeneratorConfig config;
  config.seed = seed;
  config.panels = sage::SyntheticSageGenerator::SmallPanels();
  sage::SyntheticSage synth = sage::SyntheticSageGenerator(config).Generate();
  sage::CleanAndNormalize(synth.dataset);
  return std::move(synth.dataset);
}

std::string FreshDir(const std::string& tag) {
  std::string dir = testing::TempDir() + "/gea_serve_e2e_" + tag;
  std::filesystem::remove_all(dir);
  return dir;
}

std::unique_ptr<workbench::AnalysisSession> AdminSession() {
  auto session =
      std::make_unique<workbench::AnalysisSession>("admin", "secret");
  EXPECT_TRUE(session
                  ->Login("admin", "secret",
                          workbench::AccessLevel::kAdministrator)
                  .ok());
  return session;
}

TEST(ServeE2eTest, ConcurrentClientsStopMidLoadRecoverAcked) {
  const std::string dir = FreshDir("durability");
  auto session = AdminSession();
  ASSERT_TRUE(session->OpenStorage(dir).ok());
  ASSERT_TRUE(session->LoadDataSet(CleanSmallData()).ok());
  ASSERT_TRUE(session->CreateTissueDataSet(sage::TissueType::kBrain).ok());
  ASSERT_TRUE(
      session->AddUser("reader", "pw", workbench::AccessLevel::kUser).ok());

  ServerOptions options;
  options.num_workers = 4;
  options.queue_capacity = 128;
  QueryServer server(session.get(), options);
  ASSERT_TRUE(server.Start().ok());
  const int port = server.Port();

  constexpr int kClients = 8;
  constexpr int kIterations = 6;

  // Mutations whose OK response the client actually saw. Only these are
  // durability-guaranteed; responses lost to the mid-load stop are not.
  std::mutex acked_mu;
  std::set<std::string> acked_sumys;
  std::set<std::string> acked_gaps;
  std::atomic<int> acked_count{0};

  std::vector<std::thread> clients;
  for (int t = 0; t < kClients; ++t) {
    clients.emplace_back([&, t] {
      QueryClient client;
      if (!client.Connect(port).ok()) return;
      // Mix of identities: admins and plain users both mutate.
      const bool admin = (t % 2 == 0);
      Status login = admin ? client.Login("admin", "secret", "admin")
                           : client.Login("reader", "pw");
      if (!login.ok()) return;

      for (int i = 0; i < kIterations; ++i) {
        // Read under the shared lock...
        (void)client.Sql("SELECT COUNT(*) FROM Libraries");

        // ...and mutate under the exclusive one. Ack => WAL-logged.
        const std::string sumy =
            "S_" + std::to_string(t) + "_" + std::to_string(i);
        Result<Response> agg = client.Call(
            "aggregate", {{"enum", "brain"}, {"out", sumy}});
        if (!agg.ok()) return;  // server stopped; stream gone
        if (agg->ok()) {
          {
            std::lock_guard<std::mutex> lock(acked_mu);
            acked_sumys.insert(sumy);
          }
          acked_count.fetch_add(1);

          const std::string gap =
              "G_" + std::to_string(t) + "_" + std::to_string(i);
          Result<Response> diff = client.Call(
              "diff", {{"sumy1", sumy}, {"sumy2", sumy}, {"gap", gap}});
          if (!diff.ok()) return;
          if (diff->ok()) {
            std::lock_guard<std::mutex> lock(acked_mu);
            acked_gaps.insert(gap);
          }
        }
        if (admin && i == 2) {
          // Checkpoints interleave with the load: snapshot + WAL rotate
          // must not lose any acked mutation either.
          (void)client.Call("checkpoint");
        }
      }
    });
  }

  // Let the load build up, then stop the server in the middle of it —
  // the "kill" in kill-mid-load. Admitted requests still finish
  // (drain-on-shutdown), everything after is a dead connection.
  while (acked_count.load() < kClients) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  server.Stop();
  for (std::thread& thread : clients) thread.join();

  ASSERT_FALSE(acked_sumys.empty());

  // Drop the serving session without a clean CloseStorage, then recover
  // into a fresh one: the WAL must replay every acknowledged mutation.
  session.reset();
  auto recovered = AdminSession();
  ASSERT_TRUE(recovered->OpenStorage(dir).ok());
  for (const std::string& sumy : acked_sumys) {
    EXPECT_TRUE(recovered->GetSumy(sumy).ok())
        << "acked SUMY lost after recovery: " << sumy;
  }
  for (const std::string& gap : acked_gaps) {
    EXPECT_TRUE(recovered->GetGap(gap).ok())
        << "acked GAP lost after recovery: " << gap;
  }
}

TEST(ServeE2eTest, ReadersNeverBlockBehindCheckpointOrWriterBurst) {
  obs::ScopedMetricsEnable metrics(true);
  const std::string dir = FreshDir("mvcc");
  auto session = AdminSession();
  ASSERT_TRUE(session->OpenStorage(dir).ok());
  ASSERT_TRUE(session->LoadDataSet(CleanSmallData()).ok());
  ASSERT_TRUE(session->CreateTissueDataSet(sage::TissueType::kBrain).ok());
  // Fatten the catalog so every checkpoint — snapshot encode + fsync +
  // rename, all under the exclusive session lock — takes real time.
  for (int i = 0; i < 24; ++i) {
    ASSERT_TRUE(
        session->Aggregate("brain", "Pad_" + std::to_string(i)).ok());
  }

  ServerOptions options;
  options.num_workers = 4;
  QueryServer server(session.get(), options);
  ASSERT_TRUE(server.Start().ok());
  const int port = server.Port();

  obs::Histogram& read_wait = obs::MetricsRegistry::Global().GetHistogram(
      "gea.lock.session.read_wait_nanos");
  const uint64_t read_waits_before = read_wait.Count();

  using Clock = std::chrono::steady_clock;
  std::atomic<bool> checkpoint_running{false};
  std::atomic<bool> done{false};
  std::atomic<uint64_t> checkpoint_total_nanos{0};
  std::atomic<int> checkpoints{0};

  // One admin client alternates writer bursts with checkpoints — the
  // worst case for readers under the old reader-writer lock: long
  // exclusive holds back to back.
  std::thread writer([&] {
    QueryClient client;
    ASSERT_TRUE(client.Connect(port).ok());
    ASSERT_TRUE(client.Login("admin", "secret", "admin").ok());
    for (int round = 0; round < 4; ++round) {
      for (int i = 0; i < 4; ++i) {
        Result<Response> agg = client.Call(
            "aggregate", {{"enum", "brain"},
                          {"out", "Burst_" + std::to_string(round) + "_" +
                                      std::to_string(i)},
                          {"replace", "1"}});
        ASSERT_TRUE(agg.ok());
        EXPECT_TRUE((*agg).ok()) << (*agg).message;
      }
      const auto start = Clock::now();
      checkpoint_running.store(true, std::memory_order_release);
      Result<Response> cp = client.Call("checkpoint");
      checkpoint_running.store(false, std::memory_order_release);
      ASSERT_TRUE(cp.ok());
      EXPECT_TRUE((*cp).ok()) << (*cp).message;
      checkpoint_total_nanos.fetch_add(
          std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                               start)
              .count());
      checkpoints.fetch_add(1);
    }
    done.store(true, std::memory_order_release);
  });

  // Readers hammer the MVCC read path the whole time. A read that both
  // starts and finishes while a checkpoint holds the exclusive lock is
  // impossible under reader-writer exclusion — each one proves the read
  // executed against a pinned epoch instead of waiting.
  std::atomic<uint64_t> overlapped_reads{0};
  std::mutex latencies_mu;
  std::vector<uint64_t> read_nanos;
  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&] {
      QueryClient client;
      ASSERT_TRUE(client.Connect(port).ok());
      ASSERT_TRUE(client.Login("admin", "secret", "admin").ok());
      while (!done.load(std::memory_order_acquire)) {
        const bool started_inside =
            checkpoint_running.load(std::memory_order_acquire);
        const auto start = Clock::now();
        Result<rel::Table> count =
            client.Sql("SELECT COUNT(*) FROM Libraries");
        const uint64_t elapsed =
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                Clock::now() - start)
                .count();
        if (!count.ok()) break;  // server stopping
        if (started_inside &&
            checkpoint_running.load(std::memory_order_acquire)) {
          overlapped_reads.fetch_add(1);
        }
        {
          std::lock_guard<std::mutex> lock(latencies_mu);
          read_nanos.push_back(elapsed);
        }
        Result<Response> table = client.Call("get_table", {{"name", "brain"}});
        if (!table.ok()) break;
      }
    });
  }

  writer.join();
  for (std::thread& reader : readers) reader.join();
  server.Stop();

  ASSERT_EQ(checkpoints.load(), 4);
  ASSERT_FALSE(read_nanos.empty());

  // 1. Reads completed inside checkpoint windows: readers pinned old
  // epochs instead of queueing behind the writer.
  EXPECT_GT(overlapped_reads.load(), 0u);

  // 2. Read p99 is far below the mean checkpoint duration — no read
  // ever waited out an exclusive hold.
  std::sort(read_nanos.begin(), read_nanos.end());
  const size_t p99_index =
      std::min(read_nanos.size() - 1, (read_nanos.size() * 99) / 100);
  const uint64_t p99 = read_nanos[p99_index];
  const uint64_t mean_checkpoint =
      checkpoint_total_nanos.load() / checkpoints.load();
  EXPECT_LT(p99, mean_checkpoint)
      << "p99 read " << p99 << "ns vs mean checkpoint " << mean_checkpoint
      << "ns";

  // 3. The session lock saw zero shared-acquisition waits: the read path
  // never touched it.
  EXPECT_EQ(read_wait.Count(), read_waits_before);
}

TEST(ServeE2eTest, AdmissionRejectionsVisibleInMetrics) {
  obs::ScopedMetricsEnable metrics(true);
  obs::Counter& queue_full = obs::MetricsRegistry::Global().GetCounter(
      "gea.serve.rejected_queue_full");
  obs::Counter& deadline = obs::MetricsRegistry::Global().GetCounter(
      "gea.serve.rejected_deadline");
  const uint64_t queue_full_before = queue_full.Value();
  const uint64_t deadline_before = deadline.Value();

  auto session = AdminSession();
  ServerOptions options;
  options.num_workers = 1;
  options.queue_capacity = 1;
  QueryServer server(session.get(), options);
  ASSERT_TRUE(server.Start().ok());

  QueryClient busy;
  ASSERT_TRUE(busy.Connect(server.Port()).ok());
  std::thread busy_thread(
      [&busy] { (void)busy.Call("ping", {{"sleep_ms", "400"}}); });
  while (server.GetStats().requests < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  // Fill the queue with a deadline that will expire behind the sleeper.
  QueryClient late;
  late.SetDeadlineMs(20);
  ASSERT_TRUE(late.Connect(server.Port()).ok());
  std::thread late_thread([&late] { (void)late.Call("ping"); });
  while (server.GetStats().queue_depth < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  // And one more to bounce off the full queue.
  QueryClient rejected;
  ASSERT_TRUE(rejected.Connect(server.Port()).ok());
  Result<Response> response = rejected.Call("ping");
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->code, StatusCode::kResourceExhausted);

  busy_thread.join();
  late_thread.join();
  server.Stop();

  EXPECT_GT(queue_full.Value(), queue_full_before);
  EXPECT_GT(deadline.Value(), deadline_before);
  // Request/byte counters moved too.
  EXPECT_GT(obs::MetricsRegistry::Global()
                .GetCounter("gea.serve.requests")
                .Value(),
            0u);
  EXPECT_GT(
      obs::MetricsRegistry::Global().GetCounter("gea.serve.bytes_in").Value(),
      0u);
  EXPECT_GT(
      obs::MetricsRegistry::Global().GetCounter("gea.serve.bytes_out").Value(),
      0u);
}

TEST(ServeE2eTest, TracedRunExportsValidChromeTrace) {
  obs::RequestTraceRing::Global().Clear();
  obs::ScopedTraceSample sample(1);  // sample every request

  const std::string dir = FreshDir("trace");
  auto session = AdminSession();
  ASSERT_TRUE(session->OpenStorage(dir).ok());
  ASSERT_TRUE(session->LoadDataSet(CleanSmallData()).ok());
  ASSERT_TRUE(session->CreateTissueDataSet(sage::TissueType::kBrain).ok());

  ServerOptions options;
  options.num_workers = 2;
  QueryServer server(session.get(), options);
  ASSERT_TRUE(server.Start().ok());

  QueryClient client;
  ASSERT_TRUE(client.Connect(server.Port()).ok());
  client.SetTracing(true);
  ASSERT_TRUE(client.Login("admin", "secret", "admin").ok());
  ASSERT_TRUE(client.Ping().ok());
  // A WAL-logged mutation, so the trace carries wal_append + wal_fsync.
  Result<Response> agg =
      client.Call("aggregate", {{"enum", "brain"}, {"out", "Trace_SUMY"}});
  ASSERT_TRUE(agg.ok());
  ASSERT_TRUE(agg->ok()) << agg->message;

  // The wire echoed a per-stage breakdown for the traced request.
  ASSERT_TRUE(client.LastTiming().has_value());
  EXPECT_GT(client.LastTiming()->execute_nanos, 0u);
  EXPECT_GT(client.LastTiming()->wal_fsync_nanos, 0u);
  EXPECT_NE(client.LastTraceId(), 0u);

  server.Stop();

  // Render the ring exactly as /tracez?format=chrome would.
  obs::internal::HttpResponse chrome =
      obs::internal::HandlePath("/tracez", "format=chrome");
  ASSERT_EQ(chrome.status, 200);
  std::string error;
  ASSERT_TRUE(obs::internal::ValidateJson(chrome.body, &error)) << error;
  for (const char* needle :
       {"\"decode\"", "\"queue_wait\"", "\"execute\"", "\"wal_fsync\"",
        "\"encode\"", "\"write\"", "\"gea_server\"", "\"traceEvents\""}) {
    EXPECT_NE(chrome.body.find(needle), std::string::npos) << needle;
  }

  // CI points GEA_TRACE_EXPORT at a file and runs tools/check_trace.py
  // over it; without the variable the in-test checks above stand alone.
  if (const char* path = std::getenv("GEA_TRACE_EXPORT")) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out.good()) << path;
    out << chrome.body;
  }
}

// The contention/accounting numbers must agree wherever they surface:
// the v3 wire timing block, the request trace ring (and its Chrome
// export), the gea_stat_requests rollup, and the slow-query log line —
// all for the same traced request. A ping sleeping under the shared
// session lock makes the traced aggregate's exclusive acquisition wait
// deterministically, so lock_wait is real, not noise.
TEST(ServeE2eTest, LockWaitAndMemoryAgreeAcrossAllSurfaces) {
  obs::RequestTraceRing::Global().Clear();
  obs::ScopedTraceSample sample(1);
  obs::ScopedSlowQueryMs slow(0);  // log every operation
  obs::ScopedLogCapture capture(obs::LogLevel::kWarn);

  auto session = AdminSession();
  ASSERT_TRUE(session->LoadDataSet(CleanSmallData()).ok());
  ASSERT_TRUE(session->CreateTissueDataSet(sage::TissueType::kBrain).ok());

  ServerOptions options;
  options.num_workers = 2;  // the sleeper and the waiter need both
  QueryServer server(session.get(), options);
  ASSERT_TRUE(server.Start().ok());

  QueryClient client;
  ASSERT_TRUE(client.Connect(server.Port()).ok());
  client.SetTracing(true);
  ASSERT_TRUE(client.Login("admin", "secret", "admin").ok());

  // Park a ping on the shared session lock, then send the aggregate
  // once the sleeper is executing: its unique lock must wait it out.
  const uint64_t requests_before = server.GetStats().requests;
  QueryClient busy;
  ASSERT_TRUE(busy.Connect(server.Port()).ok());
  std::thread busy_thread(
      [&busy] { (void)busy.Call("ping", {{"sleep_ms", "400"}}); });
  while (server.GetStats().requests <= requests_before) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  Result<Response> agg = client.Call(
      "aggregate", {{"enum", "brain"}, {"out", "Contention_SUMY"}});
  busy_thread.join();
  ASSERT_TRUE(agg.ok());
  ASSERT_TRUE(agg->ok()) << agg->message;

  // Surface 1: the wire. The v3 timing block carries the lock wait and
  // both memory-accounting figures.
  ASSERT_TRUE(client.LastTiming().has_value());
  const StageBreakdown wire = *client.LastTiming();
  const uint64_t trace_id = client.LastTraceId();
  ASSERT_NE(trace_id, 0u);
  EXPECT_GT(wire.lock_wait_nanos, 0u);
  EXPECT_LT(wire.lock_wait_nanos, wire.execute_nanos);  // a subset of it
  EXPECT_GT(wire.alloc_bytes, 0u);
  EXPECT_GT(wire.peak_bytes, 0u);
  EXPECT_GE(wire.alloc_bytes, wire.peak_bytes);  // cumulative >= high-water

  // Surface 2: the trace ring record for that trace id, byte-identical.
  // The record is published after the response hits the wire, so the
  // client can get here first — wait for it.
  std::optional<obs::RequestTraceRecord> aggregate_record;
  const auto ring_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (!aggregate_record.has_value()) {
    ASSERT_LT(std::chrono::steady_clock::now(), ring_deadline);
    for (const obs::RequestTraceRecord& record :
         obs::RequestTraceRing::Global().Snapshot()) {
      if (record.trace_id == trace_id) aggregate_record = record;
    }
    if (!aggregate_record.has_value()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }
  EXPECT_EQ(aggregate_record->stages[obs::RequestStage::kLockWait],
            wire.lock_wait_nanos);
  EXPECT_EQ(aggregate_record->alloc_bytes, wire.alloc_bytes);
  EXPECT_EQ(aggregate_record->peak_bytes, wire.peak_bytes);

  // Surface 3: the gea_stat_requests rollup, queried over the wire. One
  // aggregate in the cleared ring, so the group figures are exact.
  Result<rel::Table> rollup = client.Sql(
      "SELECT op, lock_wait_ms, alloc_bytes, peak_bytes "
      "FROM gea_stat_requests WHERE op = 'aggregate'");
  ASSERT_TRUE(rollup.ok()) << rollup.status().ToString();
  ASSERT_EQ(rollup->NumRows(), 1u);
  EXPECT_NEAR(rollup->At(0, 1).AsDouble(),
              static_cast<double>(wire.lock_wait_nanos) / 1e6, 1e-6);
  EXPECT_EQ(rollup->At(0, 2).AsInt(),
            static_cast<int64_t>(wire.alloc_bytes));
  EXPECT_EQ(rollup->At(0, 3).AsInt(),
            static_cast<int64_t>(wire.peak_bytes));

  server.Stop();

  // Surface 4: the Chrome export renders a lock_wait slice and pins the
  // exact byte counts on the request's args.
  obs::internal::HttpResponse chrome =
      obs::internal::HandlePath("/tracez", "format=chrome");
  ASSERT_EQ(chrome.status, 200);
  EXPECT_NE(chrome.body.find("\"lock_wait\""), std::string::npos);
  EXPECT_NE(chrome.body.find("\"alloc_bytes\":" +
                             std::to_string(wire.alloc_bytes)),
            std::string::npos);
  EXPECT_NE(chrome.body.find("\"peak_bytes\":" +
                             std::to_string(wire.peak_bytes)),
            std::string::npos);

  // Surface 5: the slow-query log line carries the same three figures
  // (the exact lock_wait_ns value identifies the aggregate's record).
  const std::string log = capture.str();
  EXPECT_NE(log.find("\"event\":\"slow_query\""), std::string::npos);
  EXPECT_NE(
      log.find("\"lock_wait_ns\":" + std::to_string(wire.lock_wait_nanos)),
      std::string::npos)
      << log;
  EXPECT_NE(log.find("\"alloc_bytes\":" + std::to_string(wire.alloc_bytes)),
            std::string::npos)
      << log;
  EXPECT_NE(log.find("\"peak_bytes\":" + std::to_string(wire.peak_bytes)),
            std::string::npos)
      << log;
}

TEST(ServeE2eTest, StatRequestsViewQueryableOverTheWire) {
  obs::RequestTraceRing::Global().Clear();
  obs::ScopedTraceSample sample(1);

  auto session = AdminSession();
  ASSERT_TRUE(session->LoadDataSet(CleanSmallData()).ok());

  QueryServer server(session.get());
  ASSERT_TRUE(server.Start().ok());

  QueryClient client;
  ASSERT_TRUE(client.Connect(server.Port()).ok());
  client.SetTracing(true);
  ASSERT_TRUE(client.Login("admin", "secret", "admin").ok());
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(client.Ping().ok());

  // The rollup of the ring is an ordinary catalog table: aggregate it
  // over the very protocol it measures.
  Result<rel::Table> pings = client.Sql(
      "SELECT op, status, user, count FROM gea_stat_requests "
      "WHERE op = 'ping'");
  ASSERT_TRUE(pings.ok()) << pings.status().ToString();
  ASSERT_EQ(pings->NumRows(), 1u);
  EXPECT_EQ(pings->At(0, 1).AsString(), "OK");
  EXPECT_EQ(pings->At(0, 2).AsString(), "admin");
  EXPECT_GE(pings->At(0, 3).AsInt(), 3);

  server.Stop();
}

}  // namespace
}  // namespace gea::serve
