// Tests for Allen's interval algebra — the range arithmetic of Section
// 4.4.1 and Table 4.1.

#include <gtest/gtest.h>

#include "interval/interval.h"

namespace gea::interval {
namespace {

TEST(IntervalTest, MakeValidates) {
  EXPECT_TRUE(Interval::Make(1, 2).ok());
  EXPECT_TRUE(Interval::Make(2, 2).ok());
  EXPECT_FALSE(Interval::Make(3, 2).ok());
}

TEST(IntervalTest, WidthAndContains) {
  Interval i{10, 30};
  EXPECT_DOUBLE_EQ(i.Width(), 20.0);
  EXPECT_TRUE(i.Contains(10));
  EXPECT_TRUE(i.Contains(30));
  EXPECT_FALSE(i.Contains(31));
}

TEST(IntervalTest, ToString) {
  EXPECT_EQ((Interval{5, 700}).ToString(), "[5, 700]");
}

// ---- Table 4.1: each of the thirteen basic relations on a canonical
// witness pair ----

struct RelationCase {
  AllenRelation relation;
  Interval a;
  Interval b;
};

class AllenTableTest : public testing::TestWithParam<RelationCase> {};

TEST_P(AllenTableTest, WitnessPairYieldsExactlyThisRelation) {
  const RelationCase& c = GetParam();
  EXPECT_EQ(Relate(c.a, c.b), c.relation)
      << c.a.ToString() << " vs " << c.b.ToString();
  EXPECT_TRUE(Holds(c.relation, c.a, c.b));
  // The inverse relation holds with the arguments swapped.
  EXPECT_EQ(Relate(c.b, c.a), Inverse(c.relation));
}

INSTANTIATE_TEST_SUITE_P(
    Table41, AllenTableTest,
    testing::Values(
        RelationCase{AllenRelation::kBefore, {0, 1}, {2, 3}},
        RelationCase{AllenRelation::kAfter, {2, 3}, {0, 1}},
        RelationCase{AllenRelation::kMeets, {0, 1}, {1, 3}},
        RelationCase{AllenRelation::kMetBy, {1, 3}, {0, 1}},
        RelationCase{AllenRelation::kOverlaps, {0, 2}, {1, 3}},
        RelationCase{AllenRelation::kOverlappedBy, {1, 3}, {0, 2}},
        RelationCase{AllenRelation::kDuring, {1, 2}, {0, 3}},
        RelationCase{AllenRelation::kIncludes, {0, 3}, {1, 2}},
        RelationCase{AllenRelation::kStarts, {0, 1}, {0, 3}},
        RelationCase{AllenRelation::kStartedBy, {0, 3}, {0, 1}},
        RelationCase{AllenRelation::kFinishes, {2, 3}, {0, 3}},
        RelationCase{AllenRelation::kFinishedBy, {0, 3}, {2, 3}},
        RelationCase{AllenRelation::kEquals, {1, 2}, {1, 2}}));

// ---- Property sweep: exactly one basic relation holds for every ordered
// pair drawn from a grid of intervals ----

std::vector<Interval> Grid() {
  std::vector<Interval> out;
  for (int lo = 0; lo <= 4; ++lo) {
    for (int hi = lo; hi <= 4; ++hi) {
      out.push_back({static_cast<double>(lo), static_cast<double>(hi)});
    }
  }
  return out;
}

class AllenExclusivityTest : public testing::TestWithParam<int> {};

TEST_P(AllenExclusivityTest, ExactlyOneRelationHolds) {
  std::vector<Interval> grid = Grid();
  const Interval& a = grid[static_cast<size_t>(GetParam())];
  for (const Interval& b : grid) {
    int holds = 0;
    for (AllenRelation r : AllAllenRelations()) {
      if (Holds(r, a, b)) ++holds;
    }
    EXPECT_EQ(holds, 1) << a.ToString() << " vs " << b.ToString();
  }
}

TEST_P(AllenExclusivityTest, InverseIsInvolutionAndConsistent) {
  std::vector<Interval> grid = Grid();
  const Interval& a = grid[static_cast<size_t>(GetParam())];
  for (const Interval& b : grid) {
    AllenRelation r = Relate(a, b);
    EXPECT_EQ(Inverse(Inverse(r)), r);
    EXPECT_EQ(Relate(b, a), Inverse(r));
  }
}

TEST_P(AllenExclusivityTest, IntersectsAgreesWithRelation) {
  std::vector<Interval> grid = Grid();
  const Interval& a = grid[static_cast<size_t>(GetParam())];
  for (const Interval& b : grid) {
    AllenRelation r = Relate(a, b);
    bool disjoint =
        r == AllenRelation::kBefore || r == AllenRelation::kAfter;
    EXPECT_EQ(Intersects(a, b), !disjoint);
    EXPECT_EQ(Intersection(a, b).has_value(), !disjoint);
  }
}

INSTANTIATE_TEST_SUITE_P(GridSweep, AllenExclusivityTest,
                         testing::Range(0, 15));

// ---- Names, symbols, parsing ----

TEST(AllenNamesTest, RoundTripThroughParse) {
  for (AllenRelation r : AllAllenRelations()) {
    Result<AllenRelation> by_name = ParseAllenRelation(AllenRelationName(r));
    ASSERT_TRUE(by_name.ok());
    EXPECT_EQ(*by_name, r);
    Result<AllenRelation> by_symbol =
        ParseAllenRelation(AllenRelationSymbol(r));
    ASSERT_TRUE(by_symbol.ok());
    EXPECT_EQ(*by_symbol, r);
  }
  EXPECT_FALSE(ParseAllenRelation("sideways").ok());
}

TEST(AllenNamesTest, SymbolsMatchTable41) {
  EXPECT_STREQ(AllenRelationSymbol(AllenRelation::kBefore), "b");
  EXPECT_STREQ(AllenRelationSymbol(AllenRelation::kMeets), "m");
  EXPECT_STREQ(AllenRelationSymbol(AllenRelation::kOverlaps), "o");
  EXPECT_STREQ(AllenRelationSymbol(AllenRelation::kDuring), "d");
  EXPECT_STREQ(AllenRelationSymbol(AllenRelation::kStarts), "s");
  EXPECT_STREQ(AllenRelationSymbol(AllenRelation::kFinishes), "f");
  EXPECT_STREQ(AllenRelationSymbol(AllenRelation::kEquals), "e");
  EXPECT_STREQ(AllenRelationSymbol(AllenRelation::kOverlappedBy), "oi");
}

// ---- Composition (Allen's algebra proper) ----

TEST(CompositionTest, KnownEntries) {
  using R = AllenRelation;
  // before . before = {before}
  EXPECT_EQ(Compose(R::kBefore, R::kBefore),
            (std::vector<R>{R::kBefore}));
  // meets . meets = {before}
  EXPECT_EQ(Compose(R::kMeets, R::kMeets), (std::vector<R>{R::kBefore}));
  // during . during = {during}
  EXPECT_EQ(Compose(R::kDuring, R::kDuring), (std::vector<R>{R::kDuring}));
  // starts . during = {during}
  EXPECT_EQ(Compose(R::kStarts, R::kDuring), (std::vector<R>{R::kDuring}));
  // before . after = all thirteen (totally unconstrained)
  EXPECT_EQ(Compose(R::kBefore, R::kAfter).size(),
            static_cast<size_t>(kNumAllenRelations));
  // overlaps . overlaps = {before, meets, overlaps}
  EXPECT_EQ(Compose(R::kOverlaps, R::kOverlaps),
            (std::vector<R>{R::kBefore, R::kMeets, R::kOverlaps}));
}

TEST(CompositionTest, EqualsIsIdentity) {
  for (AllenRelation r : AllAllenRelations()) {
    EXPECT_EQ(Compose(AllenRelation::kEquals, r), (std::vector<AllenRelation>{r}));
    EXPECT_EQ(Compose(r, AllenRelation::kEquals), (std::vector<AllenRelation>{r}));
  }
}

TEST(CompositionTest, InversionSymmetry) {
  // Compose(r1, r2) inverted element-wise equals Compose(inv r2, inv r1).
  for (AllenRelation r1 : AllAllenRelations()) {
    for (AllenRelation r2 : AllAllenRelations()) {
      std::vector<AllenRelation> lhs;
      for (AllenRelation r : Compose(r1, r2)) lhs.push_back(Inverse(r));
      std::sort(lhs.begin(), lhs.end());
      std::vector<AllenRelation> rhs = Compose(Inverse(r2), Inverse(r1));
      std::sort(rhs.begin(), rhs.end());
      EXPECT_EQ(lhs, rhs) << AllenRelationName(r1) << " . "
                          << AllenRelationName(r2);
    }
  }
}

// Path-consistency property: for any proper intervals a, b, c the actual
// relation between a and c is admitted by the composition of (a,b) and
// (b,c).
class CompositionPathTest : public testing::TestWithParam<int> {};

TEST_P(CompositionPathTest, ActualRelationIsAlwaysAdmitted) {
  std::vector<Interval> grid;
  for (int lo = 0; lo <= 5; ++lo) {
    for (int hi = lo + 1; hi <= 6; ++hi) {
      grid.push_back({static_cast<double>(lo), static_cast<double>(hi)});
    }
  }
  const Interval& b = grid[static_cast<size_t>(GetParam())];
  for (const Interval& a : grid) {
    for (const Interval& c : grid) {
      EXPECT_TRUE(CompositionAdmits(Relate(a, b), Relate(b, c),
                                    Relate(a, c)))
          << a.ToString() << " " << b.ToString() << " " << c.ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(GridPivots, CompositionPathTest,
                         testing::Range(0, 21));

TEST(IntersectionTest, ComputesOverlapRange) {
  std::optional<Interval> i = Intersection({0, 10}, {5, 20});
  ASSERT_TRUE(i.has_value());
  EXPECT_DOUBLE_EQ(i->lo, 5);
  EXPECT_DOUBLE_EQ(i->hi, 10);
  EXPECT_FALSE(Intersection({0, 1}, {2, 3}).has_value());
  // Touching intervals intersect in a point.
  std::optional<Interval> point = Intersection({0, 2}, {2, 5});
  ASSERT_TRUE(point.has_value());
  EXPECT_DOUBLE_EQ(point->lo, 2);
  EXPECT_DOUBLE_EQ(point->hi, 2);
}

}  // namespace
}  // namespace gea::interval
