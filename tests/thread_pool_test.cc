// Tests for the shared thread pool and ParallelFor, the substrate of the
// parallel operator engine (DESIGN.md, "Parallel execution model").

#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

namespace gea {
namespace {

// These tests pin down ParallelFor's cross-thread semantics; run with
// real pool helpers even on single-core hosts.
ForceParallelHelpersScope g_force_helpers;

TEST(ThreadPoolTest, StartupRunsTasksAndShutdownJoins) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(4);
    EXPECT_EQ(pool.NumThreads(), 4u);
    for (int i = 0; i < 100; ++i) {
      pool.Submit([&ran] { ran.fetch_add(1); });
    }
    // Destructor drains the queue before joining.
  }
  EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPoolTest, ZeroWorkerPoolRunsInline) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.NumThreads(), 0u);
  std::thread::id runner;
  pool.Submit([&runner] { runner = std::this_thread::get_id(); });
  EXPECT_EQ(runner, std::this_thread::get_id());
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  ThreadCountOverride threads(4);
  const size_t n = 10000;
  std::vector<std::atomic<int>> hits(n);
  ParallelFor(0, n, 16, [&](size_t begin, size_t end) {
    ASSERT_LE(begin, end);
    for (size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (size_t i = 0; i < n; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelForTest, EmptyAndReversedRangesAreNoOps) {
  ThreadCountOverride threads(4);
  int calls = 0;
  ParallelFor(5, 5, 1, [&](size_t, size_t) { ++calls; });
  ParallelFor(7, 3, 1, [&](size_t, size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ParallelForTest, PropagatesExceptionsFromWorkerTasks) {
  ThreadCountOverride threads(4);
  EXPECT_THROW(
      ParallelFor(0, 1000, 1,
                  [](size_t begin, size_t) {
                    if (begin >= 250) throw std::runtime_error("chunk failed");
                  }),
      std::runtime_error);

  // The first failing chunk (in chunk order) wins, so the message is
  // deterministic even when several chunks throw.
  try {
    ParallelFor(0, 1000, 1, [](size_t begin, size_t) {
      throw std::runtime_error("chunk@" + std::to_string(begin));
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "chunk@0");
  }
}

TEST(ParallelForTest, PoolSurvivesAThrowingRegion) {
  ThreadCountOverride threads(4);
  EXPECT_THROW(ParallelFor(0, 100, 1,
                           [](size_t, size_t) {
                             throw std::runtime_error("boom");
                           }),
               std::runtime_error);
  // The pool must still execute later regions normally.
  std::atomic<size_t> covered{0};
  ParallelFor(0, 100, 1, [&](size_t begin, size_t end) {
    covered.fetch_add(end - begin);
  });
  EXPECT_EQ(covered.load(), 100u);
}

TEST(ParallelForTest, NestedCallsRunInlineWithoutDeadlock) {
  ThreadCountOverride threads(4);
  const size_t outer = 64;
  const size_t inner = 64;
  std::vector<std::atomic<int>> hits(outer * inner);
  ParallelFor(0, outer, 1, [&](size_t obegin, size_t oend) {
    for (size_t o = obegin; o < oend; ++o) {
      // Nested region: must degrade to inline execution on this worker.
      ParallelFor(0, inner, 1, [&](size_t ibegin, size_t iend) {
        for (size_t i = ibegin; i < iend; ++i) {
          hits[o * inner + i].fetch_add(1);
        }
      });
    }
  });
  for (size_t i = 0; i < hits.size(); ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "slot " << i;
  }
}

TEST(ParallelForTest, SerialOverrideStaysOnCallingThread) {
  ThreadCountOverride serial(1);
  std::set<std::thread::id> seen;
  ParallelFor(0, 1000, 1, [&](size_t begin, size_t end) {
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, 1000u);
    seen.insert(std::this_thread::get_id());
  });
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(*seen.begin(), std::this_thread::get_id());
}

TEST(ParallelForTest, SmallRangesRunInlineEvenWhenParallel) {
  ThreadCountOverride threads(8);
  // 100 items at min_grain 256 -> a single chunk -> inline.
  std::set<std::thread::id> seen;
  ParallelFor(0, 100, 256, [&](size_t, size_t) {
    seen.insert(std::this_thread::get_id());
  });
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(*seen.begin(), std::this_thread::get_id());
}

TEST(ParallelForTest, ChunksRespectMinGrain) {
  ThreadCountOverride threads(8);
  std::mutex mu;
  std::vector<std::pair<size_t, size_t>> chunks;
  const size_t n = 1000;
  const size_t grain = 300;
  ParallelFor(0, n, grain, [&](size_t begin, size_t end) {
    std::lock_guard<std::mutex> lock(mu);
    chunks.emplace_back(begin, end);
  });
  size_t total = 0;
  for (const auto& [begin, end] : chunks) {
    EXPECT_GE(end - begin, grain);
    total += end - begin;
  }
  EXPECT_EQ(total, n);
}

TEST(ThreadConfigTest, ParseThreadCount) {
  EXPECT_EQ(ParseThreadCount(nullptr), std::nullopt);
  EXPECT_EQ(ParseThreadCount(""), std::nullopt);
  EXPECT_EQ(ParseThreadCount("0"), std::nullopt);     // hardware default
  EXPECT_EQ(ParseThreadCount("-3"), std::nullopt);
  EXPECT_EQ(ParseThreadCount("abc"), std::nullopt);
  EXPECT_EQ(ParseThreadCount("4x"), std::nullopt);
  EXPECT_EQ(ParseThreadCount("1"), std::optional<size_t>(1));
  EXPECT_EQ(ParseThreadCount("serial"), std::optional<size_t>(1));
  EXPECT_EQ(ParseThreadCount("16"), std::optional<size_t>(16));
  EXPECT_EQ(ParseThreadCount("99999"), std::optional<size_t>(kMaxThreads));
}

TEST(ThreadConfigTest, OverrideWinsAndRestores) {
  const size_t ambient = ConfiguredThreads();
  EXPECT_GE(ambient, 1u);
  {
    ThreadCountOverride guard(7);
    EXPECT_EQ(ConfiguredThreads(), 7u);
    {
      ThreadCountOverride inner(2);
      EXPECT_EQ(ConfiguredThreads(), 2u);
    }
    EXPECT_EQ(ConfiguredThreads(), 7u);
  }
  EXPECT_EQ(ConfiguredThreads(), ambient);
}

TEST(ThreadConfigTest, OverrideOfZeroMeansSerial) {
  ThreadCountOverride guard(0);
  EXPECT_EQ(ConfiguredThreads(), 1u);
}

TEST(ThreadConfigTest, SharedPoolGrowsToConfiguredCount) {
  ThreadCountOverride guard(6);
  ThreadPool& pool = SharedThreadPool();
  EXPECT_GE(pool.NumThreads(), 6u);
}

}  // namespace
}  // namespace gea
