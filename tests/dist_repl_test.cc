// Tests for the replication half of src/dist: the frame/snapshot blob
// codecs, tag partitioning, the primary-side ReplicationHub wire surface
// (long-poll, snapshot-floor redirection, admin gating) and the full
// primary -> replica pipeline — streaming, cold-start snapshot catch-up,
// read-your-writes via WaitForLsn, replica write rejection, promotion,
// and the gea_stat_replication view.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>

#include "dist/partition.h"
#include "dist/repl.h"
#include "dist/replica.h"
#include "store/engine.h"
#include "store/fault_env.h"
#include "sage/cleaning.h"
#include "sage/generator.h"
#include "sage/io.h"
#include "serve/client.h"
#include "serve/server.h"
#include "store/format.h"
#include "store/wal.h"
#include "workbench/session.h"

namespace gea::dist {
namespace {

using serve::QueryClient;
using serve::QueryServer;
using serve::Response;
using workbench::AccessLevel;
using workbench::AnalysisSession;

std::string FreshDir(const std::string& tag) {
  std::string dir = testing::TempDir() + "/gea_dist_repl_" + tag;
  std::filesystem::remove_all(dir);
  return dir;
}

/// The generator output, round-tripped once through the library text
/// codec so the dataset is a fixed point of it — the WAL ships datasets
/// in that format, and byte-identical assertions need replayed state to
/// see exactly the same doubles (the recovery_test idiom).
const sage::SageDataSet& TestDataSet() {
  static const sage::SageDataSet* dataset = [] {
    sage::GeneratorConfig config;
    config.seed = 42;
    config.panels = sage::SyntheticSageGenerator::SmallPanels();
    sage::SyntheticSage synth = sage::SyntheticSageGenerator(config).Generate();
    sage::CleanAndNormalize(synth.dataset);
    auto* fixed = new sage::SageDataSet();
    for (size_t i = 0; i < synth.dataset.NumLibraries(); ++i) {
      const sage::SageLibrary& lib = synth.dataset.library(i);
      Result<sage::SageLibrary> back =
          sage::ReadLibraryText(lib.name(), sage::WriteLibraryText(lib));
      EXPECT_TRUE(back.ok()) << back.status().ToString();
      fixed->AddLibrary(std::move(*back));
    }
    return fixed;
  }();
  return *dataset;
}

std::unique_ptr<AnalysisSession> AdminSession() {
  auto session = std::make_unique<AnalysisSession>("admin", "secret");
  EXPECT_TRUE(
      session->Login("admin", "secret", AccessLevel::kAdministrator).ok());
  return session;
}

// ---------- partitioning ----------

TEST(PartitionTest, SplitMix64IsPinnedForever) {
  // Shard placement is contractual: these are the canonical splitmix64
  // outputs for states 0 and 1. If this test breaks, the hash changed and
  // every sharded deployment's placement moved.
  EXPECT_EQ(SplitMix64(0), 0xe220a8397b1dcdafull);
  EXPECT_EQ(SplitMix64(1) ^ SplitMix64(1), 0ull);  // deterministic
  EXPECT_NE(SplitMix64(1), SplitMix64(2));
}

TEST(PartitionTest, ShardOfTagCoversAllShardsAndIsStable) {
  constexpr size_t kShards = 4;
  std::set<size_t> seen;
  for (sage::TagId tag = 0; tag < 1000; ++tag) {
    const size_t shard = ShardOfTag(tag, kShards);
    ASSERT_LT(shard, kShards);
    EXPECT_EQ(shard, ShardOfTag(tag, kShards));  // stable
    seen.insert(shard);
  }
  EXPECT_EQ(seen.size(), kShards);  // a 1000-tag universe hits every shard
  EXPECT_EQ(ShardOfTag(12345, 1), 0u);
}

TEST(PartitionTest, SlicesAreADisjointCoverWithEveryLibraryPresent) {
  const sage::SageDataSet& full = TestDataSet();
  constexpr size_t kShards = 3;

  // tag -> count per library, reassembled from the slices.
  std::map<std::pair<std::string, sage::TagId>, double> reassembled;
  for (size_t shard = 0; shard < kShards; ++shard) {
    sage::SageDataSet slice = PartitionDataSet(full, shard, kShards);
    ASSERT_EQ(slice.NumLibraries(), full.NumLibraries());
    for (size_t i = 0; i < slice.NumLibraries(); ++i) {
      const sage::SageLibrary& lib = slice.library(i);
      EXPECT_EQ(lib.name(), full.library(i).name());
      EXPECT_EQ(lib.id(), full.library(i).id());
      for (const sage::SageLibrary::Entry& entry : lib.entries()) {
        EXPECT_EQ(ShardOfTag(entry.tag, kShards), shard);
        auto [it, inserted] =
            reassembled.emplace(std::make_pair(lib.name(), entry.tag),
                                entry.count);
        EXPECT_TRUE(inserted) << "tag owned by two shards: " << entry.tag;
        (void)it;
      }
    }
  }
  size_t full_entries = 0;
  for (size_t i = 0; i < full.NumLibraries(); ++i) {
    const sage::SageLibrary& lib = full.library(i);
    full_entries += lib.entries().size();
    for (const sage::SageLibrary::Entry& entry : lib.entries()) {
      auto it = reassembled.find(std::make_pair(lib.name(), entry.tag));
      ASSERT_NE(it, reassembled.end());
      EXPECT_EQ(it->second, entry.count);
    }
  }
  EXPECT_EQ(reassembled.size(), full_entries);
}

// ---------- blob codecs ----------

TEST(ReplCodecTest, FrameBatchRoundTrips) {
  FrameBatch batch;
  batch.durable_lsn = 42;
  batch.frames.push_back(
      {7, store::WalRecord::LogicalOp("aggregate",
                                      {{"enum", "brain"}, {"out", "s"}})});
  batch.frames.push_back(
      {8, store::WalRecord::BlobRecord("load_dataset",
                                       std::string("bin\0ary", 7))});

  Result<FrameBatch> decoded = DecodeFrameBatch(EncodeFrameBatch(batch));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->durable_lsn, 42u);
  ASSERT_EQ(decoded->frames.size(), 2u);
  EXPECT_EQ(decoded->frames[0].lsn, 7u);
  EXPECT_EQ(decoded->frames[0].record.op, "aggregate");
  EXPECT_EQ(decoded->frames[0].record.params.at("out"), "s");
  EXPECT_EQ(decoded->frames[1].lsn, 8u);
  EXPECT_EQ(decoded->frames[1].record.payload, std::string("bin\0ary", 7));
}

TEST(ReplCodecTest, CorruptFrameBatchIsRejectedByTheCrc) {
  FrameBatch batch;
  batch.durable_lsn = 1;
  batch.frames.push_back(
      {1, store::WalRecord::LogicalOp("diff", {{"gap", "g"}})});
  std::string blob = EncodeFrameBatch(batch);
  blob[blob.size() / 2] ^= 0x40;  // flip a bit inside the framed record
  EXPECT_FALSE(DecodeFrameBatch(blob).ok());
  EXPECT_FALSE(DecodeFrameBatch(blob + "x").ok());  // trailing bytes too
}

TEST(ReplCodecTest, SnapshotLsnBlobRoundTrips) {
  const std::string snapshot = std::string("snap\0shot", 9);
  Result<std::pair<uint64_t, std::string>> decoded =
      DecodeSnapshotLsnBlob(EncodeSnapshotLsnBlob(99, snapshot));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->first, 99u);
  EXPECT_EQ(decoded->second, snapshot);
  EXPECT_FALSE(
      DecodeSnapshotLsnBlob(EncodeSnapshotLsnBlob(99, snapshot) + "y").ok());
}

// A commit batch killed between the WAL write and its fsync must be
// invisible everywhere: the writer is not acked, the hub ships no frame,
// and recovery replays exactly the previously acked prefix. This is the
// group-commit edition of the "replication never outruns durability"
// contract.
TEST(ReplicationHubTest, TornCommitBatchShipsNoFrames) {
  const std::string dir = FreshDir("torn_batch");
  store::FaultInjectionEnv env(store::FileEnv::Default());
  auto session = AdminSession();
  ASSERT_TRUE(session->OpenStorage(dir, store::StorageOptions{}, &env).ok());
  ASSERT_TRUE(session->LoadDataSet(TestDataSet()).ok());
  ASSERT_TRUE(session->CreateTissueDataSet(sage::TissueType::kBrain).ok());
  const uint64_t pre_lsn = session->DurableLsn();
  ASSERT_GT(pre_lsn, 0u);

  {
    QueryServer server(session.get());
    ReplicationHub hub(session.get(), &server);

    // A clean mutation commits and ships.
    ASSERT_TRUE(session->Aggregate("brain", "CleanSumy").ok());
    EXPECT_EQ(hub.ShippedLsn(), pre_lsn + 1);

    // Kill the batch's shared fsync. ArmFault zeroes the point counter,
    // so the single append is point 0 and the sync (point 1) takes the
    // machine down: the record reaches the page cache, not the platter.
    env.ArmFault(1, store::FaultInjectionEnv::FaultKind::kKill);
    Status torn = session->Aggregate("brain", "TornSumy");
    EXPECT_FALSE(torn.ok());                   // the waiter was never acked
    EXPECT_EQ(hub.ShippedLsn(), pre_lsn + 1);  // no frame left the hub
    EXPECT_EQ(session->DurableLsn(), pre_lsn + 1);
  }  // the hub detaches its observer while the session is still alive

  // Reboot: recovery sees exactly the acked prefix.
  session.reset();
  auto recovered = AdminSession();
  ASSERT_TRUE(recovered->OpenStorage(dir).ok());
  EXPECT_TRUE(recovered->GetSumy("CleanSumy").ok());
  EXPECT_TRUE(recovered->GetSumy("TornSumy").status().IsNotFound());
  EXPECT_EQ(recovered->DurableLsn(), pre_lsn + 1);
}

// ---------- the hub's wire surface ----------

TEST(ReplicationHubTest, WireSurfaceFloorsAndLongPolls) {
  const std::string dir = FreshDir("hub");
  auto session = AdminSession();
  ASSERT_TRUE(session->OpenStorage(dir).ok());
  ASSERT_TRUE(session->LoadDataSet(TestDataSet()).ok());
  ASSERT_TRUE(session->CreateTissueDataSet(sage::TissueType::kBrain).ok());
  ASSERT_TRUE(
      session->AddUser("reader", "pw", AccessLevel::kUser).ok());
  const uint64_t pre_hub_lsn = session->DurableLsn();
  ASSERT_GT(pre_hub_lsn, 0u);

  QueryServer server(session.get());
  ReplicationHub hub(session.get(), &server);
  ASSERT_TRUE(server.Start().ok());

  // Pre-attach history is not shippable: the floor starts at attach LSN.
  EXPECT_EQ(hub.FloorLsn(), pre_hub_lsn);
  EXPECT_EQ(hub.ShippedLsn(), pre_hub_lsn);

  QueryClient admin;
  ASSERT_TRUE(admin.Connect(server.Port()).ok());
  ASSERT_TRUE(admin.Login("admin", "secret", "admin").ok());

  // A cold follower (lsn 0) predates the floor: snapshot required.
  Result<Response> behind = admin.Call(
      "repl_frames", {{"from_lsn", "0"}, {"wait_ms", "1"}});
  ASSERT_TRUE(behind.ok());
  EXPECT_EQ(behind->code, StatusCode::kFailedPrecondition);
  EXPECT_NE(behind->message.find("snapshot catch-up required"),
            std::string::npos);

  // The snapshot hands over the catalog stamped with its LSN.
  Result<Response> snapshot = admin.Call("repl_snapshot");
  ASSERT_TRUE(snapshot.ok());
  ASSERT_TRUE(snapshot->ok()) << snapshot->message;
  Result<std::pair<uint64_t, std::string>> blob =
      DecodeSnapshotLsnBlob(snapshot->text);
  ASSERT_TRUE(blob.ok()) << blob.status().ToString();
  EXPECT_EQ(blob->first, pre_hub_lsn);
  EXPECT_FALSE(blob->second.empty());

  // Caught-up pollers get an empty batch after the bounded wait...
  Result<Response> empty = admin.Call(
      "repl_frames",
      {{"from_lsn", std::to_string(pre_hub_lsn)}, {"wait_ms", "1"}});
  ASSERT_TRUE(empty.ok());
  ASSERT_TRUE(empty->ok()) << empty->message;
  Result<FrameBatch> empty_batch = DecodeFrameBatch(empty->text);
  ASSERT_TRUE(empty_batch.ok());
  EXPECT_TRUE(empty_batch->frames.empty());
  EXPECT_EQ(empty_batch->durable_lsn, pre_hub_lsn);

  // ...and frames once a mutation is acknowledged.
  Result<Response> agg =
      admin.Call("aggregate", {{"enum", "brain"}, {"out", "HubSumy"}});
  ASSERT_TRUE(agg.ok());
  ASSERT_TRUE(agg->ok()) << agg->message;
  Result<Response> frames = admin.Call(
      "repl_frames",
      {{"from_lsn", std::to_string(pre_hub_lsn)}, {"wait_ms", "2000"}});
  ASSERT_TRUE(frames.ok());
  ASSERT_TRUE(frames->ok()) << frames->message;
  Result<FrameBatch> batch = DecodeFrameBatch(frames->text);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  ASSERT_EQ(batch->frames.size(), 1u);
  EXPECT_EQ(batch->frames[0].lsn, pre_hub_lsn + 1);
  EXPECT_EQ(batch->frames[0].record.op, "aggregate");
  EXPECT_EQ(batch->frames[0].record.params.at("out"), "HubSumy");

  // The handshake reports the same numbers the poll semantics use.
  Result<Response> subscribe = admin.Call("repl_subscribe");
  ASSERT_TRUE(subscribe.ok());
  ASSERT_TRUE(subscribe->ok());
  ASSERT_TRUE(subscribe->table.has_value());
  std::map<std::string, std::string> handshake;
  for (size_t i = 0; i < subscribe->table->NumRows(); ++i) {
    handshake[subscribe->table->At(i, 0).AsString()] =
        subscribe->table->At(i, 1).AsString();
  }
  EXPECT_EQ(handshake.at("durable_lsn"), std::to_string(pre_hub_lsn + 1));
  EXPECT_EQ(handshake.at("floor_lsn"), std::to_string(pre_hub_lsn));

  // repl_* are admin-only.
  QueryClient reader;
  ASSERT_TRUE(reader.Connect(server.Port()).ok());
  ASSERT_TRUE(reader.Login("reader", "pw").ok());
  Result<Response> denied = reader.Call(
      "repl_frames", {{"from_lsn", "0"}, {"wait_ms", "1"}});
  ASSERT_TRUE(denied.ok());
  EXPECT_EQ(denied->code, StatusCode::kPermissionDenied);

  server.Stop();
}

// ---------- the full primary -> replica pipeline ----------

TEST(ReplicaServerTest, ColdStartCatchUpStreamingPromotion) {
  const std::string dir = FreshDir("pipeline");
  auto primary_session = AdminSession();
  ASSERT_TRUE(primary_session->OpenStorage(dir).ok());
  ASSERT_TRUE(primary_session->LoadDataSet(TestDataSet()).ok());
  ASSERT_TRUE(
      primary_session->CreateTissueDataSet(sage::TissueType::kBrain).ok());

  QueryServer primary_server(primary_session.get());
  ReplicationHub hub(primary_session.get(), &primary_server);
  ASSERT_TRUE(primary_server.Start().ok());

  ReplicaServer::Options replica_options;
  replica_options.primary_port = primary_server.Port();
  replica_options.primary_user = "admin";
  replica_options.primary_password = "secret";
  replica_options.poll_wait_ms = 100;
  ReplicaServer replica(replica_options);
  ASSERT_TRUE(replica.Start().ok());

  QueryClient replica_client;
  ASSERT_TRUE(replica_client.Connect(replica.Port()).ok());
  ASSERT_TRUE(
      replica_client.Login("replicator", "replicator-secret", "admin").ok());

  // Cold start: the pre-hub history arrives via snapshot catch-up.
  ASSERT_TRUE(
      replica_client.WaitForLsn(primary_session->DurableLsn(), 10'000).ok());
  Result<std::map<std::string, std::string>> info = replica_client.RoleInfo();
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info->at("role"), "replica");
  EXPECT_GE(std::stoull(info->at("snapshots_applied")), 1u);

  // Streaming: mutations on the primary become readable on the replica
  // after WaitForLsn — read-your-writes across the pair.
  QueryClient primary_client;
  ASSERT_TRUE(primary_client.Connect(primary_server.Port()).ok());
  ASSERT_TRUE(primary_client.Login("admin", "secret", "admin").ok());
  Result<Response> agg = primary_client.Call(
      "aggregate", {{"enum", "brain"}, {"out", "ReplSumy"}});
  ASSERT_TRUE(agg.ok());
  ASSERT_TRUE(agg->ok()) << agg->message;
  const uint64_t after_agg = primary_session->DurableLsn();
  ASSERT_TRUE(replica_client.WaitForLsn(after_agg, 10'000).ok());

  Result<Response> replica_read =
      replica_client.Call("get_table", {{"name", "ReplSumy"}});
  ASSERT_TRUE(replica_read.ok());
  ASSERT_TRUE(replica_read->ok()) << replica_read->message;
  ASSERT_TRUE(replica_read->table.has_value());
  Result<Response> primary_read =
      primary_client.Call("get_table", {{"name", "ReplSumy"}});
  ASSERT_TRUE(primary_read.ok());
  ASSERT_TRUE(primary_read->ok());
  ASSERT_TRUE(primary_read->table.has_value());
  EXPECT_EQ(store::EncodeTable(*replica_read->table),
            store::EncodeTable(*primary_read->table));

  // WaitForLsn against the primary is a type error, not a hang: the
  // primary's role info has no applied_lsn.
  EXPECT_EQ(primary_client.WaitForLsn(1, 100).code(),
            StatusCode::kFailedPrecondition);

  // Writes bounce off the replica with FailedPrecondition.
  Result<Response> rejected = replica_client.Call(
      "aggregate", {{"enum", "brain"}, {"out", "Nope"}});
  ASSERT_TRUE(rejected.ok());
  EXPECT_EQ(rejected->code, StatusCode::kFailedPrecondition);
  EXPECT_NE(rejected->message.find("read-only replica"), std::string::npos);

  // Both ends surface in the stat view (it is process-global here, so
  // either server's SQL sees the two rows).
  Result<rel::Table> stats = primary_client.Sql(
      "SELECT role, applied_lsn, lag_records FROM gea_stat_replication");
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  std::set<std::string> roles;
  for (size_t i = 0; i < stats->NumRows(); ++i) {
    roles.insert(stats->At(i, 0).AsString());
  }
  EXPECT_TRUE(roles.count("primary")) << stats->NumRows();
  EXPECT_TRUE(roles.count("replica")) << stats->NumRows();

  // Promotion over the wire: the role flips and writes start landing.
  Result<Response> promoted = replica_client.Call("promote");
  ASSERT_TRUE(promoted.ok());
  ASSERT_TRUE(promoted->ok()) << promoted->message;
  EXPECT_EQ(promoted->text, "promoted");
  EXPECT_TRUE(replica.Promoted());
  Result<std::map<std::string, std::string>> promoted_info =
      replica_client.RoleInfo();
  ASSERT_TRUE(promoted_info.ok());
  EXPECT_EQ(promoted_info->at("role"), "primary");
  Result<Response> write = replica_client.Call(
      "aggregate", {{"enum", "brain"}, {"out", "PostPromote"}});
  ASSERT_TRUE(write.ok());
  EXPECT_TRUE(write->ok()) << write->message;
  EXPECT_TRUE(replica.session().GetSumy("PostPromote").ok());

  replica.Stop();
  primary_server.Stop();
}

}  // namespace
}  // namespace gea::dist
