// Tests for store::WalReader, the incremental tail-follower WAL shipping
// is built on: records stream exactly once in append order, a torn final
// frame is re-examined until the writer completes it, and a final Poll
// agrees byte-for-byte with the one-shot ReadWalFile scan on the same
// file — the (valid, dropped) parity the class comment promises.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "store/file_env.h"
#include "store/wal.h"

namespace gea::store {
namespace {

std::string FreshPath(const std::string& tag) {
  std::string path = testing::TempDir() + "/gea_wal_reader_" + tag + ".wal";
  (void)FileEnv::Default()->RemoveFile(path);
  return path;
}

WalRecord MakeRecord(int i) {
  return WalRecord::LogicalOp(
      "aggregate", {{"enum", "brain"}, {"out", "S_" + std::to_string(i)}});
}

TEST(WalReaderTest, StreamsRecordsExactlyOnceInOrder) {
  const std::string path = FreshPath("stream");
  FileEnv* env = FileEnv::Default();
  Result<std::unique_ptr<WalWriter>> writer =
      WalWriter::Open(env, path, /*truncate=*/true, /*sync_every_record=*/true);
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();

  Result<std::unique_ptr<WalReader>> reader = WalReader::Open(env, path);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();

  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE((*writer)->Append(MakeRecord(i)).ok());
  }
  Result<WalReader::TailResult> first = (*reader)->Poll();
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  ASSERT_EQ(first->records.size(), 3u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(first->records[i].params.at("out"), "S_" + std::to_string(i));
  }
  EXPECT_FALSE(first->torn_tail);
  EXPECT_EQ(first->pending_bytes, 0u);
  EXPECT_EQ(first->valid_bytes, (*reader)->offset());

  // The next poll starts where the last one stopped: nothing repeats.
  for (int i = 3; i < 5; ++i) {
    ASSERT_TRUE((*writer)->Append(MakeRecord(i)).ok());
  }
  Result<WalReader::TailResult> second = (*reader)->Poll();
  ASSERT_TRUE(second.ok());
  ASSERT_EQ(second->records.size(), 2u);
  EXPECT_EQ(second->records[0].params.at("out"), "S_3");
  EXPECT_EQ((*reader)->records_read(), 5u);

  Result<WalReader::TailResult> drained = (*reader)->Poll();
  ASSERT_TRUE(drained.ok());
  EXPECT_TRUE(drained->records.empty());
  ASSERT_TRUE((*writer)->Close().ok());
}

TEST(WalReaderTest, MissingFileIsAnEmptyLogUntilItAppears) {
  const std::string path = FreshPath("late");
  FileEnv* env = FileEnv::Default();
  Result<std::unique_ptr<WalReader>> reader = WalReader::Open(env, path);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();

  Result<WalReader::TailResult> empty = (*reader)->Poll();
  ASSERT_TRUE(empty.ok()) << empty.status().ToString();
  EXPECT_TRUE(empty->records.empty());
  EXPECT_FALSE(empty->torn_tail);

  Result<std::unique_ptr<WalWriter>> writer =
      WalWriter::Open(env, path, /*truncate=*/true, /*sync_every_record=*/true);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->Append(MakeRecord(0)).ok());
  Result<WalReader::TailResult> found = (*reader)->Poll();
  ASSERT_TRUE(found.ok());
  ASSERT_EQ(found->records.size(), 1u);
  ASSERT_TRUE((*writer)->Close().ok());
}

// The shipping subtlety: a poll racing the writer mid-append sees a
// partial frame. It must stay pending — not be dropped — and surface as a
// completed record once the writer finishes it.
TEST(WalReaderTest, TornFinalFrameCompletesOnALaterPoll) {
  const std::string path = FreshPath("torn");
  FileEnv* env = FileEnv::Default();

  const std::string first = EncodeWalRecord(MakeRecord(0));
  const std::string second = EncodeWalRecord(MakeRecord(1));
  const size_t cut = second.size() / 2;
  {
    Result<std::unique_ptr<WritableFile>> file =
        env->NewWritableFile(path, /*truncate=*/true);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE((*file)->Append(first).ok());
    ASSERT_TRUE((*file)->Append(std::string_view(second).substr(0, cut)).ok());
    ASSERT_TRUE((*file)->Close().ok());
  }

  Result<std::unique_ptr<WalReader>> reader = WalReader::Open(env, path);
  ASSERT_TRUE(reader.ok());
  Result<WalReader::TailResult> torn = (*reader)->Poll();
  ASSERT_TRUE(torn.ok()) << torn.status().ToString();
  ASSERT_EQ(torn->records.size(), 1u);
  EXPECT_TRUE(torn->torn_tail);
  EXPECT_EQ(torn->pending_bytes, cut);
  EXPECT_EQ((*reader)->offset(), first.size());  // parked at the frame start

  // Re-polling without progress keeps the frame pending, not consumed.
  Result<WalReader::TailResult> still = (*reader)->Poll();
  ASSERT_TRUE(still.ok());
  EXPECT_TRUE(still->records.empty());
  EXPECT_TRUE(still->torn_tail);

  // The writer finishes the append: the record materializes untorn.
  {
    Result<std::unique_ptr<WritableFile>> file =
        env->NewWritableFile(path, /*truncate=*/false);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE((*file)->Append(std::string_view(second).substr(cut)).ok());
    ASSERT_TRUE((*file)->Close().ok());
  }
  Result<WalReader::TailResult> completed = (*reader)->Poll();
  ASSERT_TRUE(completed.ok());
  ASSERT_EQ(completed->records.size(), 1u);
  EXPECT_EQ(completed->records[0].params.at("out"), "S_1");
  EXPECT_FALSE(completed->torn_tail);
  EXPECT_EQ(completed->valid_bytes, first.size() + second.size());
}

// (valid, dropped) of a final Poll must match ReadWalFile on the same
// file, for a genuinely corrupt tail too (crash artifact, not a race).
TEST(WalReaderTest, FinalPollMatchesReadWalFileOnACorruptTail) {
  const std::string path = FreshPath("parity");
  FileEnv* env = FileEnv::Default();

  std::string good = EncodeWalRecord(MakeRecord(0)) +
                     EncodeWalRecord(MakeRecord(1));
  // A full-length frame whose CRC cannot check out: flip payload bytes of
  // a valid frame, leaving the header intact.
  std::string corrupt = EncodeWalRecord(MakeRecord(2));
  for (size_t i = 8; i < corrupt.size(); ++i) corrupt[i] ^= 0x5a;
  {
    Result<std::unique_ptr<WritableFile>> file =
        env->NewWritableFile(path, /*truncate=*/true);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE((*file)->Append(good + corrupt).ok());
    ASSERT_TRUE((*file)->Close().ok());
  }

  Result<std::unique_ptr<WalReader>> reader = WalReader::Open(env, path);
  ASSERT_TRUE(reader.ok());
  Result<WalReader::TailResult> tail = (*reader)->Poll();
  ASSERT_TRUE(tail.ok()) << tail.status().ToString();

  Result<WalReadResult> scan = ReadWalFile(env, path);
  ASSERT_TRUE(scan.ok()) << scan.status().ToString();
  EXPECT_EQ(tail->records.size(), scan->records.size());
  EXPECT_EQ(tail->valid_bytes, scan->valid_bytes);
  EXPECT_EQ(tail->pending_bytes, scan->dropped_bytes);
  EXPECT_EQ(tail->torn_tail, scan->torn_tail);
  EXPECT_EQ(tail->valid_bytes, good.size());
  EXPECT_EQ(tail->pending_bytes, corrupt.size());
}

TEST(WalReaderTest, TruncationAndRemovalUnderTheReaderFail) {
  const std::string path = FreshPath("shrink");
  FileEnv* env = FileEnv::Default();
  {
    Result<std::unique_ptr<WalWriter>> writer = WalWriter::Open(
        env, path, /*truncate=*/true, /*sync_every_record=*/true);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)->Append(MakeRecord(0)).ok());
    ASSERT_TRUE((*writer)->Append(MakeRecord(1)).ok());
    ASSERT_TRUE((*writer)->Close().ok());
  }
  Result<std::unique_ptr<WalReader>> reader = WalReader::Open(env, path);
  ASSERT_TRUE(reader.ok());
  ASSERT_TRUE((*reader)->Poll().ok());

  // Rotation past the reader's position: the consumed prefix no longer
  // maps onto the file, so tailing must stop rather than mis-resume.
  {
    Result<std::unique_ptr<WritableFile>> file =
        env->NewWritableFile(path, /*truncate=*/true);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE((*file)->Append(EncodeWalRecord(MakeRecord(9))).ok());
    ASSERT_TRUE((*file)->Close().ok());
  }
  Result<WalReader::TailResult> shrunk = (*reader)->Poll();
  ASSERT_FALSE(shrunk.ok());
  EXPECT_EQ(shrunk.status().code(), StatusCode::kFailedPrecondition);

  ASSERT_TRUE(env->RemoveFile(path).ok());
  Result<WalReader::TailResult> removed = (*reader)->Poll();
  ASSERT_FALSE(removed.ok());
  EXPECT_EQ(removed.status().code(), StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace gea::store
