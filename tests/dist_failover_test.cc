// Failover end-to-end: a primary serving a wire workload over
// fault-injected storage is killed mid-load, the replica that was
// streaming its acknowledged WAL frames is promoted, and the promoted
// catalog must be byte-identical to a reference session that executed
// exactly the acknowledged prefix of the workload — the replication
// analogue of recovery_test's kill-point matrix, with the network in the
// loop. Three kill points across the workload cover all three fault
// kinds (process kill, torn write, failed fsync).

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "dist/repl.h"
#include "dist/replica.h"
#include "sage/cleaning.h"
#include "sage/generator.h"
#include "sage/io.h"
#include "serve/client.h"
#include "serve/server.h"
#include "store/fault_env.h"
#include "store/file_env.h"
#include "workbench/session.h"

namespace gea::dist {
namespace {

namespace fs = std::filesystem;

using serve::QueryClient;
using serve::QueryServer;
using serve::Response;
using store::FaultInjectionEnv;
using workbench::AccessLevel;
using workbench::AnalysisSession;

std::string FreshDir(const std::string& tag) {
  std::string dir = testing::TempDir() + "/gea_dist_failover_" + tag;
  fs::remove_all(dir);
  return dir;
}

/// Fixed point of the library text codec (the recovery_test idiom): the
/// WAL and the snapshot ship datasets through the codec, so the
/// byte-identical assertion needs replicated state to see exactly the
/// doubles the reference session computes with.
const sage::SageDataSet& TestDataSet() {
  static const sage::SageDataSet* dataset = [] {
    sage::GeneratorConfig config;
    config.seed = 42;
    config.panels = sage::SyntheticSageGenerator::SmallPanels();
    sage::SyntheticSage synth = sage::SyntheticSageGenerator(config).Generate();
    sage::CleanAndNormalize(synth.dataset);
    auto* fixed = new sage::SageDataSet();
    for (size_t i = 0; i < synth.dataset.NumLibraries(); ++i) {
      const sage::SageLibrary& lib = synth.dataset.library(i);
      Result<sage::SageLibrary> back =
          sage::ReadLibraryText(lib.name(), sage::WriteLibraryText(lib));
      EXPECT_TRUE(back.ok()) << back.status().ToString();
      fixed->AddLibrary(std::move(*back));
    }
    return fixed;
  }();
  return *dataset;
}

std::unique_ptr<AnalysisSession> AdminSession() {
  auto session = std::make_unique<AnalysisSession>("admin", "secret");
  EXPECT_TRUE(
      session->Login("admin", "secret", AccessLevel::kAdministrator).ok());
  return session;
}

/// One workload step: the wire call the load driver sends, paired with
/// the in-process equivalent the reference session replays.
struct WorkloadStep {
  std::string op;
  std::map<std::string, std::string> params;
  std::function<Status(AnalysisSession&)> replay;
};

std::vector<WorkloadStep> WorkloadSteps() {
  return {
      {"tissue_dataset",
       {{"tissue", "brain"}},
       [](AnalysisSession& s) {
         return s.CreateTissueDataSet(sage::TissueType::kBrain);
       }},
      {"generate_metadata",
       {{"dataset", "brain"}, {"percent", "25"}, {"meta", "meta"}},
       [](AnalysisSession& s) {
         return s.GenerateMetadata("brain", 25.0, "meta");
       }},
      {"aggregate",
       {{"enum", "brain"}, {"out", "s1"}},
       [](AnalysisSession& s) { return s.Aggregate("brain", "s1"); }},
      {"tissue_dataset",
       {{"tissue", "breast"}},
       [](AnalysisSession& s) {
         return s.CreateTissueDataSet(sage::TissueType::kBreast);
       }},
      {"aggregate",
       {{"enum", "breast"}, {"out", "s2"}},
       [](AnalysisSession& s) { return s.Aggregate("breast", "s2"); }},
      {"diff",
       {{"sumy1", "s1"}, {"sumy2", "s2"}, {"gap", "g"}},
       [](AnalysisSession& s) { return s.CreateGap("s1", "s2", "g"); }},
      // Mid-load checkpoint: snapshot rotation fault points are in the
      // matrix too. A checkpoint never changes the logical catalog, so
      // the storage-less reference treats it as a no-op.
      {"checkpoint", {}, [](AnalysisSession&) { return Status::OK(); }},
      {"top_gap",
       {{"gap", "g"}, {"x", "5"}},
       [](AnalysisSession& s) { return s.CalculateTopGap("g", 5).status(); }},
  };
}

/// Canonical byte-level state (the recovery_test Fingerprint): every file
/// SaveDatabase emits, keyed by relative path.
std::map<std::string, std::string> Fingerprint(const AnalysisSession& session,
                                               const std::string& tag) {
  std::string dir = FreshDir("fp_" + tag);
  Status saved = session.SaveDatabase(dir);
  EXPECT_TRUE(saved.ok()) << saved.ToString();
  std::map<std::string, std::string> files;
  for (const auto& entry : fs::recursive_directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    std::ifstream in(entry.path(), std::ios::binary);
    files[fs::relative(entry.path(), dir).string()] =
        std::string(std::istreambuf_iterator<char>(in), {});
  }
  fs::remove_all(dir);
  return files;
}

struct RunResult {
  size_t acked_steps = 0;
  uint64_t fault_points = 0;
};

/// Spins up primary (+hub), optionally a replica, drives the workload
/// over the wire until a step fails, then hands the pieces back through
/// `inspect` while everything is still running.
RunResult RunPipeline(
    const std::string& tag, FaultInjectionEnv* env,
    const std::function<void(AnalysisSession& primary_session,
                             ReplicaServer& replica, size_t acked)>& inspect) {
  RunResult result;
  const std::string dir = FreshDir(tag);
  auto primary_session = AdminSession();
  EXPECT_TRUE(
      primary_session->OpenStorage(dir, store::StorageOptions{}, env).ok());
  EXPECT_TRUE(primary_session->LoadDataSet(TestDataSet()).ok());

  QueryServer primary_server(primary_session.get());
  ReplicationHub hub(primary_session.get(), &primary_server);
  EXPECT_TRUE(primary_server.Start().ok());

  ReplicaServer::Options replica_options;
  replica_options.primary_port = primary_server.Port();
  replica_options.primary_user = "admin";
  replica_options.primary_password = "secret";
  replica_options.poll_wait_ms = 50;
  replica_options.retry_ms = 10;
  ReplicaServer replica(replica_options);
  EXPECT_TRUE(replica.Start().ok());

  QueryClient client;
  EXPECT_TRUE(client.Connect(primary_server.Port()).ok());
  EXPECT_TRUE(client.Login("admin", "secret", "admin").ok());
  for (const WorkloadStep& step : WorkloadSteps()) {
    Result<Response> response = client.Call(step.op, step.params);
    if (!response.ok() || !(*response).ok()) break;
    ++result.acked_steps;
  }
  result.fault_points = env->FaultPointsSeen();

  inspect(*primary_session, replica, result.acked_steps);

  replica.Stop();
  primary_server.Stop();
  return result;
}

TEST(DistFailoverTest, PromotedReplicaIsByteIdenticalToTheAckedPrefix) {
  store::FileEnv* base = store::FileEnv::Default();

  // Probe run, no fault armed: the whole workload must ack, the replica
  // must converge, and we learn how many fault points the pipeline has.
  FaultInjectionEnv probe(base);
  uint64_t setup_points = 0;
  {
    // Count the points consumed by storage setup + dataset load so the
    // armed kills land mid-workload, not mid-bootstrap.
    FaultInjectionEnv sizing(base);
    const std::string dir = FreshDir("sizing");
    auto session = AdminSession();
    ASSERT_TRUE(
        session->OpenStorage(dir, store::StorageOptions{}, &sizing).ok());
    ASSERT_TRUE(session->LoadDataSet(TestDataSet()).ok());
    setup_points = sizing.FaultPointsSeen();
  }
  const size_t total_steps = WorkloadSteps().size();
  RunResult clean = RunPipeline(
      "probe", &probe,
      [&](AnalysisSession& primary_session, ReplicaServer& replica,
          size_t acked) {
        ASSERT_EQ(acked, total_steps);
        QueryClient replica_client;
        ASSERT_TRUE(replica_client.Connect(replica.Port()).ok());
        ASSERT_TRUE(
            replica_client.WaitForLsn(primary_session.DurableLsn(), 15'000)
                .ok());
      });
  ASSERT_EQ(clean.acked_steps, total_steps);
  ASSERT_GT(clean.fault_points, setup_points + 3);

  // Three mid-load kills spread across the workload, one per fault kind.
  const uint64_t span = clean.fault_points - setup_points;
  struct Kill {
    uint64_t point;
    FaultInjectionEnv::FaultKind kind;
    const char* name;
  };
  const Kill kills[] = {
      {setup_points + span / 4, FaultInjectionEnv::FaultKind::kKill, "kill"},
      {setup_points + span / 2, FaultInjectionEnv::FaultKind::kShortWrite,
       "torn"},
      {setup_points + (3 * span) / 4, FaultInjectionEnv::FaultKind::kFailSync,
       "failsync"},
  };

  for (const Kill& kill : kills) {
    SCOPED_TRACE(std::string(kill.name) + " at fault point " +
                 std::to_string(kill.point));
    FaultInjectionEnv env(base);
    env.ArmFault(kill.point, kill.kind);
    RunResult faulted = RunPipeline(
        std::string("fail_") + kill.name, &env,
        [&](AnalysisSession& primary_session, ReplicaServer& replica,
            size_t acked) {
          ASSERT_TRUE(env.Killed());
          ASSERT_LT(acked, total_steps);  // the kill landed mid-load

          // The replica drains every acknowledged frame: the primary's
          // durable LSN only counts fsync-acked appends.
          QueryClient replica_client;
          ASSERT_TRUE(replica_client.Connect(replica.Port()).ok());
          ASSERT_TRUE(
              replica_client.WaitForLsn(primary_session.DurableLsn(), 15'000)
                  .ok());

          // Failover: the dead primary's follower becomes the primary.
          ASSERT_TRUE(replica.Promote().ok());
          ASSERT_TRUE(replica.Promoted());

          // The promoted catalog is exactly the acknowledged prefix.
          auto reference = AdminSession();
          ASSERT_TRUE(reference->LoadDataSet(TestDataSet()).ok());
          std::vector<WorkloadStep> steps = WorkloadSteps();
          for (size_t i = 0; i < acked; ++i) {
            ASSERT_TRUE(steps[i].replay(*reference).ok()) << steps[i].op;
          }
          EXPECT_EQ(Fingerprint(replica.session(),
                                std::string("promoted_") + kill.name),
                    Fingerprint(*reference,
                                std::string("reference_") + kill.name));

          // And it takes writes (a step that only needs the base dataset,
          // which every kill point leaves intact via the snapshot, and a
          // name no workload step ever creates).
          ASSERT_TRUE(
              replica_client.Login("replicator", "replicator-secret", "admin")
                  .ok());
          Result<Response> write = replica_client.Call(
              "custom_dataset",
              {{"name", "post_promote"},
               {"libs", std::to_string(TestDataSet().library(0).id())}});
          ASSERT_TRUE(write.ok());
          EXPECT_TRUE(write->ok()) << write->message;
        });
    EXPECT_LT(faulted.acked_steps, total_steps);
  }
}

}  // namespace
}  // namespace gea::dist
