// Drives the gea_shell binary against a live QueryServer through a
// scripted stdin, the way the serving quick-start in README.md does.

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "dist/repl.h"
#include "dist/router.h"
#include "sage/cleaning.h"
#include "sage/generator.h"
#include "serve/server.h"
#include "workbench/session.h"

namespace gea::serve {
namespace {

std::string ReadFileOrEmpty(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(ServeShellTest, ScriptedSessionEndToEnd) {
  sage::GeneratorConfig config;
  config.seed = 42;
  config.panels = sage::SyntheticSageGenerator::SmallPanels();
  sage::SyntheticSage synth = sage::SyntheticSageGenerator(config).Generate();
  sage::CleanAndNormalize(synth.dataset);

  workbench::AnalysisSession session("admin", "secret");
  ASSERT_TRUE(
      session.Login("admin", "secret", workbench::AccessLevel::kAdministrator)
          .ok());
  ASSERT_TRUE(session.LoadDataSet(std::move(synth.dataset)).ok());
  ASSERT_TRUE(session.CreateTissueDataSet(sage::TissueType::kBrain).ok());

  QueryServer server(&session);
  // A hub makes the replication surface visible to the shell: \role shows
  // the role row and \lag reads the gea_stat_replication view.
  dist::ReplicationHub hub(&session, &server);
  ASSERT_TRUE(server.Start().ok());

  const std::string script_path = testing::TempDir() + "/gea_shell_script.txt";
  const std::string out_path = testing::TempDir() + "/gea_shell_out.txt";
  {
    std::ofstream script(script_path);
    script << "ping\n"
           << "sql SELECT * FROM Libraries\n"  // before login: denied
           << "login admin secret admin\n"
           << "aggregate enum=brain out=ShellSumy\n"
           << "sql SELECT COUNT(*) AS n FROM Libraries\n"
           << "tables\n"
           << "\\timing on\n"
           << "ping\n"
           << "\\stats\n"
           << "\\stats gea_stat_counters\n"
           << "\\role\n"
           << "\\lag\n"
           << "bogus_command\n"
           << "quit\n";
  }

  const std::string command = std::string(GEA_SHELL_PATH) +
                              " --port=" + std::to_string(server.Port()) +
                              " < " + script_path + " > " + out_path + " 2>&1";
  const int rc = std::system(command.c_str());
  server.Stop();
  ASSERT_EQ(rc, 0) << ReadFileOrEmpty(out_path);

  const std::string output = ReadFileOrEmpty(out_path);
  EXPECT_NE(output.find("pong"), std::string::npos) << output;
  EXPECT_NE(output.find("ERROR PermissionDenied"), std::string::npos)
      << output;
  EXPECT_NE(output.find("logged in as admin"), std::string::npos) << output;
  EXPECT_NE(output.find("created ShellSumy"), std::string::npos) << output;
  EXPECT_NE(output.find("rows)"), std::string::npos) << output;
  EXPECT_NE(output.find("ERROR InvalidArgument"), std::string::npos) << output;
  // \timing renders the v3 stage breakdown, lock-wait slot included.
  EXPECT_NE(output.find("Timing is on."), std::string::npos) << output;
  EXPECT_NE(output.find("lock-wait"), std::string::npos) << output;
  // \stats defaults to gea_stat_requests; a named view works too.
  EXPECT_NE(output.find("lock_wait_ms"), std::string::npos) << output;
  EXPECT_NE(output.find("gea_stat_counters ("), std::string::npos) << output;

  // \role prints the role table; \lag reads gea_stat_replication, where
  // the hub registered its primary row.
  EXPECT_NE(output.find("primary"), std::string::npos) << output;
  EXPECT_NE(output.find("gea_stat_replication ("), std::string::npos)
      << output;
  EXPECT_NE(output.find("shipped_lsn"), std::string::npos) << output;

  // The shell's mutation really landed in the shared session.
  EXPECT_TRUE(session.GetSumy("ShellSumy").ok());
}

// The same scripted shell against a router front end: \role shows the
// router role and \shards renders the shard topology.
TEST(ServeShellTest, ScriptedSessionAgainstARouter) {
  sage::GeneratorConfig config;
  config.seed = 42;
  config.panels = sage::SyntheticSageGenerator::SmallPanels();
  sage::SyntheticSage synth = sage::SyntheticSageGenerator(config).Generate();
  sage::CleanAndNormalize(synth.dataset);

  workbench::AnalysisSession worker_session("admin", "secret");
  ASSERT_TRUE(worker_session
                  .Login("admin", "secret",
                         workbench::AccessLevel::kAdministrator)
                  .ok());
  ASSERT_TRUE(worker_session.LoadDataSet(std::move(synth.dataset)).ok());
  QueryServer worker(&worker_session);
  ASSERT_TRUE(worker.Start().ok());

  dist::RouterServer::Options options;
  options.worker_ports = {worker.Port()};
  options.worker_user = "admin";
  options.worker_password = "secret";
  dist::RouterServer router(options);
  ASSERT_TRUE(router.Start().ok());

  const std::string script_path =
      testing::TempDir() + "/gea_shell_router_script.txt";
  const std::string out_path =
      testing::TempDir() + "/gea_shell_router_out.txt";
  {
    std::ofstream script(script_path);
    script << "login router router-secret admin\n"
           << "\\role\n"
           << "\\shards\n"
           << "tissue_dataset tissue=brain\n"
           << "aggregate enum=brain out=RoutedSumy\n"
           << "sql SELECT COUNT(*) AS n FROM Libraries\n"
           << "quit\n";
  }
  const std::string command = std::string(GEA_SHELL_PATH) +
                              " --port=" + std::to_string(router.Port()) +
                              " < " + script_path + " > " + out_path + " 2>&1";
  const int rc = std::system(command.c_str());
  router.Stop();
  worker.Stop();
  ASSERT_EQ(rc, 0) << ReadFileOrEmpty(out_path);

  const std::string output = ReadFileOrEmpty(out_path);
  EXPECT_NE(output.find("router"), std::string::npos) << output;
  EXPECT_NE(output.find("shards ("), std::string::npos) << output;
  EXPECT_NE(output.find("created RoutedSumy"), std::string::npos) << output;
  EXPECT_TRUE(worker_session.GetSumy("RoutedSumy").ok());
}

}  // namespace
}  // namespace gea::serve
