// Unit tests for the common substrate: Status/Result, strings, CSV, RNG.

#include <gtest/gtest.h>

#include "common/csv.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "common/strings.h"
#include "common/text_plot.h"

namespace gea {
namespace {

// ---------- Status ----------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoriesCarryCodeAndMessage) {
  Status s = Status::NotFound("missing table");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.message(), "missing table");
  EXPECT_EQ(s.ToString(), "NotFound: missing table");
}

TEST(StatusTest, AlreadyExistsPredicate) {
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_FALSE(Status::NotFound("x").IsAlreadyExists());
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusTest, EveryCodeHasAName) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kIoError); ++c) {
    EXPECT_STRNE(StatusCodeName(static_cast<StatusCode>(c)), "Unknown");
  }
}

Status FailsWhenNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status UsesReturnIfError(int x) {
  GEA_RETURN_IF_ERROR(FailsWhenNegative(x));
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(UsesReturnIfError(1).ok());
  EXPECT_TRUE(UsesReturnIfError(-1).IsInvalidArgument());
}

// ---------- Result ----------

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = ParsePositive(5);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 5);
  EXPECT_EQ(*r, 5);
}

TEST(ResultTest, HoldsStatus) {
  Result<int> r = ParsePositive(-5);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
  EXPECT_EQ(r.value_or(42), 42);
}

Result<int> Doubled(int x) {
  GEA_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  return v * 2;
}

TEST(ResultTest, AssignOrReturnMacro) {
  ASSERT_TRUE(Doubled(3).ok());
  EXPECT_EQ(Doubled(3).value(), 6);
  EXPECT_TRUE(Doubled(0).status().IsInvalidArgument());
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

// ---------- strings ----------

TEST(StringsTest, SplitKeepsEmptyFields) {
  EXPECT_EQ(Split("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("x", ','), (std::vector<std::string>{"x"}));
}

TEST(StringsTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"only"}, ","), "only");
}

TEST(StringsTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  hi \t\n"), "hi");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace("   "), "");
  EXPECT_EQ(StripWhitespace("no_ws"), "no_ws");
}

TEST(StringsTest, ToLowerAndStartsWith) {
  EXPECT_EQ(ToLower("BrAiN"), "brain");
  EXPECT_TRUE(StartsWith("SAGE_brain", "SAGE_"));
  EXPECT_FALSE(StartsWith("SAGE", "SAGE_"));
}

TEST(StringsTest, FormatDoubleAndPadding) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(-1.0, 1), "-1.0");
  EXPECT_EQ(PadRight("ab", 5), "ab   ");
  EXPECT_EQ(PadLeft("ab", 5), "   ab");
  EXPECT_EQ(PadRight("abcdef", 3), "abcdef");
}

// ---------- CSV ----------

TEST(CsvTest, RoundTripSimple) {
  CsvDocument doc;
  doc.header = {"a", "b"};
  doc.rows = {{"1", "2"}, {"3", "4"}};
  Result<CsvDocument> parsed = ParseCsv(WriteCsv(doc));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->header, doc.header);
  EXPECT_EQ(parsed->rows, doc.rows);
}

TEST(CsvTest, QuotedFieldsWithCommasQuotesNewlines) {
  CsvDocument doc;
  doc.header = {"name", "note"};
  doc.rows = {{"x,y", "say \"hi\""}, {"line1\nline2", "plain"}};
  Result<CsvDocument> parsed = ParseCsv(WriteCsv(doc));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->rows, doc.rows);
}

TEST(CsvTest, RejectsRaggedRows) {
  EXPECT_FALSE(ParseCsv("a,b\n1,2,3\n").ok());
}

TEST(CsvTest, RejectsUnterminatedQuote) {
  EXPECT_FALSE(ParseCsv("a\n\"oops\n").ok());
}

TEST(CsvTest, RejectsEmptyInput) { EXPECT_FALSE(ParseCsv("").ok()); }

TEST(CsvTest, ToleratesCrLfAndMissingFinalNewline) {
  Result<CsvDocument> parsed = ParseCsv("a,b\r\n1,2\r\n3,4");
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->rows.size(), 2u);
  EXPECT_EQ(parsed->rows[1], (std::vector<std::string>{"3", "4"}));
}

TEST(CsvTest, FileRoundTrip) {
  CsvDocument doc;
  doc.header = {"k", "v"};
  doc.rows = {{"alpha", "1"}};
  const std::string path = testing::TempDir() + "/gea_csv_test.csv";
  ASSERT_TRUE(WriteCsvFile(path, doc).ok());
  Result<CsvDocument> parsed = ReadCsvFile(path);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->rows, doc.rows);
}

TEST(CsvTest, ReadMissingFileFails) {
  EXPECT_TRUE(ReadCsvFile("/nonexistent/gea.csv").status().code() ==
              StatusCode::kIoError);
}

// Randomized round-trip property: documents of random fields — including
// commas, quotes, newlines and empty fields — survive Write/Parse intact.
class CsvFuzzTest : public testing::TestWithParam<uint64_t> {};

TEST_P(CsvFuzzTest, RandomDocumentRoundTrips) {
  Rng rng(GetParam());
  const char alphabet[] = {'a', 'B', '3', ',', '"', '\n', ' ', '\t', ';'};
  auto random_field = [&]() {
    std::string field;
    int64_t len = rng.UniformInt(0, 12);
    for (int64_t i = 0; i < len; ++i) {
      field += alphabet[rng.UniformInt(0, 8)];
    }
    return field;
  };
  CsvDocument doc;
  size_t columns = static_cast<size_t>(rng.UniformInt(1, 5));
  for (size_t c = 0; c < columns; ++c) {
    // Headers must be non-empty to avoid the degenerate all-empty header
    // being read back as a single empty field.
    doc.header.push_back("col" + std::to_string(c));
  }
  size_t rows = static_cast<size_t>(rng.UniformInt(0, 20));
  for (size_t r = 0; r < rows; ++r) {
    std::vector<std::string> row;
    for (size_t c = 0; c < columns; ++c) row.push_back(random_field());
    doc.rows.push_back(std::move(row));
  }
  Result<CsvDocument> parsed = ParseCsv(WriteCsv(doc));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->header, doc.header);
  EXPECT_EQ(parsed->rows, doc.rows);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CsvFuzzTest,
                         testing::Range<uint64_t>(1, 25));

// ---------- RNG ----------

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.UniformInt(0, 1000), b.UniformInt(0, 1000));
  }
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, WeightedIndexRespectsZeroWeights) {
  Rng rng(7);
  std::vector<double> weights = {0.0, 1.0, 0.0};
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(rng.WeightedIndex(weights), 1u);
  }
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(9);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

// ---------- text plots ----------

TEST(TextPlotTest, PositiveBarsScaleToWidth) {
  std::string chart = RenderBarChart(
      {{"a", 10.0, ""}, {"b", 5.0, ""}, {"c", 0.0, ""}}, 10);
  std::vector<std::string> lines = Split(chart, '\n');
  ASSERT_GE(lines.size(), 3u);
  EXPECT_NE(lines[0].find("##########"), std::string::npos);   // full width
  EXPECT_NE(lines[1].find("#####"), std::string::npos);        // half
  EXPECT_EQ(lines[2].find('#'), std::string::npos);            // zero
}

TEST(TextPlotTest, NegativeValuesRenderTwoSided) {
  std::string chart =
      RenderBarChart({{"up", 4.0, ""}, {"down", -4.0, ""}}, 8);
  std::vector<std::string> lines = Split(chart, '\n');
  ASSERT_GE(lines.size(), 2u);
  // Both lines carry the axis; the negative bar sits left of it.
  size_t axis_up = lines[0].find('|');
  size_t axis_down = lines[1].find('|');
  ASSERT_NE(axis_up, std::string::npos);
  EXPECT_EQ(axis_up, axis_down);
  EXPECT_LT(lines[1].find('#'), axis_down);
  EXPECT_GT(lines[0].find('#'), axis_up);
}

TEST(TextPlotTest, MarkersAndEmptyInput) {
  EXPECT_EQ(RenderBarChart({}), "");
  std::string chart = RenderBarChart({{"x", 1.0, "cancer"}}, 4);
  EXPECT_NE(chart.find("[cancer]"), std::string::npos);
}

// ---------- Stopwatch ----------

TEST(StopwatchTest, ElapsedNanosIsMonotonicAndResets) {
  Stopwatch watch;
  const uint64_t a = watch.ElapsedNanos();
  uint64_t b = watch.ElapsedNanos();
  while (b == a) b = watch.ElapsedNanos();  // steady clock must advance
  EXPECT_GT(b, a);

  watch.Reset();
  // A reset watch reads (much) less than the pre-reset elapsed time.
  EXPECT_LT(watch.ElapsedNanos(), b + 1000000000ull);
}

TEST(TextPlotTest, ValueTableAligns) {
  std::string table = RenderValueTable({{"short", 1.0}, {"longer_name", 2.5}});
  std::vector<std::string> lines = Split(table, '\n');
  ASSERT_GE(lines.size(), 2u);
  EXPECT_EQ(lines[0].find("1.0"), lines[1].find("2.5"));
}

}  // namespace
}  // namespace gea
